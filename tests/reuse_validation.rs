//! Cross-validation between the analytical reuse-distance profile and the
//! simulated LRU cache: under fully-associative LRU, an access hits iff
//! its reuse distance is below the line capacity, so
//! `ReuseProfile::hit_rate_at(F)` must equal the hit rate of a simulated
//! one-set, F-way `Cache1P1L` on the same trace — bit for bit.

use mdacache::cache::{Access, Cache1P1L, CacheConfig, CacheLevel, CacheLevelExt};
use mdacache::compiler::reuse::{ReuseGranularity, ReuseProfile};
use mdacache::compiler::{AffineExpr, ArrayRef, CodegenOptions, Loop, LoopNest, Program};
use mdacache::compiler::trace::{TraceOp, TraceSource};
use mdacache::mem::Orientation;

fn scalar_opts() -> CodegenOptions {
    CodegenOptions {
        layout: mdacache::compiler::LayoutKind::Tiled2D,
        vectorize_rows: false,
        vectorize_cols: false,
        loop_overhead: 0,
    }
}

/// Simulates a fully-associative LRU cache of `frames` row lines over the
/// scalar trace of `p`, returning its hit rate.
fn simulated_fa_hit_rate(p: &Program, frames: usize) -> f64 {
    let cfg = CacheConfig {
        size_bytes: frames as u64 * 64,
        assoc: frames,
        tag_latency: 1,
        data_latency: 1,
        sequential_tag_data: false,
        mshrs: 1,
        write_penalty: 0,
    };
    let mut cache = Cache1P1L::new(cfg);
    p.generate(&scalar_opts(), &mut |op| {
        if let TraceOp::Mem(m) = op {
            let acc = Access::scalar_read(m.word, Orientation::Row, m.stream);
            let probe = cache.probe(&acc);
            if !probe.hit {
                cache.fill_collect(probe.fills[0], 0);
            }
        }
    });
    cache.stats().hit_rate()
}

fn mixed_workload(n: i64) -> Program {
    let mut p = Program::new("mixed");
    let a = p.array("A", n as u64, n as u64);
    let b = p.array("B", n as u64, n as u64);
    // A row-scanned twice, B column-scanned once — a blend of short and
    // long reuse distances.
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(0, 2), Loop::constant(0, n), Loop::constant(0, n)],
        refs: vec![ArrayRef::read(a, AffineExpr::var(1), AffineExpr::var(2))],
        flops_per_iter: 0,
    });
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(0, n), Loop::constant(0, n)],
        refs: vec![ArrayRef::read(b, AffineExpr::var(1), AffineExpr::var(0))],
        flops_per_iter: 0,
    });
    p
}

#[test]
fn reuse_profile_predicts_fully_associative_lru_exactly() {
    let p = mixed_workload(24);
    let profile = ReuseProfile::collect(&p, &scalar_opts(), ReuseGranularity::RowLines);
    for frames in [1usize, 4, 16, 48, 96, 512] {
        let predicted = profile.hit_rate_at(frames as u64);
        let simulated = simulated_fa_hit_rate(&p, frames);
        assert!(
            (predicted - simulated).abs() < 1e-12,
            "capacity {frames}: analytical {predicted} vs simulated {simulated}"
        );
    }
}

#[test]
fn footprint_matches_distinct_lines_touched() {
    let p = mixed_workload(16);
    let profile = ReuseProfile::collect(&p, &scalar_opts(), ReuseGranularity::RowLines);
    let mut lines = std::collections::HashSet::new();
    p.generate(&scalar_opts(), &mut |op| {
        if let TraceOp::Mem(m) = op {
            lines.insert(mdacache::mem::LineKey::containing(m.word, Orientation::Row));
        }
    });
    assert_eq!(profile.footprint_lines(), lines.len() as u64);
    // With capacity ≥ footprint, only cold misses remain.
    let all = profile.hit_rate_at(lines.len() as u64);
    let expected = 1.0 - profile.cold_misses() as f64 / profile.accesses() as f64;
    assert!((all - expected).abs() < 1e-12);
}
