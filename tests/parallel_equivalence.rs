//! Parallel execution must be invisible in results: any `--jobs` value
//! produces byte-identical figures, because every simulation cell owns all
//! of its state and results are reassembled in input order.

use mda_bench::experiments::{fig13, run_kernel, table1};
use mda_bench::parallel::{self, par_map_with, Cell};
use mda_bench::Scale;
use mda_sim::{HierarchyKind, SimReport};
use mda_workloads::Kernel;

/// The figures pipeline end to end: rendering with 1 worker and with 4
/// workers yields the same strings and the same structured tables.
///
/// Both job counts run inside one test body because [`parallel::set_jobs`]
/// is process-global; the override is cleared before asserting.
#[test]
fn figures_render_identically_for_any_job_count() {
    parallel::set_jobs(1);
    let table1_seq = table1::render(Scale::Tiny);
    let fig13_seq = fig13::run(Scale::Tiny);
    parallel::set_jobs(4);
    let table1_par = table1::render(Scale::Tiny);
    let fig13_par = fig13::run(Scale::Tiny);
    parallel::set_jobs(0);

    assert_eq!(table1_seq, table1_par);
    assert_eq!(fig13_seq, fig13_par, "fig13 structured results diverged");
    assert_eq!(fig13_seq.render(), fig13_par.render());
    assert_eq!(fig13_seq.to_csv(), fig13_par.to_csv());
}

/// Every kernel × design cell simulated on a 4-worker pool reproduces the
/// inline sequential result, in input order.
#[test]
fn worker_pool_reproduces_sequential_cells() {
    let cfg = Scale::Tiny.system(HierarchyKind::P2L2Sparse);
    let cells: Vec<Cell> = Kernel::all()
        .iter()
        .map(|k| Cell::new(k.name(), *k, 24, cfg.clone()))
        .collect();
    let sequential = par_map_with(&cells, 1, |c| run_kernel(c.kernel, c.n, &c.config));
    let parallel = par_map_with(&cells, 4, |c| run_kernel(c.kernel, c.n, &c.config));
    assert_eq!(sequential, parallel);
    for (cell, report) in cells.iter().zip(&sequential) {
        assert_eq!(report.workload, cell.label, "results out of input order");
    }
}

/// The types crossing thread boundaries are `Send`/`Sync` by construction
/// (compile-time assertion).
#[test]
fn simulation_results_cross_threads_safely() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimReport>();
    assert_send_sync::<Cell>();
}
