//! The paper's qualitative claims, asserted against the tiny-scale
//! reproduction (the scaled/paper-scale numbers are recorded in
//! EXPERIMENTS.md; these tests pin the *shape* so regressions are caught in
//! CI time).

use mdacache::sim::{simulate, HierarchyKind, SystemConfig};
use mdacache::workloads::Kernel;

fn avg_normalized_cycles(kind: HierarchyKind) -> f64 {
    let mut total = 0.0;
    let kernels = Kernel::all();
    for kernel in kernels {
        let base_cfg = SystemConfig::tiny(HierarchyKind::Baseline1P1L);
        let src = kernel.build(base_cfg.default_input);
        let base = simulate(src.as_ref(), &base_cfg);
        let r = simulate(src.as_ref(), &SystemConfig::tiny(kind));
        total += r.cycles as f64 / base.cycles as f64;
    }
    total / kernels.len() as f64
}

#[test]
fn headline_mda_designs_reduce_execution_time() {
    // Paper Sec. VII: 1P2L −64%, 1P2L_SameSet −72%, 2P2L −65% at the
    // smallest LLC. We require clear wins with the SameSet variant ahead,
    // without pinning exact magnitudes.
    let p1l2 = avg_normalized_cycles(HierarchyKind::P1L2DifferentSet);
    let same = avg_normalized_cycles(HierarchyKind::P1L2SameSet);
    let p2l2 = avg_normalized_cycles(HierarchyKind::P2L2Sparse);
    assert!(p1l2 < 0.7, "1P2L average {p1l2}");
    assert!(same < 0.7, "1P2L_SameSet average {same}");
    assert!(p2l2 < 0.7, "2P2L average {p2l2}");
    assert!(same < p1l2, "SameSet ({same}) should lead DifferentSet ({p1l2})");
}

#[test]
fn llc_accesses_and_memory_traffic_collapse() {
    // Paper Fig. 14: LLC accesses fall to ~20–22% and memory bytes to
    // ~15–21% of the baseline. Enforce a generous 60%/80% bound per kernel.
    for kernel in Kernel::all() {
        let base_cfg = SystemConfig::tiny(HierarchyKind::Baseline1P1L);
        let src = kernel.build(base_cfg.default_input);
        let base = simulate(src.as_ref(), &base_cfg);
        let mda = simulate(src.as_ref(), &SystemConfig::tiny(HierarchyKind::P1L2DifferentSet));
        let acc = mda.llc_accesses() as f64 / base.llc_accesses().max(1) as f64;
        let bytes = mda.llc_memory_bytes() as f64 / base.llc_memory_bytes().max(1) as f64;
        assert!(acc < 0.6, "{kernel}: LLC accesses only fell to {acc:.2}");
        assert!(bytes < 0.8, "{kernel}: memory bytes only fell to {bytes:.2}");
    }
}

#[test]
fn bigger_llc_shrinks_the_gap_on_average() {
    // Paper Fig. 12: average benefits shrink as the LLC grows toward
    // holding the working set (64/65% reduction at 1 MB → 45/39% at 4 MB).
    // Individual kernels are noisy (set-conflict edge effects, exactly as
    // the paper observes around its 2 MB point), so this pins the average.
    use mda_bench::experiments::fig12;
    use mda_bench::Scale;
    let sweep = Scale::Tiny.llc_sweep();
    let small = fig12::run_one(Scale::Tiny, sweep[0]);
    let large = fig12::run_one(Scale::Tiny, sweep[3]);
    for design in ["1P2L", "2P2L"] {
        let tight = small.average(design).expect("series");
        let roomy = large.average(design).expect("series");
        assert!(
            roomy > tight,
            "{design}: roomy LLC ({roomy:.3}) should narrow the win over a tight one ({tight:.3})"
        );
    }
}

#[test]
fn mda_on_slow_memory_beats_baseline_on_fast_memory() {
    // Paper Fig. 17: "1P2L, even with the baseline memory, outperforms
    // 1P1L-fast".
    let kernel = Kernel::Sgemm;
    let cfg_fastbase = SystemConfig::tiny(HierarchyKind::Baseline1P1L).with_fast_memory();
    let src = kernel.build(cfg_fastbase.default_input);
    let fast_base = simulate(src.as_ref(), &cfg_fastbase);
    let mda = simulate(src.as_ref(), &SystemConfig::tiny(HierarchyKind::P1L2DifferentSet));
    assert!(
        mda.cycles < fast_base.cycles,
        "1P2L on base memory ({}) vs 1P1L on fast memory ({})",
        mda.cycles,
        fast_base.cycles
    );
}

#[test]
fn write_asymmetry_changes_little() {
    // Paper Fig. 16: +20-cycle LLC writes cost ≈0.4% on average.
    let mut worst: f64 = 0.0;
    for kernel in Kernel::all() {
        let cfg = SystemConfig::tiny(HierarchyKind::P2L2Sparse);
        let src = kernel.build(cfg.default_input);
        let sym = simulate(src.as_ref(), &cfg);
        let asym =
            simulate(src.as_ref(), &cfg.clone().with_llc_write_penalty(20));
        let delta = asym.cycles as f64 / sym.cycles as f64 - 1.0;
        worst = worst.max(delta);
    }
    assert!(worst < 0.15, "write asymmetry cost {worst:.3} is out of character");
}

#[test]
fn sobel_prefers_column_transfers_overwhelmingly() {
    // Paper Fig. 10 shows sobel as the most column-heavy kernel; verify it
    // translates to column-mode memory reads dominating.
    let cfg = SystemConfig::tiny(HierarchyKind::P1L2DifferentSet);
    let src = Kernel::Sobel.build(cfg.default_input);
    let r = simulate(src.as_ref(), &cfg);
    assert!(
        r.mem.col_reads > r.mem.row_reads,
        "sobel: {} column vs {} row reads",
        r.mem.col_reads,
        r.mem.row_reads
    );
}
