//! End-to-end reliability invariants: the fault subsystem must be exactly
//! free when disabled, and exactly reproducible when enabled.

use mda_bench::experiments::{ext_reliability, run_kernel};
use mda_bench::{parallel, Scale};
use mda_sim::{FaultConfig, HierarchyKind};
use mda_workloads::Kernel;

/// With every fault rate at zero, the full simulation pipeline produces a
/// report identical to a run with no fault configuration at all, for every
/// design — the invariant that keeps all pre-existing figures and CSVs
/// byte-identical.
#[test]
fn zero_rates_leave_every_design_report_untouched() {
    for kind in [
        HierarchyKind::Baseline1P1L,
        HierarchyKind::P1L2DifferentSet,
        HierarchyKind::P1L2SameSet,
        HierarchyKind::P2L2Sparse,
    ] {
        let plain = Scale::Tiny.system(kind);
        let gated = Scale::Tiny
            .system(kind)
            .with_faults(FaultConfig::uniform(0xDEAD_BEEF, 0.0, 0.0, 0.0));
        let a = run_kernel(Kernel::Sgemm, 24, &plain);
        let b = run_kernel(Kernel::Sgemm, 24, &gated);
        assert_eq!(a, b, "{}: zero-rate faults perturbed the report", kind.name());
        assert!(!b.mem.reliability_active(), "{}: phantom reliability events", kind.name());
        assert!(!a.render().contains("reliability:"), "fault-free report grew a line");
    }
}

/// The reliability sweep is reproducible across worker counts: a fixed
/// fault seed with nonzero rates yields identical structured results and
/// identical rendered tables at `--jobs 1` and `--jobs 4`.
///
/// Both job counts run inside one test body because [`parallel::set_jobs`]
/// is process-global; the override is cleared before asserting.
#[test]
fn reliability_sweep_is_identical_across_worker_counts() {
    parallel::set_jobs(1);
    let seq = ext_reliability::run(Scale::Tiny);
    parallel::set_jobs(4);
    let par = ext_reliability::run(Scale::Tiny);
    parallel::set_jobs(0);

    assert_eq!(seq, par, "fault injection diverged across worker counts");
    assert_eq!(seq.cycles.to_csv(), par.cycles.to_csv());
    assert_eq!(seq.retries.to_csv(), par.retries.to_csv());
    assert_eq!(seq.corrected.to_csv(), par.corrected.to_csv());
}

/// Nonzero rates actually exercise the machinery end to end: the report
/// carries retry/correction counters and renders the reliability line.
#[test]
fn nonzero_rates_surface_in_the_report() {
    let cfg = Scale::Tiny
        .system(HierarchyKind::P1L2DifferentSet)
        .with_faults(ext_reliability::fault_config(1e-3));
    // Tiny-scale input (64×64): large enough that dirty lines are evicted
    // and written back, so the write-verify path actually runs.
    let report = run_kernel(Kernel::Sgemm, Scale::Tiny.input(), &cfg);
    assert!(report.mem.reliability_active(), "no fault events at 1e-3 write BER");
    assert!(report.mem.write_retries > 0, "verify-retry never fired");
    let rendered = report.render();
    assert!(rendered.contains("reliability:"), "missing reliability line:\n{rendered}");
}
