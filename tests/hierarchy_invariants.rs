//! Cross-crate invariants on the full hierarchy: dirty data written by a
//! program must reach main memory once the hierarchy is drained, through
//! any design point.

use mdacache::cache::level::{CacheLevel, CacheLevelExt};
use mdacache::sim::{HierarchyKind, SystemConfig};
use mdacache::workloads::Kernel;
use mdacache::compiler::TraceOp;

#[test]
fn draining_the_hierarchy_flushes_all_dirty_data() {
    for kind in HierarchyKind::all() {
        let cfg = SystemConfig::tiny(kind);
        let src = Kernel::Ssyrk.build(32);
        let mut hierarchy = cfg.build_hierarchy();
        let mut core = mdacache::sim::Core::new(cfg.core);
        src.generate(&cfg.codegen, &mut |op| hierarchy.step(&mut core, &op));

        let final_cycle = core.finish();
        hierarchy.flush_all(final_cycle);
        for (i, level) in hierarchy.levels().iter().enumerate() {
            assert!(
                level.dirty_words().is_empty(),
                "{kind}: level {i} kept dirty words after a flush"
            );
            assert_eq!(level.occupancy().0 + level.occupancy().1, 0, "{kind}: level {i} not empty");
        }
        assert!(
            hierarchy.memory().stats().bytes_written > 0,
            "{kind}: writes never reached memory"
        );
    }
}

#[test]
fn written_words_reach_memory_in_volume() {
    // Every word the kernel writes must be written back to memory at least
    // once after a drain (per-word dirty bits may split one line into
    // several partial writebacks, but volume can never be lost).
    for kind in [HierarchyKind::Baseline1P1L, HierarchyKind::P1L2DifferentSet] {
        let cfg = SystemConfig::tiny(kind);
        let src = Kernel::Sgemm.build(24);
        let mut distinct_written = std::collections::HashSet::new();
        src.generate(&cfg.codegen, &mut |op| {
            if let TraceOp::Mem(m) = op {
                if m.write {
                    if m.vector {
                        distinct_written
                            .extend(mdacache::mem::LineKey::containing(m.word, m.orient).words());
                    } else {
                        distinct_written.insert(m.word);
                    }
                }
            }
        });

        let mut hierarchy = cfg.build_hierarchy();
        let mut core = mdacache::sim::Core::new(cfg.core);
        src.generate(&cfg.codegen, &mut |op| hierarchy.step(&mut core, &op));
        hierarchy.flush_all(core.finish());

        let written_bytes = hierarchy.memory().stats().bytes_written;
        assert!(
            written_bytes >= distinct_written.len() as u64 * 8,
            "{kind}: memory saw {written_bytes} B but the program wrote {} distinct words",
            distinct_written.len()
        );
    }
}
