//! Tier-1 gate for the mda-check pillars: the exhaustive coherence model
//! check, the model-vs-real differential, the seeded-mutation sanity
//! checks, and the workspace lint must all pass under plain `cargo test`.
//!
//! The `mda-check` binary runs the same checks at larger dimensions; this
//! test pins the cheap configuration (2×2 tile, depth-3 differential) so a
//! policy regression cannot land without tripping CI.

use mda_check::explore::{explore_1p2l, explore_2p2l, ExploreConfig};
use mda_check::model::Violation;
use mda_check::{
    lint_workspace, run_differential, run_differential_with_dropped_word, DiffConfig, Mutation,
};

fn cfg() -> ExploreConfig {
    ExploreConfig::default()
}

#[test]
fn duplicate_word_policy_is_exhaustively_clean_for_1p2l() {
    let report = explore_1p2l(2, Mutation::None, &cfg());
    assert!(
        report.is_clean_and_exhaustive(),
        "1P2L model check failed: {:?}",
        report.counterexample
    );
    // The 2×2 space is small but not degenerate.
    assert!(report.states > 50, "suspiciously few states: {}", report.states);
}

#[test]
fn block_cache_policy_is_exhaustively_clean_for_2p2l() {
    for sparse in [true, false] {
        let report = explore_2p2l(2, sparse, Mutation::None, &cfg());
        assert!(
            report.is_clean_and_exhaustive(),
            "2P2L (sparse={sparse}) model check failed: {:?}",
            report.counterexample
        );
    }
}

#[test]
fn seeded_mutations_are_caught_by_the_model_check() {
    // A writeback that silently drops dirty words diverges memory.
    let report = explore_1p2l(2, Mutation::DropWritebackWord { offset: 0 }, &cfg());
    let cex = report.counterexample.expect("mutation must be detected");
    assert!(matches!(cex.violation, Violation::FlushDiverged { .. }));

    // Skipping the write-to-duplicate eviction leaves a stale copy.
    let report = explore_1p2l(2, Mutation::SkipDuplicateEviction, &cfg());
    let cex = report.counterexample.expect("mutation must be detected");
    assert!(matches!(
        cex.violation,
        Violation::StaleCopy { .. } | Violation::DirtyNotSole { .. } | Violation::DoubleDirty { .. }
    ));

    let report = explore_2p2l(2, true, Mutation::DropWritebackWord { offset: 0 }, &cfg());
    assert!(report.counterexample.is_some(), "2P2L mutation must be detected");
}

#[test]
fn real_caches_agree_with_the_abstract_models() {
    // Trimmed differential: exhaustive to depth 3 plus a seeded random
    // tail, across both 1P2L mappings and both 2P2L fill policies.
    let cfg = DiffConfig { random: 64, ..DiffConfig::default() };
    let report = run_differential(&cfg);
    assert!(report.mismatch.is_none(), "differential mismatch: {}", report.mismatch.unwrap());
    assert!(report.sequences > 10_000, "suspiciously few sequences: {}", report.sequences);
}

#[test]
fn differential_catches_a_cache_that_drops_dirty_words() {
    // The same differential must flag a real level whose writebacks lose a
    // dirty word (`diff::WritebackDropper`) — proof the cross-check
    // actually compares writeback contents, not just hit/miss outcomes.
    let cfg = DiffConfig { depth: 2, random: 16, ..DiffConfig::default() };
    let report = run_differential_with_dropped_word(0, &cfg);
    assert!(report.mismatch.is_some(), "broken writeback path went undetected");
}

#[test]
fn workspace_is_mda_lint_clean() {
    let findings =
        lint_workspace(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "mda-lint violations:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
