//! End-to-end integration: every kernel × every design point runs through
//! compiler → trace → hierarchy → memory with self-consistent results.

use mdacache::sim::{simulate, HierarchyKind, SystemConfig};
use mdacache::workloads::Kernel;

#[test]
fn every_kernel_runs_on_every_design() {
    for kernel in Kernel::all() {
        for kind in HierarchyKind::all() {
            let cfg = SystemConfig::tiny(kind);
            let src = kernel.build(cfg.default_input);
            let r = simulate(src.as_ref(), &cfg);
            assert!(r.cycles > 0, "{kernel}/{kind} produced no cycles");
            assert_eq!(r.levels.len(), 3, "{kernel}/{kind} level count");
            assert_eq!(
                r.levels[0].accesses, r.ops.mem_ops,
                "{kernel}/{kind}: L1 must see the whole demand stream"
            );
            for (i, lvl) in r.levels.iter().enumerate() {
                assert_eq!(
                    lvl.hits + lvl.misses,
                    lvl.accesses,
                    "{kernel}/{kind} level {i} hit/miss split"
                );
            }
            assert!(r.mem.reads > 0, "{kernel}/{kind}: cold caches must read memory");
            assert_eq!(r.mem.bytes_read, r.mem.reads * 64);
        }
    }
}

#[test]
fn baseline_uses_row_mode_only_and_mda_uses_both() {
    let kernel = Kernel::Sgemm;
    let base_cfg = SystemConfig::tiny(HierarchyKind::Baseline1P1L);
    let src = kernel.build(base_cfg.default_input);
    let base = simulate(src.as_ref(), &base_cfg);
    assert_eq!(base.mem.col_reads, 0, "a 1-D hierarchy never issues column transfers");

    let mda_cfg = SystemConfig::tiny(HierarchyKind::P1L2DifferentSet);
    let mda = simulate(src.as_ref(), &mda_cfg);
    assert!(mda.mem.col_reads > 0, "the MDA hierarchy exploits column mode");
    assert!(mda.mem.row_reads > 0, "rows are still fetched in row mode");
}

#[test]
fn cycle_counts_are_stable_across_runs() {
    // Full-stack determinism: two fresh simulations of the same workload
    // and configuration agree bit-for-bit.
    let cfg = SystemConfig::tiny(HierarchyKind::P2L2Sparse);
    let src = Kernel::Htap1.build(cfg.default_input);
    let a = simulate(src.as_ref(), &cfg);
    let b = simulate(src.as_ref(), &cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mem, b.mem);
    assert_eq!(a.levels, b.levels);
}

#[test]
fn two_level_systems_work() {
    for kind in HierarchyKind::all() {
        let cfg = SystemConfig::paper_cache_resident(kind);
        let src = Kernel::Sobel.build(64);
        let r = simulate(src.as_ref(), &cfg);
        assert_eq!(r.levels.len(), 2, "{kind}");
        assert!(r.cycles > 0);
    }
}

#[test]
fn facade_reexports_compose() {
    // The `mdacache` facade exposes enough to assemble a custom system.
    use mdacache::cache::CacheConfig;
    let mut cfg = SystemConfig::tiny(HierarchyKind::P1L2SameSet);
    cfg.l3 = Some(CacheConfig::l3(128 * 1024));
    cfg = cfg.with_fast_memory().with_llc_write_penalty(5);
    let src = Kernel::Strmm.build(32);
    let r = simulate(src.as_ref(), &cfg);
    assert!(r.cycles > 0);
    assert_eq!(r.design, "1P2L_SameSet");
}
