//! Pins the full `SimReport` of every kernel × design cell against golden
//! values captured *before* the allocation-free hot-path refactor (PR 4:
//! scratch-buffer `CacheLevel` API, `LevelKind` static dispatch, SoA
//! `SetArray`, direct-mapped prefetcher). Any behavioral drift in the
//! rewrite — a changed hit count, a reordered writeback, one extra cycle —
//! fails this test with the first differing cell named.
//!
//! Regenerate the golden file (only when an *intentional* model change
//! lands) with:
//!
//! ```text
//! MDA_UPDATE_GOLDEN=1 cargo test --test hotpath_equivalence
//! ```

use mda_bench::experiments::run_kernel;
use mda_sim::{HierarchyKind, SystemConfig};
use mda_workloads::Kernel;
use std::fmt::Write as _;

/// Input size: large enough to evict, duplicate, and coalesce on the tiny
/// hierarchy, small enough for debug-mode CI.
const N: u64 = 48;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/hotpath_simreports.txt")
}

/// One section per cell: a `=== design/kernel` header followed by the full
/// `Debug` rendering of its `SimReport` (every counter, every level).
fn render_all_cells() -> String {
    let mut out = String::new();
    for kind in HierarchyKind::all() {
        let cfg = SystemConfig::tiny(kind);
        for kernel in Kernel::all() {
            let report = run_kernel(kernel, N, &cfg);
            writeln!(out, "=== {}/{}", kind.name(), kernel.name()).unwrap();
            writeln!(out, "{report:#?}").unwrap();
        }
    }
    out
}

#[test]
fn simreports_match_pre_refactor_golden() {
    let got = render_all_cells();
    let path = golden_path();
    if std::env::var("MDA_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &got).expect("write golden");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with MDA_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    if got == want {
        return;
    }
    // Report the first diverging cell, not a 60 KB string diff.
    let split = |s: &str| -> Vec<String> {
        s.split("=== ").filter(|c| !c.is_empty()).map(|c| format!("=== {c}")).collect()
    };
    let (got_cells, want_cells) = (split(&got), split(&want));
    assert_eq!(
        got_cells.len(),
        want_cells.len(),
        "cell count changed: got {}, golden {}",
        got_cells.len(),
        want_cells.len()
    );
    for (g, w) in got_cells.iter().zip(&want_cells) {
        if g != w {
            let header = w.lines().next().unwrap_or("?");
            let first_diff = g
                .lines()
                .zip(w.lines())
                .find(|(a, b)| a != b)
                .map(|(a, b)| format!("got:    {a}\ngolden: {b}"))
                .unwrap_or_else(|| "line counts differ".to_string());
            panic!("SimReport diverged from pre-refactor golden at {header}\n{first_diff}");
        }
    }
    unreachable!("whole-file mismatch but every cell matches");
}
