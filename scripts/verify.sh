#!/usr/bin/env bash
# Tier-1 verification gate plus a parallel-harness smoke test.
#
# Usage: scripts/verify.sh
#
# Steps:
#   1. release build of the whole workspace
#   2. full test suite (unit + integration + property tests)
#   3. `figures all --scale tiny --jobs 2` smoke run, asserting the
#      parallel harness produces output byte-identical to `--jobs 1`
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== smoke: figures all --scale tiny, --jobs 1 vs --jobs 2 =="
cargo build -q --release -p mda-bench
FIGURES=target/release/figures
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
"$FIGURES" all --scale tiny --jobs 1 --csv "$TMP/csv1" >"$TMP/out1.txt" 2>/dev/null
"$FIGURES" all --scale tiny --jobs 2 --csv "$TMP/csv2" >"$TMP/out2.txt" 2>/dev/null
cmp "$TMP/out1.txt" "$TMP/out2.txt"
diff -rq "$TMP/csv1" "$TMP/csv2"
echo "parallel output byte-identical"

echo "verify: OK"
