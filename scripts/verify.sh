#!/usr/bin/env bash
# Tier-1 verification gate plus a parallel-harness smoke test.
#
# Usage: scripts/verify.sh
#
# Steps:
#   1. release build of the whole workspace
#   2. full test suite (unit + integration + property tests)
#   3. `figures all --scale tiny --jobs 2` smoke run, asserting the
#      parallel harness produces output byte-identical to `--jobs 1`
#   4. reliability smoke run: the seeded fault-injection sweep must be
#      byte-identical across worker counts
#   5. degraded-cell drill: a deliberately panicking cell (MDA_PANIC_CELL)
#      must come back as "degraded" while the rest of the figure survives
#      and the process exits zero
#   6. clippy (warnings + perf lints) across the whole workspace
#   7. mda-lint: the workspace must be free of hot-path allocations,
#      library panics, nondeterministic report iteration, and stray clocks
#   8. mda-check: exhaustive dim-3 model check of the duplicate-word policy
#      plus the model-vs-real differential at dim 2 (the depth-3 default)
#   9. `figures --bench-sim --smoke` must produce a well-formed BENCH_sim.json
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== lint: clippy (warnings + perf) on the whole workspace =="
cargo clippy -q --workspace --all-targets -- -D warnings -D clippy::perf

echo "== lint: mda-lint project rules =="
cargo run -q --release -p mda-check --bin mda-lint

echo "== check: coherence model check (dim 3) + differential (dim 2) =="
# BFS all three cache variants exhaustively on a 3×3 tile, then replay the
# depth-3 sequence enumeration through the real caches. The seeded-mutation
# self-checks prove the harness would actually catch a policy break.
cargo run -q --release -p mda-check --bin mda-check -- --dim 3 --skip-diff
cargo run -q --release -p mda-check --bin mda-check -- --dim 2 --skip-bfs

echo "== smoke: figures all --scale tiny, --jobs 1 vs --jobs 2 =="
cargo build -q --release -p mda-bench
FIGURES=target/release/figures
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
"$FIGURES" all --scale tiny --jobs 1 --csv "$TMP/csv1" >"$TMP/out1.txt" 2>/dev/null
"$FIGURES" all --scale tiny --jobs 2 --csv "$TMP/csv2" >"$TMP/out2.txt" 2>/dev/null
cmp "$TMP/out1.txt" "$TMP/out2.txt"
diff -rq "$TMP/csv1" "$TMP/csv2"
echo "parallel output byte-identical"

echo "== smoke: seeded fault injection, --jobs 2 vs --jobs 4 =="
SWEEP=target/release/sweep
"$SWEEP" ber --scale tiny --jobs 2 >"$TMP/ber2.txt" 2>/dev/null
"$SWEEP" ber --scale tiny --jobs 4 >"$TMP/ber4.txt" 2>/dev/null
grep -q "ber=1e-3" "$TMP/ber2.txt"
cmp "$TMP/ber2.txt" "$TMP/ber4.txt"
"$FIGURES" ext_reliability --scale tiny --jobs 2 >"$TMP/rel.txt" 2>/dev/null
grep -q "write retries" "$TMP/rel.txt"
echo "reliability sweep reproducible across worker counts"

echo "== smoke: deliberate panic degrades one cell, not the run =="
MDA_PANIC_CELL=sgemm "$FIGURES" fig13 --scale tiny --jobs 2 \
    >"$TMP/panic_out.txt" 2>"$TMP/panic_err.txt"
grep -q "degraded" "$TMP/panic_out.txt"
grep -q "retrying once" "$TMP/panic_err.txt"
# The other kernels' cells must survive with real values.
grep -vE "degraded|Average" "$TMP/panic_out.txt" | grep -qE "0\.[0-9]"
echo "panicking cell isolated; neighbors intact; exit code 0"

echo "== smoke: malformed MDA_JOBS warns instead of being ignored =="
# fig13, not table1: the warning fires when the worker pool is consulted,
# and table1 runs no simulation cells.
MDA_JOBS=banana "$FIGURES" fig13 --scale tiny >/dev/null 2>"$TMP/jobs_err.txt"
grep -q "ignoring MDA_JOBS" "$TMP/jobs_err.txt"
echo "malformed MDA_JOBS produces a warning"

echo "== smoke: --bench-sim writes a well-formed BENCH_sim.json =="
# Single tiny-scale rep in a scratch dir so the committed BENCH_sim.json
# (full scaled run) is left alone.
(cd "$TMP" && "$OLDPWD/$FIGURES" --bench-sim --smoke >/dev/null 2>&1)
test -s "$TMP/BENCH_sim.json"
python3 - "$TMP/BENCH_sim.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
cells = d["cells"]
assert cells, "no cells"
for c in cells:
    assert c["accesses_per_sec"] > 0 and c["seconds"] > 0 and c["mem_ops"] > 0, c
print(f"BENCH_sim.json well-formed ({len(cells)} cells)")
EOF

echo "verify: OK"
