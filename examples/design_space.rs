//! Sweep the MDA cache design space for one kernel: every hierarchy design
//! × LLC capacity, plus the technology sensitivity knobs (write asymmetry,
//! faster memory).
//!
//! ```text
//! cargo run --release --example design_space [kernel] [n]
//! ```

use mdacache::sim::{simulate, HierarchyKind, SystemConfig};
use mdacache::workloads::Kernel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kernel = args
        .get(1)
        .map(|s| Kernel::parse(s).expect("kernel name"))
        .unwrap_or(Kernel::Strmm);
    let n: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(128);
    let src = kernel.build(n);

    println!("design space for {kernel} ({n}×{n})\n");
    println!(
        "{:>11}  {:>14} {:>14} {:>14} {:>14} {:>14}",
        "LLC", "1P1L+pf", "1P2L", "1P2L_SameSet", "2P2L", "2P2L_Dense"
    );
    for llc_kb in [64u64, 128, 256, 512] {
        print!("{llc_kb:>9}KB  ");
        let mut base = 1u64;
        for kind in HierarchyKind::all() {
            let mut cfg = SystemConfig::scaled(kind);
            cfg.l3 = Some(mdacache::cache::CacheConfig::l3(llc_kb * 1024));
            let r = simulate(src.as_ref(), &cfg);
            if kind == HierarchyKind::Baseline1P1L {
                base = r.cycles;
                print!("{:>14}", r.cycles);
            } else {
                print!("{:>14}", format!("{:.3}", r.cycles as f64 / base as f64));
            }
        }
        println!();
    }

    println!("\ntechnology sensitivity (256 KB LLC, normalized to 1P1L+pf):");
    let base = simulate(src.as_ref(), &SystemConfig::scaled(HierarchyKind::Baseline1P1L));
    let variants: [(&str, SystemConfig); 4] = [
        ("2P2L", SystemConfig::scaled(HierarchyKind::P2L2Sparse)),
        (
            "2P2L +20cyc writes",
            SystemConfig::scaled(HierarchyKind::P2L2Sparse).with_llc_write_penalty(20),
        ),
        (
            "1P2L on 1.6x memory",
            SystemConfig::scaled(HierarchyKind::P1L2DifferentSet).with_fast_memory(),
        ),
        (
            "1P1L on 1.6x memory",
            SystemConfig::scaled(HierarchyKind::Baseline1P1L).with_fast_memory(),
        ),
    ];
    for (name, cfg) in variants {
        let r = simulate(src.as_ref(), &cfg);
        println!("  {:22} {:.3}", name, r.cycles as f64 / base.cycles as f64);
    }
}
