//! The column-store motivation (paper Sec. V-A, last paragraph): an HTAP
//! table where transactions want rows and analytics want columns, served
//! by one MDA layout without a transpose.
//!
//! ```text
//! cargo run --release --example htap_analytics [fields]
//! ```

use mdacache::compiler::trace::access_mix;
use mdacache::sim::{simulate, HierarchyKind, SystemConfig};
use mdacache::workloads::{htap1, htap2, HtapWorkload};

fn main() {
    let fields: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    println!("HTAP over a 2048 × {fields} table of 64-bit fields\n");

    for workload in [htap1(fields), htap2(fields)] {
        report(&workload);
    }

    // A custom mix is one constructor away.
    println!("-- custom 50/50 mix --");
    report(&HtapWorkload::new("htap-custom", fields, 64, 1024, 42));
}

fn report(w: &HtapWorkload) {
    use mdacache::compiler::trace::TraceSource;
    let cfg_base = SystemConfig::scaled(HierarchyKind::Baseline1P1L);
    let mix = access_mix(w, &cfg_base.codegen);
    println!(
        "{:12} column volume {:>5.1}%",
        w.name(),
        mix.col_fraction() * 100.0
    );
    let base = simulate(w, &cfg_base);
    println!(
        "  1P1L+prefetch: {:>11} cycles  {:>8} KB memory traffic",
        base.cycles,
        base.llc_memory_bytes() / 1024
    );
    for kind in [HierarchyKind::P1L2DifferentSet, HierarchyKind::P2L2Sparse] {
        let r = simulate(w, &SystemConfig::scaled(kind));
        println!(
            "  {:12} {:>11} cycles  {:>8} KB memory traffic  ({:.0}% less time)",
            r.design,
            r.cycles,
            r.llc_memory_bytes() / 1024,
            (1.0 - r.normalized_cycles(&base)) * 100.0
        );
    }
    println!();
}
