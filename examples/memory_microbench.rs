//! Microbenchmark of the MDA main-memory model itself: measure the access
//! symmetry the paper's enabling technology provides (Sec. II–III) without
//! any cache in front.
//!
//! ```text
//! cargo run --release --example memory_microbench
//! ```

use mdacache::mem::{LineKey, MainMemory, MemConfig, Orientation};

fn average_read_latency(
    mem: &mut MainMemory,
    lines: impl Iterator<Item = LineKey>,
) -> (f64, f64) {
    let mut total = 0u64;
    let mut count = 0u64;
    let mut now = 0u64;
    for line in lines {
        let c = mem.read(line, now);
        total += c.done - now;
        count += 1;
        now = c.burst_done + 1;
    }
    let hit_rate = mem.stats().buffer_hit_rate();
    (total as f64 / count.max(1) as f64, hit_rate)
}

fn main() {
    println!("MDA memory microbenchmark (STT crosspoint, paper configuration)\n");

    // 1a. Address-sequential streaming: maximal bank parallelism, but every
    //     line of a tile opens a different physical row.
    let mut mem = MainMemory::new(MemConfig::paper());
    let (lat, hits) = average_read_latency(
        &mut mem,
        (0..512u64).flat_map(|t| (0..8).map(move |r| LineKey::new(t, Orientation::Row, r))),
    );
    println!("sequential rows:    {lat:6.1} cycles/line, buffer hit rate {:.0}%", hits * 100.0);

    // 1b. Plane walk (one row index across all tiles): every bank keeps its
    //     physical row open — the open-page locality case.
    let mut mem = MainMemory::new(MemConfig::paper());
    let (lat, hits) = average_read_latency(
        &mut mem,
        (0..8u8).flat_map(|r| (0..512u64).map(move |t| LineKey::new(t, Orientation::Row, r))),
    );
    println!("row plane walk:     {lat:6.1} cycles/line, buffer hit rate {:.0}%", hits * 100.0);

    // 2. Column-mode streaming: the column buffer serves each column line in
    //    a single operation — the MDA headline capability.
    let mut mem = MainMemory::new(MemConfig::paper());
    let (lat, hits) = average_read_latency(
        &mut mem,
        (0..512u64).flat_map(|t| (0..8).map(move |c| LineKey::new(t, Orientation::Col, c))),
    );
    println!("column streaming:   {lat:6.1} cycles/line, buffer hit rate {:.0}%", hits * 100.0);

    // 3. What a conventional memory would do for the same column data:
    //    eight row activations per column line (one per word).
    let mut mem = MainMemory::new(MemConfig::paper());
    let (lat, _) = average_read_latency(
        &mut mem,
        (0..512u64).flat_map(|t| (0..8).map(move |r| LineKey::new(t, Orientation::Row, r))),
    );
    println!(
        "column via rows:    {:6.1} cycles per useful 64 B (8 row lines fetched)",
        lat * 8.0
    );

    // 4. Mixed-direction pressure on the same tiles: both buffers stay warm.
    let mut mem = MainMemory::new(MemConfig::paper());
    let (lat, hits) = average_read_latency(
        &mut mem,
        (0..512u64).flat_map(|t| {
            (0..4).flat_map(move |i| {
                [LineKey::new(t, Orientation::Row, i), LineKey::new(t, Orientation::Col, i)]
            })
        }),
    );
    println!("mixed row/column:   {lat:6.1} cycles/line, buffer hit rate {:.0}%", hits * 100.0);

    // 5. The 1.6× faster device of the paper's Fig. 17.
    let mut mem = MainMemory::new(MemConfig::paper_fast());
    let (lat, _) = average_read_latency(
        &mut mem,
        (0..512u64).flat_map(|t| (0..8).map(move |c| LineKey::new(t, Orientation::Col, c))),
    );
    println!("column, fast device: {lat:5.1} cycles/line");
}
