//! Quickstart: simulate one kernel on the baseline and on each MDA cache
//! hierarchy, and compare what the paper compares.
//!
//! ```text
//! cargo run --release --example quickstart [n]
//! ```

use mdacache::sim::{simulate, HierarchyKind, SystemConfig};
use mdacache::workloads::sgemm;

fn main() {
    let n: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(128);
    println!("sgemm {n}×{n} on the scaled system\n");

    // The conventional hierarchy runs with stride prefetching on the
    // 1-D-optimized layout; every MDA design runs without prefetching on
    // the tiled, intra-array-padded layout — exactly the paper's pairing.
    let program = sgemm(n);
    let baseline = simulate(&program, &SystemConfig::scaled(HierarchyKind::Baseline1P1L));
    println!(
        "{:14} {:>12} cycles  L1 hit {:>5.1}%  memory traffic {:>7} KB",
        "1P1L+prefetch",
        baseline.cycles,
        baseline.l1_hit_rate() * 100.0,
        baseline.llc_memory_bytes() / 1024,
    );

    for kind in [
        HierarchyKind::P1L2DifferentSet,
        HierarchyKind::P1L2SameSet,
        HierarchyKind::P2L2Sparse,
    ] {
        let r = simulate(&program, &SystemConfig::scaled(kind));
        println!(
            "{:14} {:>12} cycles  L1 hit {:>5.1}%  memory traffic {:>7} KB  ({:.0}% faster)",
            r.design,
            r.cycles,
            r.l1_hit_rate() * 100.0,
            r.llc_memory_bytes() / 1024,
            (1.0 - r.normalized_cycles(&baseline)) * 100.0,
        );
    }
}
