//! Multi-programmed scenario: a consolidated server running analytics,
//! transactions and image processing side by side on private L1/L2s, a
//! shared LLC and one shared MDA memory (the paper's Sec. IX-B
//! parallel-workload outlook).
//!
//! ```text
//! cargo run --release --example server_consolidation [n]
//! ```

use mdacache::compiler::trace::TraceSource;
use mdacache::sim::multicore::simulate_multicore;
use mdacache::sim::{HierarchyKind, SystemConfig};
use mdacache::workloads::Kernel;

fn main() {
    let n: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let mix = [Kernel::Htap1, Kernel::Htap2, Kernel::Sobel, Kernel::Sobel];
    println!(
        "4-core consolidation: {} (inputs sized {n})\n",
        mix.map(|k| k.name()).join(" + ")
    );

    let sources: Vec<Box<dyn TraceSource>> = mix.iter().map(|k| k.build(n)).collect();
    let refs: Vec<&dyn TraceSource> = sources.iter().map(|s| s.as_ref()).collect();

    let mut base_makespan = 1;
    for kind in [
        HierarchyKind::Baseline1P1L,
        HierarchyKind::P1L2DifferentSet,
        HierarchyKind::P2L2Sparse,
    ] {
        let cfg = SystemConfig::tiny(kind);
        let r = simulate_multicore(&refs, &cfg);
        if kind == HierarchyKind::Baseline1P1L {
            base_makespan = r.makespan;
        }
        println!(
            "{:14} makespan {:>10} cycles ({:>5.1}% of baseline)   shared-LLC hit rate {:>5.1}%",
            kind.name(),
            r.makespan,
            r.makespan as f64 / base_makespan as f64 * 100.0,
            r.llc().hit_rate() * 100.0,
        );
        for (name, cycles, ops) in &r.per_core {
            println!(
                "    core {:6} {:>10} cycles for {:>8} memory µops",
                name, cycles, ops.mem_ops
            );
        }
    }
}
