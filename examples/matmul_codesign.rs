//! The paper's Sec. V-A walk-through: why `C = A·B` needs hardware/software
//! co-design, shown end to end.
//!
//! Builds sgemm in the loop-nest IR, runs the compiler's direction
//! analysis, shows the layout the MDA target plans (intra-array padding,
//! tile-aligned columns), compares the op streams both code generators
//! emit, and finishes with a simulated head-to-head.
//!
//! ```text
//! cargo run --release --example matmul_codesign [n]
//! ```

use mdacache::compiler::analysis::analyze_ref;
use mdacache::compiler::trace::count_ops;
use mdacache::compiler::{CodegenOptions, Layout, LayoutKind};
use mdacache::sim::{simulate, HierarchyKind, SystemConfig};
use mdacache::workloads::sgemm;

fn main() {
    let n: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(128);
    let program = sgemm(n);

    println!("== 1. Access-direction prediction (paper Sec. V) ==");
    let nest = &program.nests()[0];
    for r in &nest.refs {
        let decl = program.array_decl(r.array);
        let a = analyze_ref(r, nest.innermost());
        println!(
            "  {}[{}][{}]  →  {:?} (unit stride: {})",
            decl.name, r.row, r.col, a.direction, a.unit_stride
        );
    }

    println!("\n== 2. MDA-compliant layout (intra-array padding) ==");
    for kind in [LayoutKind::Linear1D, LayoutKind::Tiled2D] {
        let layout = Layout::plan(&program, kind);
        println!("  {kind:?}: total footprint {} KB", layout.total_bytes() / 1024);
    }

    println!("\n== 3. Dual-direction vectorization ==");
    let base_ops = count_ops(&program, &CodegenOptions::baseline());
    let mda_ops = count_ops(&program, &CodegenOptions::mda());
    println!(
        "  baseline codegen: {:>10} memory µops ({} vector)",
        base_ops.mem_ops, base_ops.vector_mem_ops
    );
    println!(
        "  MDA codegen:      {:>10} memory µops ({} vector)  → {:.1}× fewer",
        mda_ops.mem_ops,
        mda_ops.vector_mem_ops,
        base_ops.mem_ops as f64 / mda_ops.mem_ops as f64
    );

    println!("\n== 4. Simulated head-to-head (scaled system) ==");
    let base = simulate(&program, &SystemConfig::scaled(HierarchyKind::Baseline1P1L));
    let mda = simulate(&program, &SystemConfig::scaled(HierarchyKind::P1L2DifferentSet));
    println!(
        "  1P1L+prefetch: {:>12} cycles, {:>8} KB memory traffic",
        base.cycles,
        base.llc_memory_bytes() / 1024
    );
    println!(
        "  1P2L:          {:>12} cycles, {:>8} KB memory traffic  ({:.0}% less time)",
        mda.cycles,
        mda.llc_memory_bytes() / 1024,
        (1.0 - mda.normalized_cycles(&base)) * 100.0
    );
}
