//! Command-line front end for the coherence model checker.
//!
//! Runs, in order: the exhaustive BFS over the 1P2L duplicate-word model
//! and the 2P2L model (both fill policies), the mutation self-checks
//! (seeded bugs must be detected — a checker that cannot fail proves
//! nothing), and the differential replay against the real cache levels.
//! Exits nonzero on any violation, divergence, or undetected mutation.
//!
//! ```text
//! mda-check [--dim N] [--max-states N] [--depth N] [--random N]
//!           [--skip-bfs] [--skip-diff] [--skip-mutations]
//! ```

use mda_check::diff::{run_differential, run_differential_with_dropped_word, DiffConfig};
use mda_check::explore::{explore_1p2l, explore_2p2l, ExploreConfig};
use mda_check::model::Mutation;

struct Options {
    dim: u8,
    max_states: usize,
    depth: usize,
    random: usize,
    run_bfs: bool,
    run_diff: bool,
    run_mutations: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            dim: 2,
            max_states: 0,
            depth: 3,
            random: 256,
            run_bfs: true,
            run_diff: true,
            run_mutations: true,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--dim" => {
                opts.dim = value("--dim")?.parse().map_err(|e| format!("--dim: {e}"))?;
                if opts.dim < 1 || opts.dim > 4 {
                    return Err("--dim must be 1..=4 (the space explodes beyond)".to_string());
                }
            }
            "--max-states" => {
                opts.max_states =
                    value("--max-states")?.parse().map_err(|e| format!("--max-states: {e}"))?;
            }
            "--depth" => {
                opts.depth = value("--depth")?.parse().map_err(|e| format!("--depth: {e}"))?;
            }
            "--random" => {
                opts.random = value("--random")?.parse().map_err(|e| format!("--random: {e}"))?;
            }
            "--skip-bfs" => opts.run_bfs = false,
            "--skip-diff" => opts.run_diff = false,
            "--skip-mutations" => opts.run_mutations = false,
            "--help" | "-h" => {
                println!(
                    "mda-check [--dim N] [--max-states N] [--depth N] [--random N] \
                     [--skip-bfs] [--skip-diff] [--skip-mutations]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mda-check: {e}");
            std::process::exit(2);
        }
    };
    let mut failed = false;

    if opts.run_bfs {
        let cfg = ExploreConfig { max_states: opts.max_states };
        type BfsRun<'a> = Box<dyn Fn() -> mda_check::ExploreReport + 'a>;
        let runs: [(&str, BfsRun); 3] = [
            ("1P2L", Box::new(|| explore_1p2l(opts.dim, Mutation::None, &cfg))),
            ("2P2L/sparse", Box::new(|| explore_2p2l(opts.dim, true, Mutation::None, &cfg))),
            ("2P2L/dense", Box::new(|| explore_2p2l(opts.dim, false, Mutation::None, &cfg))),
        ];
        for (name, run) in &runs {
            let report = run();
            match &report.counterexample {
                Some(cex) => {
                    failed = true;
                    eprintln!("FAIL bfs {name}: {cex}");
                }
                None => {
                    let completeness = if report.truncated {
                        "TRUNCATED (raise --max-states)"
                    } else {
                        "exhaustive"
                    };
                    println!(
                        "ok   bfs {name}: {} states, {} transitions, {completeness}, \
                         dim {}",
                        report.states, report.transitions, opts.dim
                    );
                    if report.truncated {
                        failed = true;
                    }
                }
            }
        }
    }

    if opts.run_mutations {
        let cfg = ExploreConfig { max_states: opts.max_states };
        let mutations = [
            ("drop-writeback-word", Mutation::DropWritebackWord { offset: 0 }),
            ("skip-duplicate-eviction", Mutation::SkipDuplicateEviction),
        ];
        for (name, mutation) in mutations {
            let report = explore_1p2l(opts.dim, mutation, &cfg);
            match report.counterexample {
                Some(cex) => println!(
                    "ok   mutation {name}: caught as `{}` after {} ops",
                    cex.violation,
                    cex.trace.len()
                ),
                None => {
                    failed = true;
                    eprintln!("FAIL mutation {name}: seeded bug was NOT detected");
                }
            }
        }
        let report = explore_2p2l(opts.dim, true, Mutation::DropWritebackWord { offset: 0 }, &cfg);
        match report.counterexample {
            Some(cex) => {
                println!("ok   mutation drop-writeback-word (2P2L): caught as `{}`", cex.violation)
            }
            None => {
                failed = true;
                eprintln!("FAIL mutation drop-writeback-word (2P2L): NOT detected");
            }
        }
    }

    if opts.run_diff {
        let cfg = DiffConfig { depth: opts.depth, random: opts.random, ..DiffConfig::default() };
        let report = run_differential(&cfg);
        match &report.mismatch {
            Some(m) => {
                failed = true;
                eprintln!("FAIL diff: {m}");
            }
            None => println!(
                "ok   diff: {} sequences, {} ops, real levels agree with the models",
                report.sequences, report.steps
            ),
        }
        let mutated = run_differential_with_dropped_word(0, &cfg);
        match mutated.mismatch {
            Some(m) => println!(
                "ok   diff mutation: dropped-word double caught on {} at op {}",
                m.config,
                m.step + 1
            ),
            None => {
                failed = true;
                eprintln!("FAIL diff mutation: writeback-dropping double was NOT detected");
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
