//! Command-line front end for the project lint.
//!
//! ```text
//! mda-lint [ROOT]
//! ```
//!
//! Scans `ROOT/crates/*/src/**/*.rs` (default `.`) and prints one
//! `file:line: [rule] message` per violation. Exits 1 if any violation is
//! found, 2 on usage or I/O errors. The rule catalog lives in
//! `mda_check::lint` and DESIGN.md.

use std::path::PathBuf;

use mda_check::lint::lint_workspace;

fn main() {
    let mut args = std::env::args().skip(1);
    let root = PathBuf::from(args.next().unwrap_or_else(|| ".".to_string()));
    if let Some(extra) = args.next() {
        eprintln!("mda-lint: unexpected argument `{extra}` (usage: mda-lint [ROOT])");
        std::process::exit(2);
    }
    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mda-lint: failed to scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("mda-lint: clean");
    } else {
        eprintln!("mda-lint: {} violation(s)", findings.len());
        std::process::exit(1);
    }
}
