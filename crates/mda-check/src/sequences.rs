//! Bounded enumeration of access sequences for the differential mode.
//!
//! The differential replays sequences over a small sub-grid of tile 0 —
//! every scalar read/write of the sub-grid's words in both orientation
//! preferences, and every vector read/write of the sub-grid's lines. All
//! sequences up to a fixed depth are enumerated exhaustively; longer
//! interleavings are sampled with a fixed-seed xorshift generator so runs
//! stay deterministic.

use crate::model::MODEL_TILE;
use crate::ops::Op;
use mda_mem::{LineKey, Orientation, WordAddr};

/// The differential access alphabet over a `sub × sub` corner of the model
/// tile (`sub ≤ 8`). Unlike the explorer alphabets this contains only
/// processor-side accesses: fills are implied by misses, and eviction /
/// flush are exercised by the end-of-sequence flush comparison.
pub fn diff_alphabet(sub: u8) -> Vec<Op> {
    let mut ops = Vec::new();
    for r in 0..sub {
        for c in 0..sub {
            let word = WordAddr::from_tile_coords(MODEL_TILE, r, c);
            for orient in Orientation::BOTH {
                ops.push(Op::ScalarRead { word, orient });
                ops.push(Op::ScalarWrite { word, orient });
            }
        }
    }
    for orient in Orientation::BOTH {
        for idx in 0..sub {
            let line = LineKey::new(MODEL_TILE, orient, idx);
            ops.push(Op::VectorRead { line });
            ops.push(Op::VectorWrite { line });
        }
    }
    ops
}

/// Calls `f` with every op sequence of length `1..=depth` over `alphabet`
/// (lexicographic order), then with `random` additional sequences of length
/// `random_len` drawn from a xorshift64 stream seeded with `seed`. Stops
/// early if `f` returns `false`.
pub fn for_each_sequence(
    alphabet: &[Op],
    depth: usize,
    random: usize,
    random_len: usize,
    seed: u64,
    mut f: impl FnMut(&[Op]) -> bool,
) {
    let n = alphabet.len();
    let mut buf: Vec<Op> = Vec::with_capacity(depth.max(random_len));
    for len in 1..=depth {
        // Odometer over `len` digits of base `n`.
        let mut digits = vec![0usize; len];
        loop {
            buf.clear();
            buf.extend(digits.iter().map(|&d| alphabet[d]));
            if !f(&buf) {
                return;
            }
            let mut pos = len;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                digits[pos] += 1;
                if digits[pos] < n {
                    break;
                }
                digits[pos] = 0;
            }
            if digits.iter().all(|&d| d == 0) {
                break;
            }
        }
    }
    let mut state = seed | 1;
    let mut next = || {
        // xorshift64: deterministic, dependency-free.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..random {
        buf.clear();
        for _ in 0..random_len {
            buf.push(alphabet[(next() % n as u64) as usize]);
        }
        if !f(&buf) {
            return;
        }
    }
}

/// Number of sequences [`for_each_sequence`] visits (for reporting).
pub fn sequence_count(alphabet_len: usize, depth: usize, random: usize) -> usize {
    let mut total = 0usize;
    let mut pow = 1usize;
    for _ in 0..depth {
        pow = pow.saturating_mul(alphabet_len);
        total = total.saturating_add(pow);
    }
    total.saturating_add(random)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_enumeration_counts_match() {
        let alphabet = diff_alphabet(2);
        assert_eq!(alphabet.len(), 24);
        let mut seen = 0usize;
        for_each_sequence(&alphabet, 2, 5, 7, 0x1234, |seq| {
            assert!(!seq.is_empty());
            seen += 1;
            true
        });
        assert_eq!(seen, sequence_count(24, 2, 5));
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let alphabet = diff_alphabet(2);
        let mut seen = 0usize;
        for_each_sequence(&alphabet, 2, 0, 0, 1, |_| {
            seen += 1;
            seen < 10
        });
        assert_eq!(seen, 10);
    }
}
