//! Differential mode: replay enumerated access sequences through the real
//! cache levels and cross-check every observable against the abstract
//! models.
//!
//! For each sequence the driver runs a fresh real level (`Cache1P2L` under
//! both index mappings, `Cache2P2L` under both fill policies) next to a
//! fresh abstract model, decomposing each op into the same
//! probe → policy-writeback → fill protocol the `mda-sim` hierarchy uses.
//! After every op it compares: hit/miss classification, the multiset of
//! emitted writebacks (line + dirty mask), and the full per-line
//! presence/dirty state of the model tile; each sequence ends with a flush
//! whose writebacks are compared the same way. The configurations are sized
//! so the sub-grid never suffers a capacity eviction — replacement is
//! covered separately by the BFS explorer's nondeterministic evictions.

use crate::model::{Model1P2L, Mutation, MODEL_TILE};
use crate::model2p2l::Model2P2L;
use crate::ops::{apply_1p2l, apply_2p2l, ModelStep, Op};
use crate::sequences::{diff_alphabet, for_each_sequence, sequence_count};
use mda_cache::{
    Access, CacheConfig, CacheLevel, CacheStats, InlineVec, Probe, SetMapping, Writeback,
    Cache1P2L, Cache2P2L,
};
use mda_mem::{LineKey, Orientation, TILE_LINES};

/// Differential workload bounds.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Sub-grid edge (words per enumerated row/column), `1..=8`.
    pub sub: u8,
    /// Exhaustive enumeration depth (all sequences of length `1..=depth`).
    pub depth: usize,
    /// Extra fixed-seed random sequences per cache configuration.
    pub random: usize,
    /// Length of each random sequence.
    pub random_len: usize,
    /// Seed for the random stream.
    pub seed: u64,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig { sub: 2, depth: 3, random: 256, random_len: 12, seed: 0x6d64_6163 }
    }
}

/// A divergence between a real level and its abstract model.
#[derive(Debug, Clone)]
pub struct DiffMismatch {
    /// Which cache configuration diverged.
    pub config: String,
    /// The sequence replayed (the implicit final flush appears as `FLUSH`).
    pub trace: Vec<Op>,
    /// Zero-based index of the diverging op within `trace`.
    pub step: usize,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl std::fmt::Display for DiffMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "differential mismatch on {} at op {}:", self.config, self.step + 1)?;
        writeln!(f, "  {}", self.detail)?;
        writeln!(f, "  sequence:")?;
        for (i, op) in self.trace.iter().enumerate() {
            let marker = if i == self.step { "=>" } else { "  " };
            writeln!(f, "  {marker} {:>2}. {op}", i + 1)?;
        }
        Ok(())
    }
}

/// Result of a differential run.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Sequences replayed (summed over cache configurations).
    pub sequences: usize,
    /// Individual ops checked.
    pub steps: usize,
    /// First divergence found, if any.
    pub mismatch: Option<DiffMismatch>,
}

impl DiffReport {
    /// Whether every sequence agreed.
    pub fn is_clean(&self) -> bool {
        self.mismatch.is_none()
    }
}

/// Either abstract model, unified for the replay loop.
enum ModelSide {
    M1(Model1P2L),
    M2(Model2P2L),
}

impl ModelSide {
    fn step(&mut self, op: &Op) -> ModelStep {
        match self {
            ModelSide::M1(m) => apply_1p2l(m, op),
            ModelSide::M2(m) => apply_2p2l(m, op),
        }
    }

    fn present(&self, line: &LineKey) -> bool {
        match self {
            ModelSide::M1(m) => m.present(line),
            ModelSide::M2(m) => m.present(line),
        }
    }

    /// The dirty mask the *real* level is expected to report for `line`
    /// (2P2L tracks dirtiness per line, so a dirty line reads back `0xFF`).
    fn expected_dirty(&self, line: &LineKey) -> u8 {
        match self {
            ModelSide::M1(m) => m.dirty_mask(line),
            ModelSide::M2(m) => {
                if m.line_dirty(line) {
                    0xFF
                } else {
                    0
                }
            }
        }
    }

    fn check(&self) -> Result<(), crate::model::Violation> {
        match self {
            ModelSide::M1(m) => m.check_invariants(),
            ModelSide::M2(m) => m.check_invariants(),
        }
    }
}

/// Which words of `line` a write op modifies (the hierarchy's
/// write-allocate mask).
fn written_mask(op: &Op, line: &LineKey) -> u8 {
    match op {
        Op::VectorWrite { .. } => 0xFF,
        Op::ScalarWrite { word, .. } => line.offset_of(*word).map(|off| 1u8 << off).unwrap_or(0),
        _ => 0,
    }
}

/// Applies `op` to the real level exactly as the `mda-sim` hierarchy
/// would: probe, forward the policy writebacks, then on a miss fill the
/// dense companions clean and the demand line with the write-allocate
/// mask. Returns the hit classification and every writeback emitted.
fn drive_real(real: &mut dyn CacheLevel, op: &Op) -> (bool, Vec<Writeback>) {
    let mut wbs: Vec<Writeback> = Vec::new();
    let access = match *op {
        Op::ScalarRead { word, orient } => Access::scalar_read(word, orient, 0),
        Op::ScalarWrite { word, orient } => Access::scalar_write(word, orient, 0),
        Op::VectorRead { line } => Access::vector_read(line, 0),
        Op::VectorWrite { line } => Access::vector_write(line, 0),
        Op::Flush => {
            real.flush(&mut wbs);
            return (true, wbs);
        }
        Op::Absorb { line, dirty } => {
            let wb = Writeback { line, dirty };
            if !real.absorb_writeback(&wb, &mut wbs) {
                real.fill(line, dirty, &mut wbs);
            }
            return (true, wbs);
        }
        Op::EvictLine { .. } | Op::EvictBlock => return (true, wbs),
    };
    let mut probe = Probe::hit();
    real.probe_into(&access, &mut probe);
    wbs.extend(probe.writebacks.iter().copied());
    if !probe.hit {
        let demand = probe.fills[0];
        // Companions first, then the demand line — the hierarchy's order.
        for i in 1..probe.fills.len() {
            real.fill(probe.fills[i], 0, &mut wbs);
        }
        let dirty = if access.is_write { written_mask(op, &demand) } else { 0 };
        real.fill(demand, dirty, &mut wbs);
    }
    (probe.hit, wbs)
}

/// Canonical sortable key for writeback multiset comparison.
fn wb_key(wb: &Writeback) -> (u64, u8, u8, u8) {
    (wb.line.tile, wb.line.orient as u8, wb.line.idx, wb.dirty)
}

fn sorted_wbs(wbs: &[Writeback]) -> Vec<(u64, u8, u8, u8)> {
    let mut keys: Vec<_> = wbs.iter().map(wb_key).collect();
    keys.sort_unstable();
    keys
}

fn fmt_wbs(wbs: &[Writeback]) -> String {
    let items: Vec<String> =
        wbs.iter().map(|wb| format!("{} mask {:#04x}", wb.line, wb.dirty)).collect();
    format!("[{}]", items.join(", "))
}

/// Replays one sequence (plus a final flush) on a fresh real/model pair,
/// returning the first divergence.
fn replay(
    config: &str,
    real: &mut dyn CacheLevel,
    model: &mut ModelSide,
    seq: &[Op],
    steps: &mut usize,
) -> Result<(), DiffMismatch> {
    let mut trace: Vec<Op> = seq.to_vec();
    trace.push(Op::Flush);
    let mismatch = |step: usize, detail: String| DiffMismatch {
        config: config.to_string(),
        trace: trace.clone(),
        step,
        detail,
    };
    for (i, op) in trace.iter().enumerate() {
        *steps += 1;
        let model_step = model.step(op);
        let (real_hit, real_wbs) = drive_real(real, op);
        let access_op = !matches!(op, Op::Flush);
        if access_op && model_step.hit != real_hit {
            return Err(mismatch(
                i,
                format!("hit/miss disagreement: model {} real {}", model_step.hit, real_hit),
            ));
        }
        if model_step.stale_read {
            return Err(mismatch(i, "model served a read from a stale copy".to_string()));
        }
        if sorted_wbs(&model_step.writebacks) != sorted_wbs(&real_wbs) {
            return Err(mismatch(
                i,
                format!(
                    "writeback sets differ: model {} real {}",
                    fmt_wbs(&model_step.writebacks),
                    fmt_wbs(&real_wbs)
                ),
            ));
        }
        if let Err(violation) = model.check() {
            return Err(mismatch(i, format!("model invariant violated: {violation}")));
        }
        // Full state comparison over every line of the model tile.
        let mut real_lines: Vec<(LineKey, u8)> = Vec::new();
        real.for_each_line(&mut |line, dirty| real_lines.push((line, dirty)));
        for orient in Orientation::BOTH {
            for idx in 0..TILE_LINES as u8 {
                let line = LineKey::new(MODEL_TILE, orient, idx);
                let real_entry = real_lines.iter().find(|(l, _)| *l == line);
                let real_present = real.contains_line(&line);
                if real_present != real_entry.is_some() {
                    return Err(mismatch(
                        i,
                        format!("real level inconsistent about presence of {line}"),
                    ));
                }
                if model.present(&line) != real_present {
                    return Err(mismatch(
                        i,
                        format!(
                            "presence of {line} differs: model {} real {}",
                            model.present(&line),
                            real_present
                        ),
                    ));
                }
                let real_dirty = real_entry.map(|(_, d)| *d).unwrap_or(0);
                if model.expected_dirty(&line) != real_dirty {
                    return Err(mismatch(
                        i,
                        format!(
                            "dirty mask of {line} differs: model {:#04x} real {real_dirty:#04x}",
                            model.expected_dirty(&line)
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// One real-level configuration under differential test.
struct DiffTarget {
    name: &'static str,
    make_real: fn() -> Box<dyn CacheLevel>,
    make_model: fn() -> ModelSide,
}

/// An L1-sized config: with the Different-Set mapping, row `i` and column
/// `i` of tile 0 share a set (≤ 2 lines per 4-way set); with Same-Set, the
/// whole 2×2 sub-grid is 4 lines in one 4-way set. Either way the
/// differential sub-grid never suffers a capacity eviction.
fn l1_cfg() -> CacheConfig {
    CacheConfig::l1_32k()
}

fn targets() -> Vec<DiffTarget> {
    vec![
        DiffTarget {
            name: "1P2L/different-set",
            make_real: || Box::new(Cache1P2L::new(l1_cfg(), SetMapping::DifferentSet)),
            make_model: || ModelSide::M1(Model1P2L::new(8, Mutation::None)),
        },
        DiffTarget {
            name: "1P2L/same-set",
            make_real: || Box::new(Cache1P2L::new(l1_cfg(), SetMapping::SameSet)),
            make_model: || ModelSide::M1(Model1P2L::new(8, Mutation::None)),
        },
        DiffTarget {
            name: "2P2L/sparse",
            make_real: || Box::new(Cache2P2L::new(l1_cfg())),
            make_model: || ModelSide::M2(Model2P2L::new(8, true, Mutation::None)),
        },
        DiffTarget {
            name: "2P2L/dense",
            make_real: || Box::new(Cache2P2L::with_fill_policy(l1_cfg(), false)),
            make_model: || ModelSide::M2(Model2P2L::new(8, false, Mutation::None)),
        },
    ]
}

fn run_target(
    name: &str,
    make_real: &dyn Fn() -> Box<dyn CacheLevel>,
    make_model: &dyn Fn() -> ModelSide,
    cfg: &DiffConfig,
    sequences: &mut usize,
    steps: &mut usize,
) -> Option<DiffMismatch> {
    let alphabet = diff_alphabet(cfg.sub);
    let mut found = None;
    for_each_sequence(
        &alphabet,
        cfg.depth,
        cfg.random,
        cfg.random_len,
        cfg.seed,
        |seq| {
            *sequences += 1;
            let mut real = make_real();
            let mut model = make_model();
            match replay(name, real.as_mut(), &mut model, seq, steps) {
                Ok(()) => true,
                Err(m) => {
                    found = Some(m);
                    false
                }
            }
        },
    );
    found
}

/// Runs the full differential suite: both 1P2L mappings and both 2P2L fill
/// policies against their abstract models.
pub fn run_differential(cfg: &DiffConfig) -> DiffReport {
    let mut sequences = 0usize;
    let mut steps = 0usize;
    let mut mismatch = None;
    for target in targets() {
        if mismatch.is_some() {
            break;
        }
        mismatch = run_target(
            target.name,
            &target.make_real,
            &target.make_model,
            cfg,
            &mut sequences,
            &mut steps,
        );
    }
    DiffReport { sequences, steps, mismatch }
}

/// Expected sequence total for progress reporting.
pub fn expected_sequences(cfg: &DiffConfig) -> usize {
    sequence_count(diff_alphabet(cfg.sub).len(), cfg.depth, cfg.random) * targets().len()
}

/// A [`CacheLevel`] test double that silently drops one word offset from
/// every writeback it emits — the seeded coherence bug the mutation tests
/// require the differential mode to catch.
pub struct WritebackDropper<L: CacheLevel> {
    inner: L,
    offset: u8,
}

impl<L: CacheLevel> WritebackDropper<L> {
    /// Wraps `inner`, dropping line offset `offset` from all writebacks.
    pub fn new(inner: L, offset: u8) -> WritebackDropper<L> {
        WritebackDropper { inner, offset }
    }

    fn mangle(&self, wbs: &mut Vec<Writeback>, from: usize) {
        let keep = !(1u8 << self.offset);
        let mut i = from;
        while i < wbs.len() {
            wbs[i].dirty &= keep;
            if wbs[i].dirty == 0 {
                wbs.remove(i);
            } else {
                i += 1;
            }
        }
    }
}

impl<L: CacheLevel> CacheLevel for WritebackDropper<L> {
    fn probe_into(&mut self, acc: &Access, out: &mut Probe) {
        self.inner.probe_into(acc, out);
        let keep = !(1u8 << self.offset);
        let mut filtered: InlineVec<Writeback, { mda_cache::level::PROBE_MAX }> = InlineVec::new();
        for wb in out.writebacks.iter() {
            let dirty = wb.dirty & keep;
            if dirty != 0 {
                filtered.push(Writeback { line: wb.line, dirty });
            }
        }
        out.writebacks = filtered;
    }

    fn fill(&mut self, line: LineKey, dirty: u8, out: &mut Vec<Writeback>) {
        let from = out.len();
        self.inner.fill(line, dirty, out);
        self.mangle(out, from);
    }

    fn absorb_writeback(&mut self, wb: &Writeback, cascades: &mut Vec<Writeback>) -> bool {
        let from = cascades.len();
        let absorbed = self.inner.absorb_writeback(wb, cascades);
        self.mangle(cascades, from);
        absorbed
    }

    fn contains_line(&self, line: &LineKey) -> bool {
        self.inner.contains_line(line)
    }

    fn occupancy(&self) -> (usize, usize, usize) {
        self.inner.occupancy()
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn stats_mut(&mut self) -> &mut CacheStats {
        self.inner.stats_mut()
    }

    fn config(&self) -> &CacheConfig {
        self.inner.config()
    }

    fn flush(&mut self, out: &mut Vec<Writeback>) {
        let from = out.len();
        self.inner.flush(out);
        self.mangle(out, from);
    }

    fn for_each_line(&self, f: &mut dyn FnMut(LineKey, u8)) {
        self.inner.for_each_line(f);
    }
}

/// Runs the differential with a seeded writeback-dropping bug wrapped
/// around the real 1P2L level; used by the mutation tests to prove the
/// differential actually detects broken writebacks.
pub fn run_differential_with_dropped_word(offset: u8, cfg: &DiffConfig) -> DiffReport {
    let mut sequences = 0usize;
    let mut steps = 0usize;
    let alphabet = diff_alphabet(cfg.sub);
    let mut mismatch = None;
    for_each_sequence(
        &alphabet,
        cfg.depth,
        cfg.random,
        cfg.random_len,
        cfg.seed,
        |seq| {
            sequences += 1;
            let mut real = WritebackDropper::new(
                Cache1P2L::new(l1_cfg(), SetMapping::DifferentSet),
                offset,
            );
            let mut model = ModelSide::M1(Model1P2L::new(8, Mutation::None));
            match replay("1P2L/dropped-word", &mut real, &mut model, seq, &mut steps) {
                Ok(()) => true,
                Err(m) => {
                    mismatch = Some(m);
                    false
                }
            }
        },
    );
    DiffReport { sequences, steps, mismatch }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> DiffConfig {
        DiffConfig { sub: 2, depth: 2, random: 32, random_len: 10, seed: 0xBEEF }
    }

    #[test]
    fn real_levels_agree_with_models_on_short_sequences() {
        let report = run_differential(&quick());
        assert!(report.is_clean(), "{}", report.mismatch.unwrap());
        assert!(report.sequences > 0 && report.steps > 0);
    }

    #[test]
    fn dropped_writeback_word_is_caught() {
        let report = run_differential_with_dropped_word(0, &quick());
        let m = report.mismatch.expect("seeded writeback bug must be detected");
        assert!(m.detail.contains("writeback"), "unexpected detail: {}", m.detail);
    }
}
