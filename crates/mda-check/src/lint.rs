//! `mda-lint` — the repo's zero-dependency source lint.
//!
//! Rules (IDs as printed and as accepted by `allow`):
//!
//! * `hot-path-alloc` — files carrying a `// mda-lint: hot-path` marker
//!   must not use allocating constructs (`Vec::new`, `Box::new`,
//!   `format!`, `.collect(`, `.to_vec(`) outside `#[cfg(test)]`.
//! * `lib-unwrap` — library crates (everything except `mda-bench` and
//!   `src/bin/` entry points) must not use `.unwrap()`, `.expect(` or
//!   `panic!` outside `#[cfg(test)]`.
//! * `hash-iter` — report/CSV/table modules must not use `HashMap` /
//!   `HashSet` (their iteration order would make figure output
//!   nondeterministic).
//! * `wall-clock` — `Instant::now` / `SystemTime` are allowed only in
//!   `mda-bench` (simulation results must not depend on host time).
//! * `bad-allow` — an `allow` directive without a reason string, or for an
//!   unknown rule (suppressions must be auditable).
//!
//! A violation on line `N` is suppressed by
//! `// mda-lint: allow(<rule>): <reason>` on line `N` or line `N-1`.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{scrub, Scrubbed};

/// All rule IDs, in reporting order.
pub const RULES: [&str; 5] =
    ["hot-path-alloc", "lib-unwrap", "hash-iter", "wall-clock", "bad-allow"];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the violation is in (as given to the linter).
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Rule ID.
    pub rule: &'static str,
    /// What was matched.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// A parsed `mda-lint: allow(rule): reason` directive.
struct Allow {
    line: usize,
    rule: String,
    has_reason: bool,
}

/// Directives extracted from a file's comments.
struct Directives {
    hot_path: bool,
    allows: Vec<Allow>,
}

fn parse_directives(scrubbed: &Scrubbed) -> Directives {
    let mut hot_path = false;
    let mut allows = Vec::new();
    for comment in &scrubbed.comments {
        let Some(rest) = comment.text.trim().strip_prefix("mda-lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "hot-path" {
            hot_path = true;
            continue;
        }
        if let Some(args) = rest.strip_prefix("allow(") {
            let Some(close) = args.find(')') else {
                continue;
            };
            let rule = args[..close].trim().to_string();
            let tail = args[close + 1..].trim();
            let has_reason = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
            allows.push(Allow { line: comment.line, rule, has_reason });
        }
    }
    Directives { hot_path, allows }
}

/// How a file participates in each rule, derived from its workspace path.
#[derive(Debug, Clone, Copy)]
struct FileScope {
    hot_path_eligible: bool,
    lib_crate: bool,
    report_module: bool,
    bench_crate: bool,
}

fn classify(path: &Path) -> FileScope {
    let norm: String = path.to_string_lossy().replace('\\', "/");
    let bench_crate = norm.contains("/mda-bench/") || norm.starts_with("mda-bench/");
    let is_bin = norm.contains("/src/bin/");
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    let report_module = ["report", "table", "chart", "csv"].iter().any(|m| stem.contains(m));
    FileScope {
        hot_path_eligible: true,
        lib_crate: !bench_crate && !is_bin,
        report_module,
        bench_crate,
    }
}

const ALLOC_PATTERNS: [&str; 5] =
    ["Vec::new", "Box::new", "format!", ".collect(", ".to_vec("];
const UNWRAP_PATTERNS: [&str; 3] = [".unwrap()", ".expect(", "panic!"];
const HASH_PATTERNS: [&str; 2] = ["HashMap", "HashSet"];
const CLOCK_PATTERNS: [&str; 2] = ["Instant::now", "SystemTime"];

/// Lints one file's source text. `path` is used for scoping and reporting.
pub fn lint_source(path: &Path, src: &str) -> Vec<Finding> {
    let scrubbed = scrub(src);
    let directives = parse_directives(&scrubbed);
    let scope = classify(path);
    let mut findings = Vec::new();

    let suppressed = |rule: &str, line: usize| {
        directives.allows.iter().any(|a| {
            a.has_reason && a.rule == rule && (a.line == line || a.line + 1 == line)
        })
    };

    // A pattern that starts with an identifier character must match at a
    // word boundary (`Vec::new` must not fire inside `InlineVec::new`).
    let matches_pattern = |text: &str, pat: &str| -> bool {
        let needs_boundary =
            pat.starts_with(|c: char| c.is_alphanumeric() || c == '_');
        let mut from = 0usize;
        while let Some(pos) = text[from..].find(pat) {
            let at = from + pos;
            if !needs_boundary
                || !text[..at].ends_with(|c: char| c.is_alphanumeric() || c == '_')
            {
                return true;
            }
            from = at + pat.len();
        }
        false
    };

    let mut check = |rule: &'static str, patterns: &[&str], skip_tests: bool| {
        for (idx, text) in scrubbed.lines.iter().enumerate() {
            let line = idx + 1;
            if skip_tests && scrubbed.is_test_line(line) {
                continue;
            }
            for pat in patterns {
                if matches_pattern(text, pat) && !suppressed(rule, line) {
                    findings.push(Finding {
                        file: path.to_path_buf(),
                        line,
                        rule,
                        message: format!("`{pat}` is not allowed here"),
                    });
                }
            }
        }
    };

    if directives.hot_path && scope.hot_path_eligible {
        check("hot-path-alloc", &ALLOC_PATTERNS, true);
    }
    if scope.lib_crate {
        check("lib-unwrap", &UNWRAP_PATTERNS, true);
    }
    if scope.report_module {
        check("hash-iter", &HASH_PATTERNS, true);
    }
    if !scope.bench_crate {
        check("wall-clock", &CLOCK_PATTERNS, true);
    }

    // Malformed suppressions are themselves violations: an allow must name
    // a known rule and carry a reason.
    for allow in &directives.allows {
        if !RULES.contains(&allow.rule.as_str()) {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: allow.line,
                rule: "bad-allow",
                message: format!("allow names unknown rule `{}`", allow.rule),
            });
        } else if !allow.has_reason {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: allow.line,
                rule: "bad-allow",
                message: format!(
                    "allow({}) needs a reason: `// mda-lint: allow({}): <why>`",
                    allow.rule, allow.rule
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Recursively collects the `.rs` files under `crates/*/src`, in sorted
/// order for deterministic output.
fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**/*.rs` under `root`. Paths in findings are
/// reported relative to `root` when possible.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in source_files(root)? {
        let src = std::fs::read_to_string(&file)?;
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        findings.extend(lint_source(&rel, &src));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_path() -> PathBuf {
        PathBuf::from("crates/mda-cache/src/example.rs")
    }

    #[test]
    fn unwrap_in_lib_crate_is_flagged() {
        let findings = lint_source(&lib_path(), "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "lib-unwrap");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn unwrap_in_cfg_test_is_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(lint_source(&lib_path(), src).is_empty());
    }

    #[test]
    fn unwrap_in_bench_or_bin_is_ignored() {
        let src = "fn main() { std::env::args().next().unwrap(); }\n";
        assert!(lint_source(&PathBuf::from("crates/mda-bench/src/lib.rs"), src).is_empty());
        assert!(lint_source(&PathBuf::from("crates/mda-check/src/bin/mda-lint.rs"), src)
            .is_empty());
    }

    #[test]
    fn hot_path_alloc_requires_marker() {
        let src = "fn f() -> Vec<u8> { Vec::new() }\n";
        assert!(lint_source(&lib_path(), src).is_empty(), "no marker, no rule");
        let marked = format!("// mda-lint: hot-path\n{src}");
        let findings = lint_source(&lib_path(), &marked);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "hot-path-alloc");
    }

    #[test]
    fn inline_vec_new_is_not_vec_new() {
        let src =
            "// mda-lint: hot-path\nfn f() -> InlineVec<u8, 4> { InlineVec::new() }\n";
        assert!(lint_source(&lib_path(), src).is_empty(), "word boundary respected");
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "// mda-lint: allow(lib-unwrap): contract documented under # Panics\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint_source(&lib_path(), src).is_empty());
        let inline = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // mda-lint: allow(lib-unwrap): documented\n";
        assert!(lint_source(&lib_path(), inline).is_empty());
    }

    #[test]
    fn allow_without_reason_is_itself_flagged() {
        let src = "// mda-lint: allow(lib-unwrap)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let findings = lint_source(&lib_path(), src);
        assert!(findings.iter().any(|f| f.rule == "bad-allow"));
        assert!(findings.iter().any(|f| f.rule == "lib-unwrap"), "reasonless allow is void");
    }

    #[test]
    fn allow_unknown_rule_is_flagged() {
        let src = "// mda-lint: allow(no-such-rule): whatever\n";
        let findings = lint_source(&lib_path(), src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "bad-allow");
    }

    #[test]
    fn hash_in_report_module_is_flagged() {
        let src = "use std::collections::HashMap;\n";
        let findings =
            lint_source(&PathBuf::from("crates/mda-sim/src/report.rs"), src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "hash-iter");
        assert!(lint_source(&lib_path(), src).is_empty(), "only report modules");
    }

    #[test]
    fn wall_clock_outside_bench_is_flagged() {
        let src = "fn f() { let _ = std::time::Instant::now(); }\n";
        let findings = lint_source(&lib_path(), src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "wall-clock");
        assert!(lint_source(&PathBuf::from("crates/mda-bench/src/scale.rs"), src).is_empty());
    }

    #[test]
    fn patterns_in_strings_and_comments_do_not_fire() {
        let src = "// calling panic! here would be bad\nconst HELP: &str = \"never .unwrap() user input\";\n";
        assert!(lint_source(&lib_path(), src).is_empty());
    }
}
