//! # mda-check — machine-checked invariants for the MDACache workspace
//!
//! Two pillars, both zero-dependency:
//!
//! 1. **Coherence model checker.** Abstract models of the duplicate-word
//!    policy ([`model::Model1P2L`]) and the physically 2-D block cache
//!    ([`model2p2l::Model2P2L`]) with exact per-word value freshness,
//!    explored exhaustively by BFS over small tiles ([`explore`]) and
//!    cross-checked against the real `mda-cache` levels by replaying
//!    enumerated access sequences ([`diff`]). Three invariants hold on
//!    every reachable state: no read returns a stale word, at most one
//!    dirty copy per word exists across orientations, and flushing
//!    converges memory to program order. Seeded mutations
//!    ([`model::Mutation`], [`diff::WritebackDropper`]) prove the checker
//!    is not vacuous.
//! 2. **Source lint.** [`lint`] scans `crates/*/src` with a hand-rolled
//!    lexer ([`lexer`]) and enforces the repo's hot-path allocation,
//!    no-panic, determinism, and wall-clock rules; see the `mda-lint`
//!    binary.
//!
//! ```
//! use mda_check::explore::{explore_1p2l, ExploreConfig};
//! use mda_check::model::Mutation;
//!
//! let report = explore_1p2l(2, Mutation::None, &ExploreConfig::default());
//! assert!(report.is_clean_and_exhaustive());
//! ```

pub mod diff;
pub mod explore;
pub mod lexer;
pub mod lint;
pub mod model;
pub mod model2p2l;
pub mod ops;
pub mod sequences;

pub use diff::{run_differential, run_differential_with_dropped_word, DiffConfig, DiffReport};
pub use explore::{explore_1p2l, explore_2p2l, ExploreConfig, ExploreReport};
pub use lint::{lint_source, lint_workspace, Finding};
pub use model::{Model1P2L, Mutation, Violation};
pub use model2p2l::Model2P2L;
pub use ops::Op;
