//! Abstract model of the 1P2L duplicate-word coherence policy (paper
//! Fig. 9), with explicit value tracking.
//!
//! The model is an independent re-implementation of the policy from the
//! paper's specification, deliberately *not* sharing code with
//! [`mda_cache::Cache1P2L`]: the checker's differential mode cross-checks
//! the two, and the BFS explorer enumerates this model's reachable states
//! to prove the policy's invariants exhaustively on small tiles.
//!
//! ## State
//!
//! One tile of `dim × dim` words (`dim ≤ 8`), an unbounded cache (no
//! replacement — evictions are explicit transitions so the explorer covers
//! *every* replacement behavior, subsuming both Different-Set and Same-Set
//! mappings), and memory. Per orientation and line index the model keeps a
//! presence bit, a per-word dirty mask, and a per-word **fresh** mask;
//! memory keeps a per-word fresh mask.
//!
//! "Fresh" abstracts data values: a copy is fresh iff it equals the
//! program-order value of the word (the value of the last write). A write
//! makes the written copy fresh and every other holder — the other
//! orientation's copy and memory — stale. This finite abstraction is exact
//! for the three checked invariants: a read returns stale data iff it is
//! served by a non-fresh copy, and flush converges iff it leaves memory
//! fresh everywhere.

use mda_cache::Writeback;
use mda_mem::{LineKey, Orientation, TileId, WordAddr};

/// Largest supported tile dimension (the real geometry).
pub const MAX_DIM: usize = 8;

/// The tile all model lines and words live in.
pub const MODEL_TILE: TileId = 0;

/// A seeded model bug, used by the mutation tests to prove the checker
/// actually detects broken coherence (and not vacuously "no violations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mutation {
    /// Faithful policy.
    #[default]
    None,
    /// Writebacks silently drop the word at this line offset: its dirty bit
    /// is cleared but memory is never updated. Caught by the
    /// flush-convergence invariant (and by the differential mode's
    /// writeback comparison).
    DropWritebackWord {
        /// Line offset of the dropped word.
        offset: u8,
    },
    /// Writes skip evicting the other-orientation copy of the written word,
    /// leaving a stale duplicate behind. Caught by the stale-copy
    /// invariant.
    SkipDuplicateEviction,
}

/// An invariant violation found in a model state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// A resident copy of `word` no longer matches program order: a read
    /// served by it would return stale data.
    StaleCopy {
        /// The affected word.
        word: WordAddr,
        /// The orientation of the stale copy.
        orient: Orientation,
    },
    /// More than one dirty copy of `word` exists across orientations.
    DoubleDirty {
        /// The affected word.
        word: WordAddr,
    },
    /// A dirty word is duplicated: the policy requires modification to
    /// happen to a sole copy.
    DirtyNotSole {
        /// The affected word.
        word: WordAddr,
    },
    /// After a full flush, memory still disagrees with program order.
    FlushDiverged {
        /// The word whose memory copy is stale after flush.
        word: WordAddr,
    },
    /// A line carries a dirty bit without being valid (2P2L structural
    /// invariant).
    DirtyInvalidLine {
        /// The offending line.
        line: LineKey,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::StaleCopy { word, orient } => {
                write!(f, "stale {orient} copy of word {word}: a read would return old data")
            }
            Violation::DoubleDirty { word } => {
                write!(f, "two dirty copies of word {word}")
            }
            Violation::DirtyNotSole { word } => {
                write!(f, "dirty word {word} is duplicated (modification must be sole-copy)")
            }
            Violation::FlushDiverged { word } => {
                write!(f, "flush left memory stale at word {word}")
            }
            Violation::DirtyInvalidLine { line } => {
                write!(f, "line {line} is dirty but not valid")
            }
        }
    }
}

/// Abstract 1P2L cache + memory state over one `dim × dim` tile.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Model1P2L {
    dim: u8,
    mutation: Mutation,
    /// Presence bitmask over line indices, per orientation.
    present: [u8; 2],
    /// Per-line dirty word mask, `[orient][idx]`, offsets `0..dim`.
    dirty: [[u8; MAX_DIM]; 2],
    /// Per-line fresh word mask (meaningful only while present).
    fresh: [[u8; MAX_DIM]; 2],
    /// Memory freshness: `mem_fresh[r]` bit `c` covers word `(r, c)`.
    mem_fresh: [u8; MAX_DIM],
}

impl Model1P2L {
    /// An empty cache over a `dim × dim` tile with memory fresh everywhere.
    pub fn new(dim: u8, mutation: Mutation) -> Model1P2L {
        assert!(dim >= 1 && dim as usize <= MAX_DIM, "dim must be in 1..=8");
        let full = Self::full_mask_for(dim);
        Model1P2L {
            dim,
            mutation,
            present: [0; 2],
            dirty: [[0; MAX_DIM]; 2],
            fresh: [[0; MAX_DIM]; 2],
            mem_fresh: [full; MAX_DIM],
        }
    }

    fn full_mask_for(dim: u8) -> u8 {
        if dim as usize >= 8 { 0xFF } else { (1u8 << dim) - 1 }
    }

    /// The tile dimension.
    pub fn dim(&self) -> u8 {
        self.dim
    }

    /// The word mask covering a whole model line.
    pub fn full_mask(&self) -> u8 {
        Self::full_mask_for(self.dim)
    }

    /// All `dim × dim` line keys of the model tile.
    pub fn all_lines(&self) -> impl Iterator<Item = LineKey> + '_ {
        let dim = self.dim;
        Orientation::BOTH
            .into_iter()
            .flat_map(move |o| (0..dim).map(move |i| LineKey::new(MODEL_TILE, o, i)))
    }

    /// Tile-local `(r, c)` coordinates of the word at `off` on `line`.
    fn coords(line: &LineKey, off: u8) -> (u8, u8) {
        match line.orient {
            Orientation::Row => (line.idx, off),
            Orientation::Col => (off, line.idx),
        }
    }

    fn mem_is_fresh(&self, r: u8, c: u8) -> bool {
        self.mem_fresh[r as usize] & (1 << c) != 0
    }

    fn set_mem_fresh(&mut self, r: u8, c: u8, fresh: bool) {
        if fresh {
            self.mem_fresh[r as usize] |= 1 << c;
        } else {
            self.mem_fresh[r as usize] &= !(1 << c);
        }
    }

    /// Whether `line` is resident.
    pub fn present(&self, line: &LineKey) -> bool {
        self.present[line.orient as usize] & (1 << line.idx) != 0
    }

    /// The resident line's dirty word mask (0 when absent).
    pub fn dirty_mask(&self, line: &LineKey) -> u8 {
        if self.present(line) { self.dirty[line.orient as usize][line.idx as usize] } else { 0 }
    }

    fn fresh_mask(&self, line: &LineKey) -> u8 {
        self.fresh[line.orient as usize][line.idx as usize]
    }

    /// Writes the line's `mask` words to memory (value propagation), minus
    /// any word the seeded mutation drops, and appends the transfer to
    /// `out`.
    fn emit_writeback(&mut self, line: LineKey, mask: u8, out: &mut Vec<Writeback>) {
        let mut sent = mask;
        if let Mutation::DropWritebackWord { offset } = self.mutation {
            sent &= !(1 << offset);
        }
        for off in 0..self.dim {
            if sent & (1 << off) == 0 {
                continue;
            }
            let (r, c) = Self::coords(&line, off);
            let copy_fresh = self.fresh_mask(&line) & (1 << off) != 0;
            self.set_mem_fresh(r, c, copy_fresh);
        }
        if sent != 0 {
            out.push(Writeback { line, dirty: sent });
        }
    }

    /// Removes `line`, writing back its dirty words first (Fig. 9:
    /// Modified → Invalid emits a writeback).
    pub fn evict_line(&mut self, line: LineKey, out: &mut Vec<Writeback>) {
        if !self.present(&line) {
            return;
        }
        let mask = self.dirty[line.orient as usize][line.idx as usize];
        if mask != 0 {
            self.emit_writeback(line, mask, out);
        }
        self.present[line.orient as usize] &= !(1 << line.idx);
        self.dirty[line.orient as usize][line.idx as usize] = 0;
        self.fresh[line.orient as usize][line.idx as usize] = 0;
    }

    /// Cleans `line` in place (Fig. 9: Modified → Clean on
    /// read-to-duplicate), writing back its dirty words.
    fn clean_line(&mut self, line: LineKey, out: &mut Vec<Writeback>) {
        if !self.present(&line) {
            return;
        }
        let mask = self.dirty[line.orient as usize][line.idx as usize];
        if mask != 0 {
            self.emit_writeback(line, mask, out);
            self.dirty[line.orient as usize][line.idx as usize] = 0;
        }
    }

    /// Resolves duplication before `line` holds `dirty_mask` pre-modified
    /// words: intersecting other-orientation copies of the dirty words are
    /// evicted (write-to-duplicate), and dirty intersecting copies of clean
    /// words are cleaned (read-to-duplicate) — mirroring
    /// `Cache1P2L::resolve_intersections`.
    fn resolve_intersections(&mut self, line: &LineKey, dirty_mask: u8, out: &mut Vec<Writeback>) {
        for off in 0..self.dim {
            let word = line.word_at(off);
            let other = line.intersecting_at(word);
            if !self.present(&other) {
                continue;
            }
            if dirty_mask & (1 << off) != 0 {
                self.evict_line(other, out);
            } else {
                let other_off = match other.offset_of(word) {
                    Some(o) => o,
                    None => continue,
                };
                if self.dirty_mask(&other) & (1 << other_off) != 0 {
                    self.clean_line(other, out);
                }
            }
        }
    }

    /// Marks the `mask` words of `line` as newly written: the copy becomes
    /// fresh and dirty, every other holder of the word (memory and the
    /// other-orientation copy, if one survives) becomes stale.
    fn write_words(&mut self, line: &LineKey, mask: u8) {
        for off in 0..self.dim {
            if mask & (1 << off) == 0 {
                continue;
            }
            let (r, c) = Self::coords(line, off);
            self.fresh[line.orient as usize][line.idx as usize] |= 1 << off;
            self.set_mem_fresh(r, c, false);
            let word = line.word_at(off);
            let other = line.intersecting_at(word);
            if self.present(&other) {
                if let Some(other_off) = other.offset_of(word) {
                    self.fresh[other.orient as usize][other.idx as usize] &= !(1 << other_off);
                }
            }
        }
        self.dirty[line.orient as usize][line.idx as usize] |= mask;
    }

    /// Applies a write to the resident `line`: other copies of the written
    /// words are evicted first (their old value written back if dirty),
    /// then the words are modified — mirroring `Cache1P2L::write_resident`.
    fn write_resident(&mut self, line: LineKey, mask: u8, out: &mut Vec<Writeback>) {
        if self.mutation != Mutation::SkipDuplicateEviction {
            for off in 0..self.dim {
                if mask & (1 << off) == 0 {
                    continue;
                }
                let other = line.intersecting_at(line.word_at(off));
                if self.present(&other) {
                    self.evict_line(other, out);
                }
            }
        }
        self.write_words(&line, mask);
    }

    /// Scalar read of `word` with preference `orient`. Returns whether it
    /// hits and, on a hit, whether the copy that serves it is fresh (the
    /// caller turns a stale service into a [`Violation::StaleCopy`]).
    pub fn scalar_read(&self, word: WordAddr, orient: Orientation) -> (bool, bool) {
        let preferred = LineKey::containing(word, orient);
        let serving = if self.present(&preferred) {
            Some(preferred)
        } else {
            let other = LineKey::containing(word, orient.other());
            if self.present(&other) { Some(other) } else { None }
        };
        match serving {
            None => (false, true),
            Some(line) => {
                let off = line.offset_of(word).unwrap_or(0);
                (true, self.fresh_mask(&line) & (1 << off) != 0)
            }
        }
    }

    /// Scalar write of `word` with preference `orient`. Returns whether it
    /// hits (a miss is write-allocated by the caller via [`Self::fill`]).
    pub fn scalar_write(
        &mut self,
        word: WordAddr,
        orient: Orientation,
        out: &mut Vec<Writeback>,
    ) -> bool {
        let preferred = LineKey::containing(word, orient);
        if self.present(&preferred) {
            let off = preferred.offset_of(word).unwrap_or(0);
            self.write_resident(preferred, 1 << off, out);
            return true;
        }
        let other = LineKey::containing(word, orient.other());
        if self.present(&other) {
            let off = other.offset_of(word).unwrap_or(0);
            self.write_resident(other, 1 << off, out);
            return true;
        }
        false
    }

    /// Vector read of `line`: hits only on the exactly aligned line.
    pub fn vector_read(&self, line: &LineKey) -> bool {
        self.present(line)
    }

    /// Vector write of `line`. Returns whether it hits.
    pub fn vector_write(&mut self, line: LineKey, out: &mut Vec<Writeback>) -> bool {
        if self.present(&line) {
            self.write_resident(line, self.full_mask(), out);
            return true;
        }
        false
    }

    /// Installs `line` with `dirty` words pre-modified (demand fill or
    /// write-allocate), resolving duplication first — mirroring
    /// `Cache1P2L::fill`. Clean words take their value from memory.
    pub fn fill(&mut self, line: LineKey, dirty: u8, out: &mut Vec<Writeback>) {
        if self.present(&line) {
            // Already resident (coalesced fill): merge.
            self.resolve_intersections(&line, dirty, out);
            if dirty != 0 {
                self.write_words(&line, dirty);
            }
            return;
        }
        self.resolve_intersections(&line, dirty, out);
        self.present[line.orient as usize] |= 1 << line.idx;
        self.dirty[line.orient as usize][line.idx as usize] = 0;
        let mut fresh = 0u8;
        for off in 0..self.dim {
            if dirty & (1 << off) != 0 {
                continue;
            }
            let (r, c) = Self::coords(&line, off);
            if self.mem_is_fresh(r, c) {
                fresh |= 1 << off;
            }
        }
        self.fresh[line.orient as usize][line.idx as usize] = fresh;
        if dirty != 0 {
            self.write_words(&line, dirty);
        }
    }

    /// Absorbs a writeback from an upper level: the carried words are newer
    /// than anything held here. Returns `false` when the line is absent and
    /// the caller must [`Self::fill`] it instead (write-allocate).
    pub fn absorb_writeback(&mut self, wb: &Writeback, out: &mut Vec<Writeback>) -> bool {
        if !self.present(&wb.line) {
            return false;
        }
        self.write_resident(wb.line, wb.dirty, out);
        true
    }

    /// Evicts every line, writing dirty data back (replacement and
    /// end-of-phase flush both reduce to this).
    pub fn flush(&mut self, out: &mut Vec<Writeback>) {
        for line in self.all_lines().collect::<Vec<_>>() {
            self.evict_line(line, out);
        }
    }

    /// Checks the per-state invariants: every resident copy fresh (no read
    /// can return stale data), at most one dirty copy per word, dirty words
    /// sole-copy, and flush convergence (a flush from this state leaves
    /// memory agreeing with program order everywhere).
    pub fn check_invariants(&self) -> Result<(), Violation> {
        for r in 0..self.dim {
            for c in 0..self.dim {
                let word = WordAddr::from_tile_coords(MODEL_TILE, r, c);
                let mut dirty_copies = 0u8;
                let mut copies = 0u8;
                for orient in Orientation::BOTH {
                    let line = LineKey::containing(word, orient);
                    if !self.present(&line) {
                        continue;
                    }
                    copies += 1;
                    let off = match line.offset_of(word) {
                        Some(o) => o,
                        None => continue,
                    };
                    if self.fresh_mask(&line) & (1 << off) == 0 {
                        return Err(Violation::StaleCopy { word, orient });
                    }
                    if self.dirty_mask(&line) & (1 << off) != 0 {
                        dirty_copies += 1;
                    }
                }
                if dirty_copies > 1 {
                    return Err(Violation::DoubleDirty { word });
                }
                if dirty_copies == 1 && copies > 1 {
                    return Err(Violation::DirtyNotSole { word });
                }
            }
        }
        // Flush convergence: drain a scratch copy and require memory fresh.
        let mut drained = self.clone();
        let mut sink = Vec::new();
        drained.flush(&mut sink);
        for r in 0..self.dim {
            for c in 0..self.dim {
                if !drained.mem_is_fresh(r, c) {
                    return Err(Violation::FlushDiverged {
                        word: WordAddr::from_tile_coords(MODEL_TILE, r, c),
                    });
                }
            }
        }
        Ok(())
    }

    /// A compact canonical encoding of the state for the explorer's visited
    /// set. Absent lines contribute zero bits, so equivalent states encode
    /// identically.
    pub fn encode(&self) -> u128 {
        let mut code: u128 = 0;
        let mut push = |bits: u8, width: u32| {
            code = (code << width) | u128::from(bits);
        };
        let dim = u32::from(self.dim);
        push(self.present[0], 8);
        push(self.present[1], 8);
        for o in 0..2 {
            for i in 0..self.dim as usize {
                let present = self.present[o] & (1 << i) != 0;
                push(if present { self.dirty[o][i] } else { 0 }, dim);
                push(if present { self.fresh[o][i] } else { 0 }, dim);
            }
        }
        for r in 0..self.dim as usize {
            push(self.mem_fresh[r], dim);
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(o: Orientation, idx: u8) -> LineKey {
        LineKey::new(MODEL_TILE, o, idx)
    }

    #[test]
    fn clean_duplication_keeps_everything_fresh() {
        let mut m = Model1P2L::new(2, Mutation::None);
        let mut out = Vec::new();
        m.fill(line(Orientation::Row, 0), 0, &mut out);
        m.fill(line(Orientation::Col, 1), 0, &mut out);
        assert!(out.is_empty());
        assert!(m.check_invariants().is_ok());
        let (hit, fresh) = m.scalar_read(WordAddr::from_tile_coords(0, 0, 1), Orientation::Col);
        assert!(hit && fresh);
    }

    #[test]
    fn write_evicts_duplicate_and_flush_converges() {
        let mut m = Model1P2L::new(2, Mutation::None);
        let mut out = Vec::new();
        m.fill(line(Orientation::Row, 0), 0, &mut out);
        m.fill(line(Orientation::Col, 1), 0, &mut out);
        let w = WordAddr::from_tile_coords(0, 0, 1);
        assert!(m.scalar_write(w, Orientation::Row, &mut out));
        assert!(!m.present(&line(Orientation::Col, 1)), "duplicate evicted");
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn dropped_writeback_word_breaks_flush_convergence() {
        let mut m = Model1P2L::new(2, Mutation::DropWritebackWord { offset: 0 });
        let mut out = Vec::new();
        m.fill(line(Orientation::Row, 0), 0, &mut out);
        let w = WordAddr::from_tile_coords(0, 0, 0);
        assert!(m.scalar_write(w, Orientation::Row, &mut out));
        assert!(matches!(m.check_invariants(), Err(Violation::FlushDiverged { .. })));
    }

    #[test]
    fn skipped_duplicate_eviction_leaves_a_stale_copy() {
        let mut m = Model1P2L::new(2, Mutation::SkipDuplicateEviction);
        let mut out = Vec::new();
        m.fill(line(Orientation::Row, 0), 0, &mut out);
        m.fill(line(Orientation::Col, 0), 0, &mut out);
        let w = WordAddr::from_tile_coords(0, 0, 0);
        assert!(m.scalar_write(w, Orientation::Row, &mut out));
        assert!(matches!(m.check_invariants(), Err(Violation::StaleCopy { .. })));
    }

    #[test]
    fn dirty_fill_write_allocate_stays_coherent() {
        let mut m = Model1P2L::new(2, Mutation::None);
        let mut out = Vec::new();
        m.fill(line(Orientation::Col, 0), 0, &mut out);
        m.scalar_write(WordAddr::from_tile_coords(0, 0, 0), Orientation::Col, &mut out);
        // Write-allocate the intersecting row with its word 0 pre-dirty:
        // the dirty column copy must be written back and evicted.
        m.fill(line(Orientation::Row, 0), 0b01, &mut out);
        assert_eq!(out.len(), 1);
        assert!(!m.present(&line(Orientation::Col, 0)));
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn encode_distinguishes_dirty_from_clean() {
        let mut a = Model1P2L::new(2, Mutation::None);
        let mut b = a.clone();
        let mut out = Vec::new();
        a.fill(line(Orientation::Row, 0), 0, &mut out);
        b.fill(line(Orientation::Row, 0), 0b01, &mut out);
        assert_ne!(a.encode(), b.encode());
    }
}
