//! The operation vocabulary shared by the BFS explorer and the
//! differential replayer.
//!
//! An [`Op`] is one externally visible event at a cache level: a
//! processor-side access (with its demand fill on a miss), an incoming
//! writeback from an upper level, a replacement decision, or a flush. Both
//! abstract models apply ops atomically; the differential driver decomposes
//! the same ops into the real `CacheLevel` probe/fill/absorb calls.

use crate::model::{Model1P2L, MODEL_TILE};
use crate::model2p2l::Model2P2L;
use mda_cache::Writeback;
use mda_mem::{LineKey, Orientation, WordAddr};

/// One transition of the checked system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Scalar read of a word with an orientation preference.
    ScalarRead {
        /// The accessed word.
        word: WordAddr,
        /// Compiler preference.
        orient: Orientation,
    },
    /// Scalar write of a word with an orientation preference.
    ScalarWrite {
        /// The accessed word.
        word: WordAddr,
        /// Compiler preference.
        orient: Orientation,
    },
    /// Vector read of a full line.
    VectorRead {
        /// The accessed line.
        line: LineKey,
    },
    /// Vector write of a full line.
    VectorWrite {
        /// The accessed line.
        line: LineKey,
    },
    /// A writeback with `dirty` words arriving from an upper level
    /// (absorbed in place, or write-allocated when the line is absent).
    Absorb {
        /// The written-back line.
        line: LineKey,
        /// Dirty word mask carried by the writeback.
        dirty: u8,
    },
    /// Replacement evicts one line (1P2L; the explorer's nondeterministic
    /// stand-in for any index mapping's victim choice).
    EvictLine {
        /// The victim.
        line: LineKey,
    },
    /// Replacement evicts the whole block (2P2L).
    EvictBlock,
    /// End-of-phase flush of the level.
    Flush,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::ScalarRead { word, orient } => write!(f, "R {word} pref {orient}"),
            Op::ScalarWrite { word, orient } => write!(f, "W {word} pref {orient}"),
            Op::VectorRead { line } => write!(f, "VR {line}"),
            Op::VectorWrite { line } => write!(f, "VW {line}"),
            Op::Absorb { line, dirty } => write!(f, "WB<- {line} mask {dirty:#04x}"),
            Op::EvictLine { line } => write!(f, "EVICT {line}"),
            Op::EvictBlock => write!(f, "EVICT block"),
            Op::Flush => write!(f, "FLUSH"),
        }
    }
}

/// Result of applying an [`Op`] to a model.
#[derive(Debug, Clone, Default)]
pub struct ModelStep {
    /// Whether the access hit (meaningless for evictions/flushes).
    pub hit: bool,
    /// Whether a read was served by a stale copy.
    pub stale_read: bool,
    /// Writebacks emitted toward memory.
    pub writebacks: Vec<Writeback>,
}

/// The scalar words and lines of the `dim × dim` model tile.
fn words(dim: u8) -> impl Iterator<Item = WordAddr> {
    (0..dim).flat_map(move |r| (0..dim).map(move |c| WordAddr::from_tile_coords(MODEL_TILE, r, c)))
}

fn lines(dim: u8) -> impl Iterator<Item = LineKey> {
    Orientation::BOTH
        .into_iter()
        .flat_map(move |o| (0..dim).map(move |i| LineKey::new(MODEL_TILE, o, i)))
}

/// The explorer's transition alphabet for the 1P2L model: every scalar and
/// vector access in both orientations plus a nondeterministic per-line
/// eviction. Upper-level writebacks are omitted — on this model they are
/// behaviorally subsumed by write hits (absorb = `write_resident`) and
/// write-allocating fills, which the access ops already exercise.
pub fn alphabet_1p2l(dim: u8) -> Vec<Op> {
    let mut ops = Vec::new();
    for word in words(dim) {
        for orient in Orientation::BOTH {
            ops.push(Op::ScalarRead { word, orient });
            ops.push(Op::ScalarWrite { word, orient });
        }
    }
    for line in lines(dim) {
        ops.push(Op::VectorRead { line });
        ops.push(Op::VectorWrite { line });
        ops.push(Op::EvictLine { line });
    }
    ops
}

/// The explorer's transition alphabet for the 2P2L model.
pub fn alphabet_2p2l(dim: u8) -> Vec<Op> {
    let mut ops = Vec::new();
    for word in words(dim) {
        for orient in Orientation::BOTH {
            ops.push(Op::ScalarRead { word, orient });
            ops.push(Op::ScalarWrite { word, orient });
        }
    }
    for line in lines(dim) {
        ops.push(Op::VectorRead { line });
        ops.push(Op::VectorWrite { line });
    }
    ops.push(Op::EvictBlock);
    ops
}

/// Applies `op` to the 1P2L model, demand-filling on misses exactly as the
/// `mda-sim` hierarchy driver would (write-allocate pre-dirties the written
/// words).
pub fn apply_1p2l(m: &mut Model1P2L, op: &Op) -> ModelStep {
    let mut step = ModelStep::default();
    match *op {
        Op::ScalarRead { word, orient } => {
            let (hit, fresh) = m.scalar_read(word, orient);
            step.hit = hit;
            step.stale_read = hit && !fresh;
            if !hit {
                m.fill(LineKey::containing(word, orient), 0, &mut step.writebacks);
            }
        }
        Op::ScalarWrite { word, orient } => {
            step.hit = m.scalar_write(word, orient, &mut step.writebacks);
            if !step.hit {
                let line = LineKey::containing(word, orient);
                let off = line.offset_of(word).unwrap_or(0);
                m.fill(line, 1 << off, &mut step.writebacks);
            }
        }
        Op::VectorRead { line } => {
            step.hit = m.vector_read(&line);
            if !step.hit {
                m.fill(line, 0, &mut step.writebacks);
            }
        }
        Op::VectorWrite { line } => {
            step.hit = m.vector_write(line, &mut step.writebacks);
            if !step.hit {
                m.fill(line, m.full_mask(), &mut step.writebacks);
            }
        }
        Op::Absorb { line, dirty } => {
            let wb = Writeback { line, dirty };
            step.hit = m.absorb_writeback(&wb, &mut step.writebacks);
            if !step.hit {
                m.fill(line, dirty, &mut step.writebacks);
            }
        }
        Op::EvictLine { line } => m.evict_line(line, &mut step.writebacks),
        Op::EvictBlock => {}
        Op::Flush => m.flush(&mut step.writebacks),
    }
    step
}

/// Applies `op` to the 2P2L model; dense mode fills the companion lines of
/// the demand orientation like the real dense-fill ablation.
pub fn apply_2p2l(m: &mut Model2P2L, op: &Op) -> ModelStep {
    let mut step = ModelStep::default();
    let fill_miss = |m: &mut Model2P2L, line: LineKey, dirty: u8, step: &mut ModelStep| {
        let companions: Vec<LineKey> = if m.is_sparse() {
            Vec::new()
        } else {
            (0..m.dim())
                .filter(|&i| i != line.idx && !m.present(&LineKey::new(MODEL_TILE, line.orient, i)))
                .map(|i| LineKey::new(MODEL_TILE, line.orient, i))
                .collect()
        };
        // Demand line first (critical-line-first), then companions.
        m.fill(line, dirty, &mut step.writebacks);
        for c in companions {
            m.fill(c, 0, &mut step.writebacks);
        }
    };
    match *op {
        Op::ScalarRead { word, orient } => {
            let (hit, fresh) = m.scalar_read(word, orient);
            step.hit = hit;
            step.stale_read = hit && !fresh;
            if !hit {
                fill_miss(m, LineKey::containing(word, orient), 0, &mut step);
            }
        }
        Op::ScalarWrite { word, orient } => {
            step.hit = m.scalar_write(word, orient);
            if !step.hit {
                let line = LineKey::containing(word, orient);
                let off = line.offset_of(word).unwrap_or(0);
                fill_miss(m, line, 1 << off, &mut step);
            }
        }
        Op::VectorRead { line } => {
            let (hit, fresh) = m.vector_read(&line);
            step.hit = hit;
            step.stale_read = hit && !fresh;
            if !hit {
                fill_miss(m, line, 0, &mut step);
            }
        }
        Op::VectorWrite { line } => {
            step.hit = m.vector_write(&line);
            if !step.hit {
                let full = m.full_mask();
                fill_miss(m, line, full, &mut step);
            }
        }
        Op::Absorb { line, dirty } => {
            let wb = Writeback { line, dirty };
            step.hit = m.absorb_writeback(&wb);
            if !step.hit {
                m.fill(line, dirty, &mut step.writebacks);
            }
        }
        Op::EvictLine { .. } => {}
        Op::EvictBlock => m.evict_block(&mut step.writebacks),
        Op::Flush => m.flush(&mut step.writebacks),
    }
    step
}
