//! Exhaustive breadth-first exploration of the abstract coherence models.
//!
//! From the empty-cache initial state the explorer applies every op in the
//! model's transition alphabet to every reachable state, deduplicating on
//! the model's canonical [`encode`](crate::model::Model1P2L::encode)ing and
//! checking the invariants on each state as it is discovered. Because the
//! 1P2L model has no replacement policy and eviction is an explicit
//! nondeterministic transition, the explored behaviors subsume every index
//! mapping (Different-Set, Same-Set) and every replacement order.
//!
//! On a violation the explorer reconstructs the shortest op sequence from
//! reset via a predecessor map, so a failure reads as a concrete
//! counterexample trace rather than a bare state dump.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::model::{Model1P2L, Mutation, Violation};
use crate::model2p2l::Model2P2L;
use crate::ops::{alphabet_1p2l, alphabet_2p2l, apply_1p2l, apply_2p2l, Op};

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Stop after visiting this many distinct states (0 = unbounded).
    pub max_states: usize,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig { max_states: 2_000_000 }
    }
}

/// A found violation with its shortest counterexample trace from reset.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The violated invariant.
    pub violation: Violation,
    /// Ops from the initial (empty, memory-fresh) state to the bad state.
    pub trace: Vec<Op>,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {}", self.violation)?;
        writeln!(f, "counterexample ({} ops from reset):", self.trace.len())?;
        for (i, op) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>2}. {op}", i + 1)?;
        }
        Ok(())
    }
}

/// Result of an exploration run.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions applied.
    pub transitions: usize,
    /// First invariant violation found, if any.
    pub counterexample: Option<Counterexample>,
    /// Whether the state cap ended the run before the frontier emptied.
    pub truncated: bool,
}

impl ExploreReport {
    /// Whether the run finished the whole space without a violation.
    pub fn is_clean_and_exhaustive(&self) -> bool {
        self.counterexample.is_none() && !self.truncated
    }
}

/// Generic BFS shared by both models.
fn bfs<S: Clone>(
    init: S,
    alphabet: &[Op],
    encode: impl Fn(&S) -> u128,
    check: impl Fn(&S) -> Result<(), Violation>,
    apply: impl Fn(&mut S, &Op),
    cfg: &ExploreConfig,
) -> ExploreReport {
    let mut visited: HashSet<u128> = HashSet::new();
    let mut parent: HashMap<u128, (u128, Op)> = HashMap::new();
    let mut queue: VecDeque<S> = VecDeque::new();
    let mut transitions = 0usize;
    let mut truncated = false;

    let init_code = encode(&init);
    visited.insert(init_code);
    if let Err(violation) = check(&init) {
        return ExploreReport {
            states: 1,
            transitions: 0,
            counterexample: Some(Counterexample { violation, trace: Vec::new() }),
            truncated: false,
        };
    }
    queue.push_back(init);

    let rebuild_trace = |parent: &HashMap<u128, (u128, Op)>, mut code: u128| -> Vec<Op> {
        let mut trace = Vec::new();
        while let Some((prev, op)) = parent.get(&code) {
            trace.push(*op);
            code = *prev;
        }
        trace.reverse();
        trace
    };

    while let Some(state) = queue.pop_front() {
        let code = encode(&state);
        for op in alphabet {
            let mut next = state.clone();
            apply(&mut next, op);
            transitions += 1;
            let next_code = encode(&next);
            if !visited.insert(next_code) {
                continue;
            }
            parent.insert(next_code, (code, *op));
            if let Err(violation) = check(&next) {
                return ExploreReport {
                    states: visited.len(),
                    transitions,
                    counterexample: Some(Counterexample {
                        violation,
                        trace: rebuild_trace(&parent, next_code),
                    }),
                    truncated: false,
                };
            }
            if cfg.max_states != 0 && visited.len() >= cfg.max_states {
                truncated = true;
                break;
            }
            queue.push_back(next);
        }
        if truncated {
            break;
        }
    }

    ExploreReport { states: visited.len(), transitions, counterexample: None, truncated }
}

/// Exhaustively explores the 1P2L duplicate-word model over a `dim × dim`
/// tile.
pub fn explore_1p2l(dim: u8, mutation: Mutation, cfg: &ExploreConfig) -> ExploreReport {
    let alphabet = alphabet_1p2l(dim);
    bfs(
        Model1P2L::new(dim, mutation),
        &alphabet,
        Model1P2L::encode,
        Model1P2L::check_invariants,
        |m, op| {
            apply_1p2l(m, op);
        },
        cfg,
    )
}

/// Exhaustively explores the 2P2L model (sparse or dense fill) over a
/// `dim × dim` tile.
pub fn explore_2p2l(dim: u8, sparse: bool, mutation: Mutation, cfg: &ExploreConfig) -> ExploreReport {
    let alphabet = alphabet_2p2l(dim);
    bfs(
        Model2P2L::new(dim, sparse, mutation),
        &alphabet,
        Model2P2L::encode,
        Model2P2L::check_invariants,
        |m, op| {
            apply_2p2l(m, op);
        },
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_1p2l_2x2_is_clean() {
        let report = explore_1p2l(2, Mutation::None, &ExploreConfig::default());
        assert!(report.is_clean_and_exhaustive(), "{:?}", report.counterexample);
        assert!(report.states > 10, "space should be nontrivial, got {}", report.states);
    }

    #[test]
    fn faithful_2p2l_2x2_is_clean_both_fills() {
        for sparse in [true, false] {
            let report = explore_2p2l(2, sparse, Mutation::None, &ExploreConfig::default());
            assert!(report.is_clean_and_exhaustive(), "{:?}", report.counterexample);
        }
    }

    #[test]
    fn mutated_1p2l_yields_counterexample_with_trace() {
        let report =
            explore_1p2l(2, Mutation::SkipDuplicateEviction, &ExploreConfig::default());
        let cex = report.counterexample.expect("seeded bug must be found");
        assert!(matches!(cex.violation, Violation::StaleCopy { .. }));
        assert!(!cex.trace.is_empty(), "counterexample must have a trace");
    }

    #[test]
    fn mutated_writeback_yields_flush_divergence() {
        let report = explore_1p2l(
            2,
            Mutation::DropWritebackWord { offset: 0 },
            &ExploreConfig::default(),
        );
        let cex = report.counterexample.expect("seeded bug must be found");
        assert!(matches!(cex.violation, Violation::FlushDiverged { .. }));

        let report = explore_2p2l(
            2,
            true,
            Mutation::DropWritebackWord { offset: 0 },
            &ExploreConfig::default(),
        );
        let cex = report.counterexample.expect("seeded bug must be found");
        assert!(matches!(cex.violation, Violation::FlushDiverged { .. }));
    }

    #[test]
    fn state_cap_truncates() {
        let report = explore_1p2l(3, Mutation::None, &ExploreConfig { max_states: 50 });
        assert!(report.truncated);
        assert!(report.states >= 50);
    }
}
