//! A lightweight hand-rolled Rust source scanner for `mda-lint`.
//!
//! The lint rules are token-pattern rules; what they need from a lexer is
//! not a full grammar but a *scrubbed* view of the source where comment and
//! string/char-literal contents can never produce false matches, plus the
//! comment texts themselves (lint directives live in comments) and a map of
//! which lines belong to `#[cfg(test)]` items. This module produces exactly
//! that: comments and literal bodies are blanked to spaces character for
//! character, so every surviving byte sits at its original line and column.
//!
//! Handled literal forms: line and (nested) block comments, string and byte
//! string literals with escapes, raw (byte) strings with arbitrary `#`
//! fences, and char literals — including the `'a'`-vs-`'a` lifetime
//! ambiguity, resolved with the standard two-character lookahead.

/// A comment's text and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based source line.
    pub line: usize,
    /// Comment body, delimiters stripped.
    pub text: String,
}

/// The scrubbed view of one source file.
#[derive(Debug, Clone)]
pub struct Scrubbed {
    /// Source lines with comments and literal bodies blanked to spaces.
    pub lines: Vec<String>,
    /// Every comment with its starting line.
    pub comments: Vec<Comment>,
    /// Per line (0-based index), whether it is inside a `#[cfg(test)]`
    /// item (attribute line included).
    pub in_test: Vec<bool>,
}

impl Scrubbed {
    /// Whether the 1-based `line` lies inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && self.in_test.get(line - 1).copied().unwrap_or(false)
    }
}

/// Scrubs `src`: blanks comments and literal bodies, collects comment
/// texts, and marks `#[cfg(test)]` regions.
pub fn scrub(src: &str) -> Scrubbed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut comments = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();

    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };

    while i < n {
        let c = bytes[i];
        // Line comment.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let line = out.matches('\n').count() + 1;
            let start = i + 2;
            let mut j = start;
            while j < n && bytes[j] != '\n' {
                j += 1;
            }
            comments.push(Comment { line, text: bytes[start..j].iter().collect() });
            for &b in &bytes[i..j] {
                out.push(blank(b));
            }
            i = j;
            continue;
        }
        // Block comment (nests).
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let line = out.matches('\n').count() + 1;
            let start = i + 2;
            let mut depth = 1usize;
            let mut j = start;
            while j < n && depth > 0 {
                if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            comments.push(Comment { line, text: bytes[start..end].iter().collect() });
            for &b in &bytes[i..j] {
                out.push(blank(b));
            }
            i = j;
            continue;
        }
        // Raw (byte) string: r"...", r#"..."#, br#"..."# etc.
        if c == 'r' || (c == 'b' && i + 1 < n && bytes[i + 1] == 'r') {
            let after_r = if c == 'r' { i + 1 } else { i + 2 };
            let mut hashes = 0usize;
            let mut j = after_r;
            while j < n && bytes[j] == '#' {
                hashes += 1;
                j += 1;
            }
            let is_raw = j < n && bytes[j] == '"'
                // `r` must not be the tail of an identifier (e.g. `var"`
                // cannot happen, but `r` in `for"` could only follow a
                // non-ident char anyway; guard on the previous char).
                && (i == 0 || !is_ident_char(bytes[i - 1]));
            if is_raw {
                // Copy the prefix and opening quote, blank the body.
                for &b in &bytes[i..=j] {
                    out.push(b);
                }
                let mut k = j + 1;
                'raw: while k < n {
                    if bytes[k] == '"' {
                        let mut h = 0usize;
                        while h < hashes && k + 1 + h < n && bytes[k + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            for q in 0..=hashes {
                                out.push(bytes[k + q]);
                            }
                            k += hashes + 1;
                            break 'raw;
                        }
                    }
                    out.push(blank(bytes[k]));
                    k += 1;
                }
                i = k;
                continue;
            }
        }
        // String / byte string with escapes.
        if c == '"' || (c == 'b' && i + 1 < n && bytes[i + 1] == '"') {
            let open = if c == '"' { i } else { i + 1 };
            for &b in &bytes[i..=open] {
                out.push(b);
            }
            let mut j = open + 1;
            while j < n {
                if bytes[j] == '\\' && j + 1 < n {
                    out.push(blank(bytes[j]));
                    out.push(blank(bytes[j + 1]));
                    j += 2;
                    continue;
                }
                if bytes[j] == '"' {
                    out.push('"');
                    j += 1;
                    break;
                }
                out.push(blank(bytes[j]));
                j += 1;
            }
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' && (i == 0 || !is_ident_char(bytes[i - 1])) {
            let is_char = if i + 1 < n && bytes[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && bytes[i + 2] == '\'' && bytes[i + 1] != '\''
            };
            if is_char {
                out.push('\'');
                let mut j = i + 1;
                while j < n {
                    if bytes[j] == '\\' && j + 1 < n {
                        out.push(' ');
                        out.push(' ');
                        j += 2;
                        continue;
                    }
                    if bytes[j] == '\'' {
                        out.push('\'');
                        j += 1;
                        break;
                    }
                    out.push(' ');
                    j += 1;
                }
                i = j;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }

    let lines: Vec<String> = out.split('\n').map(str::to_string).collect();
    let in_test = mark_test_regions(&lines);
    Scrubbed { lines, comments, in_test }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks the lines covered by `#[cfg(test)]` items (the attribute itself,
/// any stacked attributes, and the item's braced body). Works byte-wise:
/// every structural character it cares about is ASCII.
fn mark_test_regions(lines: &[String]) -> Vec<bool> {
    let text = lines.join("\n");
    let bytes = text.as_bytes();
    let mut in_test = vec![false; lines.len()];

    let skip_attr = |bytes: &[u8], mut i: usize| -> usize {
        let mut depth = 0i32;
        while i < bytes.len() {
            match bytes[i] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i
    };

    let mut search_from = 0usize;
    while let Some(found) = find_cfg_test(&text[search_from..]) {
        let attr_start = search_from + found;
        // Walk past the attribute's closing bracket, then any stacked
        // attributes and whitespace, to reach the item itself.
        let mut j = skip_attr(bytes, attr_start);
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'#' {
                j = skip_attr(bytes, j);
                continue;
            }
            break;
        }
        // The item's extent: its brace-matched body, or a terminating `;`
        // for bodiless items (`#[cfg(test)] use ...;`).
        let mut end = j;
        let mut brace = 0i32;
        let mut entered = false;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => {
                    brace += 1;
                    entered = true;
                }
                b'}' => {
                    brace -= 1;
                    if entered && brace == 0 {
                        break;
                    }
                }
                b';' if !entered => break,
                _ => {}
            }
            end += 1;
        }
        let count_nl = |upto: usize| bytes[..upto.min(bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        let start_line = count_nl(attr_start);
        let end_line = count_nl(end);
        for flag in in_test.iter_mut().take(end_line + 1).skip(start_line) {
            *flag = true;
        }
        search_from = attr_start + 1;
        if search_from >= text.len() {
            break;
        }
    }
    in_test
}

/// Finds the next `#[cfg(test)]`-style attribute (also matches
/// `#[cfg(all(test, ...))]` and friends), returning its byte offset.
fn find_cfg_test(text: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(pos) = text[from..].find("#[cfg(") {
        let at = from + pos;
        let rest = &text[at..];
        let close = rest.find(']').unwrap_or(rest.len());
        let attr = &rest[..close];
        // `test` as a standalone token inside the cfg predicate.
        let mut idx = 0usize;
        let found = loop {
            match attr[idx..].find("test") {
                None => break false,
                Some(p) => {
                    let s = idx + p;
                    let before_ok = s == 0
                        || !attr[..s].ends_with(|ch: char| ch.is_alphanumeric() || ch == '_');
                    let after = &attr[s + 4..];
                    let after_ok =
                        !after.starts_with(|ch: char| ch.is_alphanumeric() || ch == '_');
                    if before_ok && after_ok {
                        break true;
                    }
                    idx = s + 4;
                }
            }
        };
        if found {
            return Some(at);
        }
        from = at + 6;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let a = \"Vec::new()\"; // Vec::new in a comment\nlet b = 1;";
        let s = scrub(src);
        assert!(!s.lines[0].contains("Vec::new"));
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains("Vec::new in a comment"));
        assert_eq!(s.lines[1], "let b = 1;");
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let s = r#\"panic!(\"x\")\"#; let c = '\\u{1F600}'; let l: &'static str = s;";
        let s = scrub(src);
        assert!(!s.lines[0].contains("panic!"));
        assert!(s.lines[0].contains("'static"), "lifetime survives: {}", s.lines[0]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        let s = scrub(src);
        assert!(s.lines[0].contains("let x = 1;"));
        assert!(!s.lines[0].contains("outer"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn after() {}";
        let s = scrub(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn cfg_test_attribute_on_single_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}";
        let s = scrub(src);
        assert!(s.is_test_line(2));
        assert!(!s.is_test_line(3));
    }

    #[test]
    fn cfg_all_test_matches_but_not_testing_ident() {
        assert!(find_cfg_test("#[cfg(all(test, feature = \"x\"))]").is_some());
        assert!(find_cfg_test("#[cfg(feature = \"testing\")]").is_none());
    }
}
