//! Abstract model of the 2P2L (physically 2-D) cache over one block.
//!
//! A 2P2L block physically holds the whole tile, so a word has exactly one
//! cached copy and the duplicate-word policy degenerates: coherence reduces
//! to (a) fills must not clobber modified words with stale memory data and
//! (b) dirty lines (per-line dirty bits, paper Sec. IV-C) must reach memory
//! on eviction. The model tracks per-word value freshness the same way as
//! [`crate::model::Model1P2L`] and mirrors `Cache2P2L`'s metadata exactly:
//! per-line valid and dirty bits, line-granular writebacks, sparse or dense
//! fill.
//!
//! One modelling note surfaced by writing this down: the simulator's
//! metadata-only writeback-allocate path (`fill` of a partial-mask
//! writeback into an absent block) marks the whole line valid without
//! fetching its remaining words. The model adopts the charitable reading —
//! the unfetched words take memory's value — which is coherent at a single
//! level because an absent block implies no dirtier copy below the sender.

use crate::model::{Mutation, Violation, MAX_DIM, MODEL_TILE};
use mda_cache::Writeback;
use mda_mem::{LineKey, Orientation, WordAddr};

/// Abstract 2P2L block + memory state over one `dim × dim` tile.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Model2P2L {
    dim: u8,
    sparse: bool,
    mutation: Mutation,
    /// Whether the block frame is allocated at all.
    block: bool,
    /// Per-line valid bits, `[orient]`.
    valid: [u8; 2],
    /// Per-line dirty bits, `[orient]` (line granular, as in the real
    /// cache).
    dirty: [u8; 2],
    /// Per-word freshness of the single physical copy: `word_fresh[r]` bit
    /// `c`. Meaningful only for covered words.
    word_fresh: [u8; MAX_DIM],
    /// Memory freshness, same layout.
    mem_fresh: [u8; MAX_DIM],
}

impl Model2P2L {
    /// An empty cache over a `dim × dim` tile, memory fresh everywhere.
    pub fn new(dim: u8, sparse: bool, mutation: Mutation) -> Model2P2L {
        assert!(dim >= 1 && dim as usize <= MAX_DIM, "dim must be in 1..=8");
        let full = Self::full_mask_for(dim);
        Model2P2L {
            dim,
            sparse,
            mutation,
            block: false,
            valid: [0; 2],
            dirty: [0; 2],
            word_fresh: [0; MAX_DIM],
            mem_fresh: [full; MAX_DIM],
        }
    }

    fn full_mask_for(dim: u8) -> u8 {
        if dim as usize >= 8 { 0xFF } else { (1u8 << dim) - 1 }
    }

    /// The tile dimension.
    pub fn dim(&self) -> u8 {
        self.dim
    }

    /// The word mask covering a whole model line.
    pub fn full_mask(&self) -> u8 {
        Self::full_mask_for(self.dim)
    }

    /// Whether the sparse fill policy is active.
    pub fn is_sparse(&self) -> bool {
        self.sparse
    }

    fn line_valid(&self, orient: Orientation, idx: u8) -> bool {
        self.valid[orient as usize] & (1 << idx) != 0
    }

    /// Whether `line` is resident (valid within an allocated block).
    pub fn present(&self, line: &LineKey) -> bool {
        self.block && self.line_valid(line.orient, line.idx)
    }

    /// Whether the resident `line` carries its (line-granular) dirty bit.
    pub fn line_dirty(&self, line: &LineKey) -> bool {
        self.present(line) && self.dirty[line.orient as usize] & (1 << line.idx) != 0
    }

    fn covered(&self, r: u8, c: u8) -> bool {
        self.block && (self.valid[0] & (1 << r) != 0 || self.valid[1] & (1 << c) != 0)
    }

    fn word_is_fresh(&self, r: u8, c: u8) -> bool {
        self.word_fresh[r as usize] & (1 << c) != 0
    }

    fn set_word_fresh(&mut self, r: u8, c: u8, fresh: bool) {
        if fresh {
            self.word_fresh[r as usize] |= 1 << c;
        } else {
            self.word_fresh[r as usize] &= !(1 << c);
        }
    }

    fn mem_is_fresh(&self, r: u8, c: u8) -> bool {
        self.mem_fresh[r as usize] & (1 << c) != 0
    }

    fn set_mem_fresh(&mut self, r: u8, c: u8, fresh: bool) {
        if fresh {
            self.mem_fresh[r as usize] |= 1 << c;
        } else {
            self.mem_fresh[r as usize] &= !(1 << c);
        }
    }

    /// Writes one word: the block copy becomes fresh, memory stale, and the
    /// covering line chosen by `Cache2P2L::mark_dirty`'s precedence (the
    /// access orientation if its line is valid, else the covering row, else
    /// the covering column) gets its dirty bit.
    fn mark_dirty(&mut self, word: WordAddr, orient: Orientation) {
        let (r, c) = (word.row_in_tile(), word.col_in_tile());
        let along = match orient {
            Orientation::Row => r,
            Orientation::Col => c,
        };
        let via = if self.line_valid(orient, along) {
            orient
        } else if self.valid[0] & (1 << r) != 0 {
            Orientation::Row
        } else {
            Orientation::Col
        };
        match via {
            Orientation::Row => self.dirty[0] |= 1 << r,
            Orientation::Col => self.dirty[1] |= 1 << c,
        }
        self.set_word_fresh(r, c, true);
        self.set_mem_fresh(r, c, false);
    }

    /// Scalar read of `word` with preference `orient`. Returns
    /// `(hit, fresh)` like [`crate::model::Model1P2L::scalar_read`].
    pub fn scalar_read(&self, word: WordAddr, _orient: Orientation) -> (bool, bool) {
        let (r, c) = (word.row_in_tile(), word.col_in_tile());
        if !self.covered(r, c) {
            return (false, true);
        }
        (true, self.word_is_fresh(r, c))
    }

    /// Scalar write of `word`. Returns whether it hits (any covering line
    /// serves a scalar, aligned or not).
    pub fn scalar_write(&mut self, word: WordAddr, orient: Orientation) -> bool {
        let (r, c) = (word.row_in_tile(), word.col_in_tile());
        if !self.covered(r, c) {
            return false;
        }
        self.mark_dirty(word, orient);
        true
    }

    /// Vector read of `line`: hits on the aligned line, or as a partial hit
    /// when every intersecting line of the other orientation is valid.
    /// Returns `(hit, all_words_fresh)`.
    pub fn vector_read(&self, line: &LineKey) -> (bool, bool) {
        if !self.hit_vector(line) {
            return (false, true);
        }
        let mut fresh = true;
        for off in 0..self.dim {
            let w = line.word_at(off);
            fresh &= self.word_is_fresh(w.row_in_tile(), w.col_in_tile());
        }
        (true, fresh)
    }

    fn hit_vector(&self, line: &LineKey) -> bool {
        if !self.block {
            return false;
        }
        if self.line_valid(line.orient, line.idx) {
            return true;
        }
        // Partial hit: full coverage by the other orientation.
        self.valid[line.orient.other() as usize] == self.full_mask()
    }

    /// Vector write of `line`. Returns whether it hits.
    pub fn vector_write(&mut self, line: &LineKey) -> bool {
        if !self.hit_vector(line) {
            return false;
        }
        for off in 0..self.dim {
            self.mark_dirty(line.word_at(off), line.orient);
        }
        true
    }

    /// Installs `line` with `dirty` words pre-modified, mirroring
    /// `Cache2P2L::fill`: the block is allocated on first touch, the line's
    /// valid bit is set, and any nonzero mask dirties the whole line (the
    /// real cache tracks dirtiness per line). Words not previously covered
    /// take memory's value; masked words take the new written value.
    pub fn fill(&mut self, line: LineKey, dirty: u8, _out: &mut Vec<Writeback>) {
        self.block = true;
        // Value install happens before the valid bit flips so "previously
        // covered" reflects the pre-fill state.
        for off in 0..self.dim {
            let w = line.word_at(off);
            let (r, c) = (w.row_in_tile(), w.col_in_tile());
            if !self.covered(r, c) {
                let fresh = self.mem_is_fresh(r, c);
                self.set_word_fresh(r, c, fresh);
            }
        }
        self.valid[line.orient as usize] |= 1 << line.idx;
        if dirty != 0 {
            self.dirty[line.orient as usize] |= 1 << line.idx;
            for off in 0..self.dim {
                if dirty & (1 << off) != 0 {
                    let w = line.word_at(off);
                    self.set_word_fresh(w.row_in_tile(), w.col_in_tile(), true);
                    self.set_mem_fresh(w.row_in_tile(), w.col_in_tile(), false);
                }
            }
        }
    }

    /// Absorbs a writeback from above: succeeds only when the block is
    /// already allocated (mirroring `Cache2P2L::absorb_writeback`); the
    /// carried words are newer than anything held here.
    pub fn absorb_writeback(&mut self, wb: &Writeback) -> bool {
        if !self.block {
            return false;
        }
        for off in 0..self.dim {
            let w = wb.line.word_at(off);
            let (r, c) = (w.row_in_tile(), w.col_in_tile());
            if !self.covered(r, c) {
                let fresh = self.mem_is_fresh(r, c);
                self.set_word_fresh(r, c, fresh);
            }
        }
        self.valid[wb.line.orient as usize] |= 1 << wb.line.idx;
        self.dirty[wb.line.orient as usize] |= 1 << wb.line.idx;
        for off in 0..self.dim {
            if wb.dirty & (1 << off) != 0 {
                let w = wb.line.word_at(off);
                self.set_word_fresh(w.row_in_tile(), w.col_in_tile(), true);
                self.set_mem_fresh(w.row_in_tile(), w.col_in_tile(), false);
            }
        }
        true
    }

    /// Evicts the block: every dirty line is written back whole (the real
    /// cache emits `dirty: 0xFF` per dirty line), clean lines are elided.
    pub fn evict_block(&mut self, out: &mut Vec<Writeback>) {
        if !self.block {
            return;
        }
        let full = self.full_mask();
        for orient in Orientation::BOTH {
            for idx in 0..self.dim {
                if self.dirty[orient as usize] & (1 << idx) == 0 {
                    continue;
                }
                let line = LineKey::new(MODEL_TILE, orient, idx);
                let mut sent = full;
                if let Mutation::DropWritebackWord { offset } = self.mutation {
                    sent &= !(1 << offset);
                }
                for off in 0..self.dim {
                    if sent & (1 << off) == 0 {
                        continue;
                    }
                    let w = line.word_at(off);
                    let fresh = self.word_is_fresh(w.row_in_tile(), w.col_in_tile());
                    self.set_mem_fresh(w.row_in_tile(), w.col_in_tile(), fresh);
                }
                if sent != 0 {
                    out.push(Writeback { line, dirty: sent });
                }
            }
        }
        self.block = false;
        self.valid = [0; 2];
        self.dirty = [0; 2];
        self.word_fresh = [0; MAX_DIM];
    }

    /// Flushes the cache (identical to evicting the single block).
    pub fn flush(&mut self, out: &mut Vec<Writeback>) {
        self.evict_block(out);
    }

    /// Per-state invariants: covered words fresh, dirty lines valid, and
    /// flush convergence.
    pub fn check_invariants(&self) -> Result<(), Violation> {
        for orient in Orientation::BOTH {
            let bad = self.dirty[orient as usize] & !self.valid[orient as usize];
            if bad != 0 {
                return Err(Violation::DirtyInvalidLine {
                    line: LineKey::new(MODEL_TILE, orient, bad.trailing_zeros() as u8),
                });
            }
        }
        for r in 0..self.dim {
            for c in 0..self.dim {
                if self.covered(r, c) && !self.word_is_fresh(r, c) {
                    return Err(Violation::StaleCopy {
                        word: WordAddr::from_tile_coords(MODEL_TILE, r, c),
                        orient: Orientation::Row,
                    });
                }
            }
        }
        let mut drained = self.clone();
        let mut sink = Vec::new();
        drained.flush(&mut sink);
        for r in 0..self.dim {
            for c in 0..self.dim {
                if !drained.mem_is_fresh(r, c) {
                    return Err(Violation::FlushDiverged {
                        word: WordAddr::from_tile_coords(MODEL_TILE, r, c),
                    });
                }
            }
        }
        Ok(())
    }

    /// Canonical state encoding for the explorer's visited set.
    pub fn encode(&self) -> u128 {
        let mut code: u128 = u128::from(self.block);
        let mut push = |bits: u8, width: u32| {
            code = (code << width) | u128::from(bits);
        };
        let dim = u32::from(self.dim);
        push(self.valid[0], 8);
        push(self.valid[1], 8);
        push(self.dirty[0], 8);
        push(self.dirty[1], 8);
        for r in 0..self.dim {
            // Only covered words carry a meaningful value bit.
            let mut mask = 0u8;
            for c in 0..self.dim {
                if self.covered(r, c) && self.word_is_fresh(r, c) {
                    mask |= 1 << c;
                }
            }
            push(mask, dim);
        }
        for r in 0..self.dim as usize {
            push(self.mem_fresh[r], dim);
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(o: Orientation, idx: u8) -> LineKey {
        LineKey::new(MODEL_TILE, o, idx)
    }

    #[test]
    fn crossing_lines_share_one_physical_word() {
        let mut m = Model2P2L::new(2, true, Mutation::None);
        let mut out = Vec::new();
        m.fill(line(Orientation::Row, 0), 0, &mut out);
        m.fill(line(Orientation::Col, 1), 0, &mut out);
        let shared = WordAddr::from_tile_coords(0, 0, 1);
        assert!(m.scalar_write(shared, Orientation::Row));
        // Reading through the column still sees the new value: one copy.
        let (hit, fresh) = m.scalar_read(shared, Orientation::Col);
        assert!(hit && fresh);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn fill_does_not_clobber_modified_words() {
        let mut m = Model2P2L::new(2, true, Mutation::None);
        let mut out = Vec::new();
        m.fill(line(Orientation::Row, 0), 0, &mut out);
        let w = WordAddr::from_tile_coords(0, 0, 1);
        assert!(m.scalar_write(w, Orientation::Row));
        // Fill the crossing column: word (0,1) is already covered and
        // modified; the fill must keep the block's fresh value.
        m.fill(line(Orientation::Col, 1), 0, &mut out);
        let (hit, fresh) = m.scalar_read(w, Orientation::Col);
        assert!(hit && fresh);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn dropped_writeback_word_detected() {
        let mut m = Model2P2L::new(2, true, Mutation::DropWritebackWord { offset: 0 });
        let mut out = Vec::new();
        m.fill(line(Orientation::Row, 0), 0, &mut out);
        assert!(m.scalar_write(WordAddr::from_tile_coords(0, 0, 0), Orientation::Row));
        assert!(matches!(m.check_invariants(), Err(Violation::FlushDiverged { .. })));
    }

    #[test]
    fn partial_vector_hit_requires_full_coverage() {
        let mut m = Model2P2L::new(2, true, Mutation::None);
        let mut out = Vec::new();
        m.fill(line(Orientation::Row, 0), 0, &mut out);
        assert!(!m.vector_read(&line(Orientation::Col, 0)).0);
        m.fill(line(Orientation::Row, 1), 0, &mut out);
        assert!(m.vector_read(&line(Orientation::Col, 0)).0, "2/2 rows cover any column");
    }
}
