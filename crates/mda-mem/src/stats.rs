//! Main-memory statistics.

use crate::addr::Orientation;

/// Counters accumulated by the memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Line reads served.
    pub reads: u64,
    /// Line writes accepted.
    pub writes: u64,
    /// Row-mode reads.
    pub row_reads: u64,
    /// Column-mode reads.
    pub col_reads: u64,
    /// Reads that hit an open row/column buffer.
    pub buffer_hits: u64,
    /// Reads that required closing a conflicting buffer entry first.
    pub buffer_conflicts: u64,
    /// Array activations (row or column openings) performed for reads.
    pub activations: u64,
    /// Bytes moved from memory to the cache hierarchy.
    pub bytes_read: u64,
    /// Bytes moved from the cache hierarchy to memory.
    pub bytes_written: u64,
    /// Read stalls caused by write-queue drains (count of affected reads).
    pub write_drain_stalls: u64,
}

impl MemStats {
    /// Total bytes moved on the memory channels, both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Buffer hit rate over all reads, in `[0, 1]`; zero when idle.
    pub fn buffer_hit_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / self.reads as f64
        }
    }

    /// Records a read in `orient`.
    pub(crate) fn note_read(&mut self, orient: Orientation, bytes: u64) {
        self.reads += 1;
        self.bytes_read += bytes;
        match orient {
            Orientation::Row => self.row_reads += 1,
            Orientation::Col => self.col_reads += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_idle_memory() {
        assert_eq!(MemStats::default().buffer_hit_rate(), 0.0);
    }

    #[test]
    fn note_read_splits_by_orientation() {
        let mut s = MemStats::default();
        s.note_read(Orientation::Row, 64);
        s.note_read(Orientation::Col, 64);
        s.note_read(Orientation::Col, 64);
        assert_eq!(s.reads, 3);
        assert_eq!(s.row_reads, 1);
        assert_eq!(s.col_reads, 2);
        assert_eq!(s.bytes_read, 192);
        assert_eq!(s.total_bytes(), 192);
    }
}
