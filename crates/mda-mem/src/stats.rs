//! Main-memory statistics.

use crate::addr::Orientation;

/// Counters accumulated by the memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Line reads served.
    pub reads: u64,
    /// Line writes accepted.
    pub writes: u64,
    /// Row-mode reads.
    pub row_reads: u64,
    /// Column-mode reads.
    pub col_reads: u64,
    /// Reads that hit an open row/column buffer.
    pub buffer_hits: u64,
    /// Reads that required closing a conflicting buffer entry first.
    pub buffer_conflicts: u64,
    /// Array activations (row or column openings) performed for reads.
    pub activations: u64,
    /// Bytes moved from memory to the cache hierarchy.
    pub bytes_read: u64,
    /// Bytes moved from the cache hierarchy to memory.
    pub bytes_written: u64,
    /// Read stalls caused by write-queue drains (count of affected reads).
    pub write_drain_stalls: u64,
    /// Words observed with at least one raw bit fault (before ECC).
    pub raw_word_faults: u64,
    /// Words whose single-bit fault SECDED corrected.
    pub ecc_corrected_words: u64,
    /// Lines carrying at least one uncorrectable (multi-bit) word.
    pub uncorrectable_lines: u64,
    /// Write-verify retry attempts issued by the controller.
    pub write_retries: u64,
    /// Tiles remapped to a bank's spare region after an uncorrectable
    /// error.
    pub tiles_remapped: u64,
    /// Accesses that paid a remap-table lookup to reach a remapped tile.
    pub remap_lookups: u64,
    /// Uncorrectable errors that found the bank's spare region exhausted.
    pub spare_exhausted: u64,
}

impl MemStats {
    /// Total bytes moved on the memory channels, both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Buffer hit rate over all reads, in `[0, 1]`; zero when idle.
    pub fn buffer_hit_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / self.reads as f64
        }
    }

    /// Total 8-byte words moved in either direction (the denominator for
    /// word-granular fault rates).
    pub fn words_accessed(&self) -> u64 {
        self.total_bytes() / crate::addr::WORD_BYTES
    }

    /// Raw (pre-ECC) word fault rate over all words accessed; zero when
    /// idle.
    pub fn raw_word_fault_rate(&self) -> f64 {
        let words = self.words_accessed();
        if words == 0 {
            0.0
        } else {
            self.raw_word_faults as f64 / words as f64
        }
    }

    /// Post-ECC error rate: uncorrectable lines per line transferred.
    pub fn post_ecc_error_rate(&self) -> f64 {
        let lines = self.reads + self.writes;
        if lines == 0 {
            0.0
        } else {
            self.uncorrectable_lines as f64 / lines as f64
        }
    }

    /// True when any reliability event was recorded; gates the extra
    /// reliability line in rendered reports so fault-free output stays
    /// byte-identical.
    pub fn reliability_active(&self) -> bool {
        self.raw_word_faults != 0
            || self.ecc_corrected_words != 0
            || self.uncorrectable_lines != 0
            || self.write_retries != 0
            || self.tiles_remapped != 0
            || self.remap_lookups != 0
            || self.spare_exhausted != 0
    }

    /// Records a read in `orient`.
    pub(crate) fn note_read(&mut self, orient: Orientation, bytes: u64) {
        self.reads += 1;
        self.bytes_read += bytes;
        match orient {
            Orientation::Row => self.row_reads += 1,
            Orientation::Col => self.col_reads += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_idle_memory() {
        assert_eq!(MemStats::default().buffer_hit_rate(), 0.0);
    }

    #[test]
    fn note_read_splits_by_orientation() {
        let mut s = MemStats::default();
        s.note_read(Orientation::Row, 64);
        s.note_read(Orientation::Col, 64);
        s.note_read(Orientation::Col, 64);
        assert_eq!(s.reads, 3);
        assert_eq!(s.row_reads, 1);
        assert_eq!(s.col_reads, 2);
        assert_eq!(s.bytes_read, 192);
        assert_eq!(s.total_bytes(), 192);
        assert_eq!(s.words_accessed(), 24);
    }

    #[test]
    fn reliability_rates_handle_idle_memory() {
        let s = MemStats::default();
        assert_eq!(s.raw_word_fault_rate(), 0.0);
        assert_eq!(s.post_ecc_error_rate(), 0.0);
        assert!(!s.reliability_active());
    }

    #[test]
    fn reliability_active_notices_every_counter() {
        for i in 0..7 {
            let mut s = MemStats::default();
            match i {
                0 => s.raw_word_faults = 1,
                1 => s.ecc_corrected_words = 1,
                2 => s.uncorrectable_lines = 1,
                3 => s.write_retries = 1,
                4 => s.tiles_remapped = 1,
                5 => s.remap_lookups = 1,
                _ => s.spare_exhausted = 1,
            }
            assert!(s.reliability_active(), "counter {i} should flag activity");
        }
    }
}
