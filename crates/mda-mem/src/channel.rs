//! Per-channel state: data-bus reservation and the posted write queue.

use crate::Cycle;

/// One memory channel: a shared data bus plus a write queue.
///
/// Writes are *posted*: the controller accepts them immediately and drains
/// them opportunistically, stalling reads only when the queue crosses its
/// high watermark (FRFCFS-WQF, paper Table I). The queue here tracks only
/// occupancy and aggregate drain work; per-request bank state is applied by
/// the controller when it issues the drain.
#[derive(Debug, Clone)]
pub struct Channel {
    bus_free_at: Cycle,
    queued_writes: usize,
}

impl Channel {
    /// Creates an idle channel.
    pub fn new() -> Channel {
        Channel { bus_free_at: 0, queued_writes: 0 }
    }

    /// Reserves the data bus for `burst` cycles starting no earlier than
    /// `earliest`. Returns `(start, end)` of the transfer.
    pub fn reserve_bus(&mut self, earliest: Cycle, burst: u64) -> (Cycle, Cycle) {
        let start = earliest.max(self.bus_free_at);
        let end = start + burst;
        self.bus_free_at = end;
        (start, end)
    }

    /// Cycle at which the bus next becomes free.
    pub fn bus_free_at(&self) -> Cycle {
        self.bus_free_at
    }

    /// Number of writes currently queued.
    pub fn queued_writes(&self) -> usize {
        self.queued_writes
    }

    /// Enqueues one posted write.
    pub fn push_write(&mut self) {
        self.queued_writes += 1;
    }

    /// Removes up to `n` writes from the queue, returning how many were
    /// actually drained.
    pub fn drain_writes(&mut self, n: usize) -> usize {
        let drained = n.min(self.queued_writes);
        self.queued_writes -= drained;
        drained
    }
}

impl Default for Channel {
    fn default() -> Channel {
        Channel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_reservations_serialize() {
        let mut ch = Channel::new();
        let (s1, e1) = ch.reserve_bus(10, 16);
        assert_eq!((s1, e1), (10, 26));
        let (s2, e2) = ch.reserve_bus(0, 16);
        assert_eq!((s2, e2), (26, 42));
    }

    #[test]
    fn write_queue_tracks_occupancy() {
        let mut ch = Channel::new();
        for _ in 0..5 {
            ch.push_write();
        }
        assert_eq!(ch.queued_writes(), 5);
        assert_eq!(ch.drain_writes(3), 3);
        assert_eq!(ch.queued_writes(), 2);
        assert_eq!(ch.drain_writes(10), 2);
        assert_eq!(ch.queued_writes(), 0);
    }
}
