//! The memory controller: tile decode, bank/channel scheduling, posted
//! writes with watermark-based drains.
//!
//! This is the latency-forwarding stand-in for NVMain's FRFCFS-WQF
//! controller (see DESIGN.md §2 for the substitution argument). Reads are
//! serviced in arrival order against per-bank and per-channel resource
//! reservations; writes are posted into a per-channel queue that drains when
//! it crosses its high watermark, charging the drain work to the banks it
//! targets — the first-order behaviour of a write-queue-flush policy.

use crate::addr::{DecodedAddr, Orientation, LINE_WORDS};
use crate::bank::{Bank, BufferOutcome};
use crate::channel::Channel;
use crate::config::MemConfig;
use crate::faults::FaultState;
use crate::request::{MemCompletion, MemRequest, RequestKind};
use crate::stats::MemStats;
use crate::timing::MemTiming;
use crate::Cycle;

/// The MDA main memory: all channels, ranks and banks plus the controller
/// front-end.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone)]
pub struct MainMemory {
    config: MemConfig,
    banks: Vec<Bank>,
    channels: Vec<Channel>,
    stats: MemStats,
    faults: FaultState,
}

impl MainMemory {
    /// Creates the memory described by `config`.
    ///
    /// # Panics
    /// Panics if `config.validate()` fails; construct configurations through
    /// the provided presets or validate them first.
    pub fn new(config: MemConfig) -> MainMemory {
        if let Err(msg) = config.validate() {
            // mda-lint: allow(lib-unwrap): documented `# Panics` contract rejecting invalid configs
            panic!("invalid MemConfig: {msg}");
        }
        let banks = (0..config.total_banks())
            .map(|_| Bank::with_sub_buffers(config.tiles_per_array_row, config.sub_buffers))
            .collect();
        let channels = (0..config.channels).map(|_| Channel::new()).collect();
        let faults = FaultState::new(config.faults);
        MainMemory { config, banks, channels, stats: MemStats::default(), faults }
    }

    /// The configuration the memory was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets statistics without touching bank/buffer state.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Schedules a request arriving at `now` and returns its completion.
    pub fn access(&mut self, req: MemRequest, now: Cycle) -> MemCompletion {
        match req.kind {
            RequestKind::Read => self.read_req(req, now),
            RequestKind::Write => self.write_req(req, now),
        }
    }

    /// Convenience wrapper: full-line read of `line` at `now`.
    pub fn read(&mut self, line: crate::LineKey, now: Cycle) -> MemCompletion {
        self.access(MemRequest::read(line), now)
    }

    /// Convenience wrapper: posted writeback of `words` words of `line`.
    pub fn write(&mut self, line: crate::LineKey, words: u8, now: Cycle) -> MemCompletion {
        self.access(MemRequest::write(line, words), now)
    }

    fn bank_index(&self, d: &DecodedAddr) -> usize {
        (d.channel * self.config.ranks + d.rank) * self.config.banks + d.bank
    }

    fn decode(&self, tile: u64) -> DecodedAddr {
        DecodedAddr::decode(tile, self.config.channels, self.config.ranks, self.config.banks)
    }

    fn read_req(&mut self, req: MemRequest, now: Cycle) -> MemCompletion {
        let t = self.config.timing;
        let d = self.decode(req.line.tile);
        let bank_idx = self.bank_index(&d);

        let mut start = now + t.controller_latency;
        if req.line.orient == Orientation::Col {
            start += t.col_decode_extra;
        }
        if self.faults.enabled() && self.banks[bank_idx].is_remapped(d.tile_in_bank) {
            start += self.config.faults.remap_penalty;
            self.stats.remap_lookups += 1;
        }

        // Write-queue-flush: if this channel's queue is over the high
        // watermark, drain down to the low watermark before serving the read.
        let over = self.channels[d.channel]
            .queued_writes()
            .saturating_sub(self.config.write_queue_low);
        if self.channels[d.channel].queued_writes() >= self.config.write_queue_high {
            let drained = self.channels[d.channel].drain_writes(over);
            // Drained writes are spread over this channel's banks; charge the
            // average per-bank share to the target bank and the bus.
            let per_bank = (drained as u64).div_ceil((self.config.ranks * self.config.banks) as u64);
            let drain_cycles = per_bank * (t.t_write + t.burst);
            let free = self.banks[bank_idx].free_at().max(start) + drain_cycles;
            self.banks[bank_idx].reserve_until(free);
            self.stats.write_drain_stalls += 1;
        }

        let (outcome, mut data_ready) =
            self.banks[bank_idx].serve_read(d.tile_in_bank, &req.line, start, &t);
        match outcome {
            BufferOutcome::Hit => self.stats.buffer_hits += 1,
            BufferOutcome::Conflict => {
                self.stats.buffer_conflicts += 1;
                self.stats.activations += 1;
            }
            BufferOutcome::Empty => self.stats.activations += 1,
        }

        if self.faults.enabled() {
            let f = self.faults.sample_read(req.line.orient, LINE_WORDS as u32);
            self.stats.raw_word_faults += u64::from(f.raw());
            self.stats.ecc_corrected_words += u64::from(f.corrected);
            if f.uncorrectable > 0 {
                // Uncorrectable line: the controller re-reads the array
                // (one full activation) to rule out a transient disturb,
                // then retires the tile to the spare region.
                self.stats.uncorrectable_lines += 1;
                data_ready += t.closed_latency();
                self.banks[bank_idx].reserve_until(data_ready);
                self.degrade(bank_idx, d.tile_in_bank);
            }
        }

        let (bus_start, burst_done) = self.channels[d.channel].reserve_bus(data_ready, t.burst);
        self.stats.note_read(req.line.orient, req.bytes());

        MemCompletion {
            // Critical-word-first: the requester unblocks as soon as the
            // critical word arrives.
            done: bus_start + t.crit_word,
            burst_done,
            buffer_hit: outcome == BufferOutcome::Hit,
        }
    }

    fn write_req(&mut self, req: MemRequest, now: Cycle) -> MemCompletion {
        let t = self.config.timing;
        let d = self.decode(req.line.tile);
        let bank_idx = self.bank_index(&d);
        self.stats.writes += 1;
        self.stats.bytes_written += req.bytes();

        // Posted write: accepted immediately unless the queue is physically
        // full, in which case one entry must drain first.
        let mut accept = now + t.controller_latency;
        if self.faults.enabled() && self.banks[bank_idx].is_remapped(d.tile_in_bank) {
            accept += self.config.faults.remap_penalty;
            self.stats.remap_lookups += 1;
        }
        if self.channels[d.channel].queued_writes() >= self.config.write_queue_capacity {
            self.channels[d.channel].drain_writes(1);
            let (_, done) =
                self.banks[bank_idx].serve_write(d.tile_in_bank, &req.line, accept, &t);
            accept = done;
        }
        self.channels[d.channel].push_write();
        if self.faults.enabled() {
            self.verify_retry(bank_idx, d.tile_in_bank, &req, accept, &t);
        }
        MemCompletion { done: accept, burst_done: accept, buffer_hit: false }
    }

    /// Write-verify-retry (runs when the fault model is enabled): sample
    /// which words of the just-posted write failed to switch, retry them up
    /// to `max_write_retries` times with exponential backoff, and charge the
    /// retry cycles to the target bank so reliability costs surface as real
    /// contention. Words still failing after the last retry are left to ECC:
    /// single-bit residues are corrected, multi-bit residues retire the tile.
    fn verify_retry(
        &mut self,
        bank_idx: usize,
        tile_in_bank: u64,
        req: &MemRequest,
        accept: Cycle,
        t: &MemTiming,
    ) {
        let orient = req.line.orient;
        let mut failed = self.faults.sample_write_attempt(orient, u32::from(req.words));
        if failed == 0 {
            return;
        }
        self.stats.raw_word_faults += u64::from(failed);
        let fcfg = self.config.faults;
        let mut attempt = 0;
        let mut extra = 0u64;
        while failed > 0 && attempt < fcfg.max_write_retries {
            attempt += 1;
            extra += t.write_retry_cycles(attempt, fcfg.retry_backoff);
            self.stats.write_retries += 1;
            // Each retry rewrites only the still-failing words, each of
            // which fails again independently.
            failed = self.faults.sample_write_attempt(orient, failed);
            self.stats.raw_word_faults += u64::from(failed);
        }
        if extra > 0 {
            let free = self.banks[bank_idx].free_at().max(accept) + extra;
            self.banks[bank_idx].reserve_until(free);
        }
        if failed > 0 {
            let res = self.faults.classify_residual(orient, failed);
            self.stats.ecc_corrected_words += u64::from(res.corrected);
            if res.uncorrectable > 0 {
                self.stats.uncorrectable_lines += 1;
                self.degrade(bank_idx, tile_in_bank);
            }
        }
    }

    /// Graceful degradation after an uncorrectable error: remap the tile to
    /// the bank's spare region if capacity remains; otherwise record the
    /// exhaustion and keep running (the tile stays in service, degraded).
    fn degrade(&mut self, bank_idx: usize, tile_in_bank: u64) {
        if self.banks[bank_idx].is_remapped(tile_in_bank) {
            return;
        }
        if self.banks[bank_idx].remap(tile_in_bank, self.config.faults.spare_tiles_per_bank) {
            self.stats.tiles_remapped += 1;
        } else {
            self.stats.spare_exhausted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LineKey, Orientation};

    fn mem() -> MainMemory {
        MainMemory::new(MemConfig::paper())
    }

    #[test]
    fn sequential_row_reads_hit_the_row_buffer() {
        let mut m = mem();
        // Tiles 0, 4, 8 … map to channel 0, same bank row when adjacent in
        // the bank. Read the same tile's same row twice.
        let line = LineKey::new(0, Orientation::Row, 0);
        let c1 = m.read(line, 0);
        let c2 = m.read(line, c1.burst_done);
        assert!(!c1.buffer_hit);
        assert!(c2.buffer_hit);
        assert!(c2.done - c1.burst_done < c1.done);
    }

    #[test]
    fn column_read_is_a_single_access() {
        let mut m = mem();
        let col = LineKey::new(0, Orientation::Col, 2);
        let c = m.read(col, 0);
        assert_eq!(m.stats().col_reads, 1);
        assert_eq!(m.stats().activations, 1);
        // One activation, one burst — not eight row openings.
        assert!(c.done < 1000);
    }

    #[test]
    fn column_read_pays_decoder_extra() {
        let mut row_mem = mem();
        let mut col_mem = mem();
        let r = row_mem.read(LineKey::new(0, Orientation::Row, 0), 0);
        let c = col_mem.read(LineKey::new(0, Orientation::Col, 0), 0);
        assert_eq!(
            c.done - r.done,
            MemConfig::paper().timing.col_decode_extra
        );
    }

    #[test]
    fn writes_are_posted() {
        let mut m = mem();
        let line = LineKey::new(0, Orientation::Row, 0);
        let c = m.write(line, 8, 0);
        assert_eq!(c.done, MemConfig::paper().timing.controller_latency);
        assert_eq!(m.stats().writes, 1);
        assert_eq!(m.stats().bytes_written, 64);
    }

    /// The first `n` tiles that decode to channel 0.
    fn tiles_on_channel_0(cfg: &MemConfig, n: usize) -> Vec<u64> {
        (0u64..)
            .filter(|t| {
                crate::DecodedAddr::decode(*t, cfg.channels, cfg.ranks, cfg.banks).channel == 0
            })
            .take(n)
            .collect()
    }

    #[test]
    fn write_queue_high_watermark_stalls_reads() {
        let mut m = mem();
        let cfg = *m.config();
        // Fill channel 0's write queue past the high watermark.
        for t in tiles_on_channel_0(&cfg, cfg.write_queue_high) {
            m.write(LineKey::new(t, Orientation::Row, 0), 8, 0);
        }
        let before = m.stats().write_drain_stalls;
        let slow = m.read(LineKey::new(0, Orientation::Row, 0), 0);
        assert_eq!(m.stats().write_drain_stalls, before + 1);

        let mut fresh = mem();
        let fast = fresh.read(LineKey::new(0, Orientation::Row, 0), 0);
        assert!(slow.done > fast.done);
    }

    #[test]
    fn full_write_queue_backpressures() {
        let mut m = mem();
        let cfg = *m.config();
        for t in tiles_on_channel_0(&cfg, cfg.write_queue_capacity) {
            m.write(LineKey::new(t, Orientation::Row, 0), 8, 0);
        }
        let c = m.write(LineKey::new(0, Orientation::Row, 0), 8, 0);
        assert!(c.done > cfg.timing.controller_latency);
    }

    #[test]
    fn channel_parallelism_beats_single_channel() {
        // Four reads to four different channels overlap; four to one channel
        // serialize on the bus.
        let mut m = mem();
        let mut spread_done = 0;
        for t in 0..4u64 {
            let c = m.read(LineKey::new(t, Orientation::Row, 0), 0);
            spread_done = spread_done.max(c.done);
        }
        let mut m2 = mem();
        let mut same_done = 0;
        for t in 0..4u64 {
            // Tiles 0,4,8,12 all land on channel 0, different banks share
            // the one bus.
            let c = m2.read(LineKey::new(t * 4, Orientation::Row, 0), 0);
            same_done = same_done.max(c.done);
        }
        assert!(spread_done < same_done);
    }

    #[test]
    fn stats_reset_keeps_bank_state() {
        let mut m = mem();
        let line = LineKey::new(0, Orientation::Row, 0);
        m.read(line, 0);
        m.reset_stats();
        assert_eq!(m.stats().reads, 0);
        let c = m.read(line, 10_000);
        assert!(c.buffer_hit, "row buffer must survive a stats reset");
    }

    #[test]
    #[should_panic(expected = "invalid MemConfig")]
    fn invalid_config_panics() {
        let mut cfg = MemConfig::paper();
        cfg.channels = 0;
        let _ = MainMemory::new(cfg);
    }

    use crate::faults::FaultConfig;

    #[test]
    fn zero_rate_fault_config_is_identical_to_default() {
        // A fault model with a seed but all-zero rates must not perturb a
        // single cycle or counter.
        let mut plain = MainMemory::new(MemConfig::paper());
        let mut seeded = MainMemory::new(
            MemConfig::paper().with_faults(FaultConfig::uniform(12345, 0.0, 0.0, 0.0)),
        );
        let mut now = 0;
        for t in 0..64u64 {
            let line = LineKey::new(t, if t % 2 == 0 { Orientation::Row } else { Orientation::Col }, (t % 8) as u8);
            let a = plain.read(line, now);
            let b = seeded.read(line, now);
            assert_eq!(a, b);
            let a = plain.write(line, 8, now);
            let b = seeded.write(line, 8, now);
            assert_eq!(a, b);
            now = a.burst_done;
        }
        assert_eq!(plain.stats(), seeded.stats());
        assert!(!plain.stats().reliability_active());
    }

    #[test]
    fn write_retries_occupy_the_bank() {
        // write_ber = 0.5 over 72-bit words makes every word fail its
        // verify, so every write retries max_write_retries times.
        let faulty_cfg = MemConfig::paper().with_faults(FaultConfig::uniform(1, 0.5, 0.0, 0.0));
        let mut faulty = MainMemory::new(faulty_cfg);
        let mut clean = MainMemory::new(MemConfig::paper());
        let line = LineKey::new(0, Orientation::Row, 0);
        faulty.write(line, 8, 0);
        clean.write(line, 8, 0);
        assert!(faulty.stats().write_retries > 0);
        assert!(faulty.stats().raw_word_faults > 0);
        // The retries must show up as bank occupancy: a follow-up read on
        // the same bank completes later than on the clean memory.
        let slow = faulty.read(line, 0);
        let fast = clean.read(line, 0);
        assert!(
            slow.done > fast.done,
            "retries should delay the next access ({} vs {})",
            slow.done,
            fast.done
        );
    }

    #[test]
    fn uncorrectable_read_remaps_tile_and_charges_lookups() {
        // Retention BER 0.5: every read sees multi-bit faults, so the very
        // first read retires its tile to the spare region.
        let cfg = MemConfig::paper().with_faults(FaultConfig::uniform(3, 0.0, 0.0, 0.5));
        let mut m = MainMemory::new(cfg);
        let line = LineKey::new(0, Orientation::Row, 0);
        m.read(line, 0);
        assert_eq!(m.stats().uncorrectable_lines, 1);
        assert_eq!(m.stats().tiles_remapped, 1);
        assert_eq!(m.stats().remap_lookups, 0, "remap happens after the first access");
        m.read(line, 10_000);
        assert_eq!(m.stats().remap_lookups, 1, "second access pays the remap lookup");
        // A remapped tile is not remapped again.
        assert_eq!(m.stats().tiles_remapped, 1);
    }

    #[test]
    fn spare_exhaustion_is_survivable() {
        let mut fc = FaultConfig::uniform(5, 0.0, 0.0, 0.9);
        fc.spare_tiles_per_bank = 2;
        let mut m = MainMemory::new(MemConfig::paper().with_faults(fc));
        // Touch many distinct tiles of bank 0 (tiles 0, 32, 64, … share a
        // bank under the paper's decode for 4ch×1rank×8banks).
        let cfg = *m.config();
        let mut tiles = (0u64..)
            .filter(|t| {
                let d = crate::DecodedAddr::decode(*t, cfg.channels, cfg.ranks, cfg.banks);
                d.channel == 0 && d.bank == 0
            })
            .take(6);
        let mut now = 0;
        for _ in 0..6 {
            let t = tiles.next().unwrap();
            let c = m.read(LineKey::new(t, Orientation::Row, 0), now);
            now = c.burst_done;
        }
        assert_eq!(m.stats().tiles_remapped, 2, "spare capacity bounds remaps");
        assert!(m.stats().spare_exhausted > 0, "overflow is counted, not fatal");
    }

    #[test]
    fn fixed_seed_reproduces_fault_sequence() {
        let cfg = MemConfig::paper().with_faults(FaultConfig::uniform(99, 1e-2, 1e-3, 1e-3));
        let run = || {
            let mut m = MainMemory::new(cfg);
            let mut now = 0;
            for t in 0..256u64 {
                let line = LineKey::new(t % 16, Orientation::Row, (t % 8) as u8);
                let c = m.read(line, now);
                m.write(line, 8, now);
                now = c.burst_done;
            }
            (*m.stats(), now)
        };
        assert_eq!(run(), run());
    }
}
