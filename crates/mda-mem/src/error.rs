//! Typed configuration errors.
//!
//! `mda-mem` hosts the workspace's shared vocabulary, so the error type for
//! configuration validation lives here too: both [`crate::MemConfig`] and
//! `mda-cache`'s `CacheConfig` report the same [`ConfigError`], and
//! `mda-sim::SystemConfig` surfaces it at construction time.

/// A reason a configuration failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A field that must be non-zero was zero.
    Zero {
        /// The offending field.
        field: &'static str,
    },
    /// A field that must be a power of two was not.
    NotPowerOfTwo {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// A field must be a multiple of a granularity and was not.
    NotAMultiple {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: u64,
        /// The required granularity.
        of: u64,
    },
    /// Write-queue watermarks are inverted or exceed the queue capacity.
    Watermarks {
        /// Drain-target (low) watermark.
        low: usize,
        /// Drain-trigger (high) watermark.
        high: usize,
        /// Physical queue capacity.
        capacity: usize,
    },
    /// A probability lies outside `[0, 1]` (or is NaN).
    Probability {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Zero { field } => write!(f, "{field} must be non-zero"),
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a power of two, got {value}")
            }
            ConfigError::NotAMultiple { field, value, of } => {
                write!(f, "{field} ({value}) must be a multiple of {of}")
            }
            ConfigError::Watermarks { low, high, capacity } => write!(
                f,
                "write queue watermarks must satisfy low < high <= capacity, \
                 got low {low} / high {high} / capacity {capacity}"
            ),
            ConfigError::Probability { field, value } => {
                write!(f, "{field} must be a probability in [0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_field() {
        let e = ConfigError::Zero { field: "channels" };
        assert!(e.to_string().contains("channels"));
        let e = ConfigError::Probability { field: "write_ber", value: 1.5 };
        assert!(e.to_string().contains("write_ber"));
        assert!(e.to_string().contains("1.5"));
        let e = ConfigError::NotPowerOfTwo { field: "banks", value: 3 };
        assert!(e.to_string().contains("power of two"));
        let e = ConfigError::NotAMultiple { field: "size", value: 1000, of: 64 };
        assert!(e.to_string().contains("multiple"));
        let e = ConfigError::Watermarks { low: 9, high: 9, capacity: 8 };
        assert!(e.to_string().contains("low 9"));
    }
}
