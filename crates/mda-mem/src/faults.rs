//! Deterministic fault injection and SECDED ECC accounting for the MDA
//! crosspoint array.
//!
//! STT-MRAM crosspoint cells fail stochastically: writes occasionally do
//! not switch the free layer, reads disturb neighboring cells, and stored
//! values decay (retention faults). A production controller masks these
//! with per-word SECDED ECC plus a write-verify-retry loop. This module
//! models all three error sources with a seed-driven PRNG so that a fixed
//! seed reproduces the exact same fault sequence regardless of how the
//! surrounding harness schedules work.
//!
//! The model is probabilistic at word granularity: for a raw bit-error
//! rate `q` and a 72-bit SECDED codeword (64 data + 8 check bits), the
//! chance a word is clean is `(1-q)^72` and the chance at most one bit
//! flipped is `(1-q)^72 + 72·q·(1-q)^71`. A single flipped bit is
//! corrected by ECC; two or more are detected but uncorrectable.

use crate::addr::Orientation;
use crate::error::ConfigError;

/// Data bits protected per ECC word.
pub const ECC_DATA_BITS: u32 = 64;
/// SECDED check bits per ECC word (Hamming(72,64) + overall parity).
pub const ECC_CHECK_BITS: u32 = 8;
/// Total codeword bits stored per word.
pub const ECC_CODE_BITS: u32 = ECC_DATA_BITS + ECC_CHECK_BITS;

/// Per-orientation raw bit-error rates.
///
/// Row and column accesses traverse different wordline/bitline paths in a
/// crosspoint array, so the two orientations can be configured with
/// different rates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability a written bit fails to switch (checked by verify).
    pub write_ber: f64,
    /// Probability a read disturbs a bit of the line being read.
    pub read_disturb_ber: f64,
    /// Probability a stored bit has decayed by the time it is read.
    pub retention_ber: f64,
}

impl FaultRates {
    /// Combined per-bit error probability seen by a read (disturb and
    /// retention faults are independent).
    pub fn read_ber(&self) -> f64 {
        1.0 - (1.0 - self.read_disturb_ber) * (1.0 - self.retention_ber)
    }

    /// True when any rate is nonzero.
    pub fn enabled(&self) -> bool {
        self.write_ber > 0.0 || self.read_disturb_ber > 0.0 || self.retention_ber > 0.0
    }

    fn validate(&self, orient: &'static str) -> Result<(), ConfigError> {
        let fields: [(&'static str, f64); 3] = match orient {
            "row" => [
                ("faults.row.write_ber", self.write_ber),
                ("faults.row.read_disturb_ber", self.read_disturb_ber),
                ("faults.row.retention_ber", self.retention_ber),
            ],
            _ => [
                ("faults.col.write_ber", self.write_ber),
                ("faults.col.read_disturb_ber", self.read_disturb_ber),
                ("faults.col.retention_ber", self.retention_ber),
            ],
        };
        for (field, value) in fields {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(ConfigError::Probability { field, value });
            }
        }
        Ok(())
    }
}

/// The full fault-model configuration carried inside [`crate::MemConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// PRNG seed; a fixed seed reproduces the exact fault sequence.
    pub seed: u64,
    /// Rates applied to row-orientation accesses.
    pub row: FaultRates,
    /// Rates applied to column-orientation accesses.
    pub col: FaultRates,
    /// Verify-retry attempts before a write's residual errors are left to
    /// ECC.
    pub max_write_retries: u32,
    /// Base backoff (cycles) added per retry; doubles each attempt.
    pub retry_backoff: u64,
    /// Spare tiles per bank available for remapping uncorrectable tiles.
    pub spare_tiles_per_bank: u32,
    /// Extra cycles per access to a remapped tile (remap-table lookup).
    pub remap_penalty: u64,
}

impl FaultConfig {
    /// A disabled fault model: all rates zero, controller behavior
    /// byte-identical to the fault-free simulator.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0x4D44_4143, // "MDAC"
            row: FaultRates::default(),
            col: FaultRates::default(),
            max_write_retries: 3,
            retry_backoff: 8,
            spare_tiles_per_bank: 16,
            remap_penalty: 6,
        }
    }

    /// Uniform rates applied to both orientations.
    pub fn uniform(seed: u64, write_ber: f64, read_disturb_ber: f64, retention_ber: f64) -> Self {
        let rates = FaultRates { write_ber, read_disturb_ber, retention_ber };
        FaultConfig { seed, row: rates, col: rates, ..FaultConfig::none() }
    }

    /// The rates for one access orientation.
    pub fn rates(&self, orient: Orientation) -> FaultRates {
        match orient {
            Orientation::Row => self.row,
            Orientation::Col => self.col,
        }
    }

    /// True when any rate of either orientation is nonzero.
    pub fn enabled(&self) -> bool {
        self.row.enabled() || self.col.enabled()
    }

    /// Checks every probability lies in `[0, 1]`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.row.validate("row")?;
        self.col.validate("col")
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// SplitMix64: a tiny, high-quality, seedable PRNG (public-domain
/// constants from Steele et al.). Deterministic across platforms.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Precomputed per-word outcome thresholds for one bit-error rate.
#[derive(Debug, Clone, Copy)]
struct WordModel {
    /// P(no bit flipped) = (1-q)^72.
    p_clean: f64,
    /// P(at most one bit flipped) = p_clean + 72·q·(1-q)^71.
    p_le_one: f64,
}

impl WordModel {
    fn new(q: f64) -> Self {
        if q <= 0.0 {
            return WordModel { p_clean: 1.0, p_le_one: 1.0 };
        }
        let ok = 1.0 - q;
        let p_clean = ok.powi(ECC_CODE_BITS as i32);
        let p_single = ECC_CODE_BITS as f64 * q * ok.powi(ECC_CODE_BITS as i32 - 1);
        WordModel { p_clean, p_le_one: (p_clean + p_single).min(1.0) }
    }
}

/// ECC outcome of sampling a group of words.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WordFaults {
    /// Words with exactly one flipped bit, corrected by SECDED.
    pub corrected: u32,
    /// Words with two or more flipped bits: detected, not correctable.
    pub uncorrectable: u32,
}

impl WordFaults {
    /// Total words with at least one raw bit fault.
    pub fn raw(&self) -> u32 {
        self.corrected + self.uncorrectable
    }
}

/// The live fault-model state owned by one `MainMemory` instance.
///
/// Because each simulation owns its memory (and hence its own PRNG), the
/// fault sequence depends only on the seed and the access stream — never
/// on harness scheduling or worker count.
#[derive(Debug, Clone)]
pub struct FaultState {
    cfg: FaultConfig,
    rng: SplitMix64,
    /// Per-orientation read models (disturb + retention combined).
    read: [WordModel; 2],
    /// Per-orientation P(word writes cleanly on one attempt).
    write_ok: [f64; 2],
    /// Per-orientation residual-error model for words that exhausted
    /// their retries (distribution of flipped bits given >= 1 flipped).
    write_residual: [WordModel; 2],
}

impl FaultState {
    /// Builds the runtime state for a fault configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        let build = |r: FaultRates| {
            (WordModel::new(r.read_ber()), WordModel::new(r.write_ber).p_clean, WordModel::new(r.write_ber))
        };
        let (row_read, row_wok, row_res) = build(cfg.row);
        let (col_read, col_wok, col_res) = build(cfg.col);
        FaultState {
            cfg,
            rng: SplitMix64::new(cfg.seed),
            read: [row_read, col_read],
            write_ok: [row_wok, col_wok],
            write_residual: [row_res, col_res],
        }
    }

    /// The configuration this state was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True when any rate is nonzero; when false, no PRNG draws happen and
    /// the controller path is identical to the fault-free simulator.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    fn idx(orient: Orientation) -> usize {
        match orient {
            Orientation::Row => 0,
            Orientation::Col => 1,
        }
    }

    /// Samples the ECC outcome of reading `words` words in `orient`.
    pub fn sample_read(&mut self, orient: Orientation, words: u32) -> WordFaults {
        let model = self.read[Self::idx(orient)];
        self.sample_words(model, words)
    }

    /// Samples one write (or retry) attempt over `words` words, returning
    /// how many words still hold at least one flipped bit after it.
    pub fn sample_write_attempt(&mut self, orient: Orientation, words: u32) -> u32 {
        let p_ok = self.write_ok[Self::idx(orient)];
        if p_ok >= 1.0 {
            return 0;
        }
        let mut failed = 0;
        for _ in 0..words {
            if self.rng.next_f64() >= p_ok {
                failed += 1;
            }
        }
        failed
    }

    /// Classifies `words` words that still carry errors after retries were
    /// exhausted: conditional on at least one flipped bit, either a single
    /// flip (ECC corrects) or a multi-bit pattern (uncorrectable).
    pub fn classify_residual(&mut self, orient: Orientation, words: u32) -> WordFaults {
        let model = self.write_residual[Self::idx(orient)];
        let mut out = WordFaults::default();
        // P(single | >=1 fault) = (p_le_one - p_clean) / (1 - p_clean).
        let p_fault = 1.0 - model.p_clean;
        let p_single_given_fault =
            if p_fault > 0.0 { (model.p_le_one - model.p_clean) / p_fault } else { 0.0 };
        for _ in 0..words {
            if self.rng.next_f64() < p_single_given_fault {
                out.corrected += 1;
            } else {
                out.uncorrectable += 1;
            }
        }
        out
    }

    fn sample_words(&mut self, model: WordModel, words: u32) -> WordFaults {
        if model.p_clean >= 1.0 {
            return WordFaults::default();
        }
        let mut out = WordFaults::default();
        for _ in 0..words {
            let u = self.rng.next_f64();
            if u < model.p_clean {
                continue;
            }
            if u < model.p_le_one {
                out.corrected += 1;
            } else {
                out.uncorrectable += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_draw_nothing_and_fault_nothing() {
        let mut fs = FaultState::new(FaultConfig::none());
        assert!(!fs.enabled());
        for _ in 0..100 {
            assert_eq!(fs.sample_read(Orientation::Row, 8), WordFaults::default());
            assert_eq!(fs.sample_write_attempt(Orientation::Col, 8), 0);
        }
        // The PRNG must not have advanced: a clean state draws identically.
        let mut fresh = SplitMix64::new(FaultConfig::none().seed);
        assert_eq!(fs.rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn same_seed_same_sequence() {
        let cfg = FaultConfig::uniform(42, 1e-3, 1e-4, 1e-5);
        let mut a = FaultState::new(cfg);
        let mut b = FaultState::new(cfg);
        for _ in 0..1000 {
            assert_eq!(a.sample_read(Orientation::Row, 8), b.sample_read(Orientation::Row, 8));
            assert_eq!(
                a.sample_write_attempt(Orientation::Col, 8),
                b.sample_write_attempt(Orientation::Col, 8)
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultState::new(FaultConfig::uniform(1, 0.05, 0.05, 0.0));
        let mut b = FaultState::new(FaultConfig::uniform(2, 0.05, 0.05, 0.0));
        let mut diverged = false;
        for _ in 0..200 {
            if a.sample_read(Orientation::Row, 8) != b.sample_read(Orientation::Row, 8) {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "distinct seeds should produce distinct fault sequences");
    }

    #[test]
    fn certain_errors_are_uncorrectable() {
        // q = 1: every bit flips, so every word is a multi-bit error.
        let mut fs = FaultState::new(FaultConfig::uniform(7, 1.0, 1.0, 0.0));
        let f = fs.sample_read(Orientation::Row, 8);
        assert_eq!(f, WordFaults { corrected: 0, uncorrectable: 8 });
        assert_eq!(fs.sample_write_attempt(Orientation::Row, 8), 8);
        let res = fs.classify_residual(Orientation::Row, 8);
        assert_eq!(res.uncorrectable, 8);
    }

    #[test]
    fn moderate_rate_mostly_corrects() {
        // At q = 1e-4 over 72 bits, multi-bit flips are ~2600x rarer than
        // single-bit flips, so corrected should dominate.
        let mut fs = FaultState::new(FaultConfig::uniform(9, 0.0, 1e-4, 0.0));
        let mut total = WordFaults::default();
        for _ in 0..10_000 {
            let f = fs.sample_read(Orientation::Col, 8);
            total.corrected += f.corrected;
            total.uncorrectable += f.uncorrectable;
        }
        assert!(total.corrected > 0, "expected some corrected words");
        assert!(
            total.corrected > total.uncorrectable * 100,
            "single-bit corrections should dominate: {total:?}"
        );
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut cfg = FaultConfig::none();
        cfg.row.write_ber = 1.5;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::Probability { field: "faults.row.write_ber", value: 1.5 })
        );
        let mut cfg = FaultConfig::none();
        cfg.col.retention_ber = -0.1;
        assert!(cfg.validate().is_err());
        assert_eq!(FaultConfig::none().validate(), Ok(()));
    }

    #[test]
    fn read_ber_combines_independently() {
        let r = FaultRates { write_ber: 0.0, read_disturb_ber: 0.5, retention_ber: 0.5 };
        assert!((r.read_ber() - 0.75).abs() < 1e-12);
    }
}
