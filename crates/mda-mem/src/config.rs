//! Main-memory configuration.

use crate::timing::MemTiming;

/// Configuration of the MDA main memory (paper Table I: 1 GB/channel × 4
/// channels, STT-RAM, open-page, FRFCFS-WQF controller).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Tiles per physical array row inside a bank. Determines how many
    /// consecutive bank-local tiles share an open row buffer entry.
    pub tiles_per_array_row: u64,
    /// Concurrently open row (and column) buffer entries per bank. One is
    /// the paper's default; larger values model the multiple-sub-row-buffer
    /// scheme examined in paper Sec. IX-B.
    pub sub_buffers: usize,
    /// Device timing parameters.
    pub timing: MemTiming,
    /// Write-queue capacity per channel (requests).
    pub write_queue_capacity: usize,
    /// When the write queue reaches this fill level, reads stall while the
    /// queue drains to `write_queue_low` (the "WQF" in FRFCFS-WQF).
    pub write_queue_high: usize,
    /// Drain target once the high watermark is hit.
    pub write_queue_low: usize,
}

impl MemConfig {
    /// The paper's 4-channel STT configuration.
    pub fn paper() -> MemConfig {
        MemConfig {
            channels: 4,
            ranks: 1,
            banks: 8,
            // An 8 KB physical row (128 tiles × 64 B of row data each).
            tiles_per_array_row: 128,
            sub_buffers: 1,
            timing: MemTiming::stt(),
            write_queue_capacity: 64,
            write_queue_high: 48,
            write_queue_low: 16,
        }
    }

    /// Same organization with the 1.6× faster device of Fig. 17.
    pub fn paper_fast() -> MemConfig {
        MemConfig { timing: MemTiming::fast(), ..MemConfig::paper() }
    }

    /// Total number of banks across the whole memory.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.banks
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a human-readable message when a field combination is invalid
    /// (zero-sized resources or inverted watermarks).
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.ranks == 0 || self.banks == 0 {
            return Err("channels, ranks and banks must all be non-zero".into());
        }
        if self.tiles_per_array_row == 0 {
            return Err("tiles_per_array_row must be non-zero".into());
        }
        if self.sub_buffers == 0 {
            return Err("at least one buffer per orientation is required".into());
        }
        if self.write_queue_low >= self.write_queue_high {
            return Err(format!(
                "write queue low watermark {} must be below high watermark {}",
                self.write_queue_low, self.write_queue_high
            ));
        }
        if self.write_queue_high > self.write_queue_capacity {
            return Err(format!(
                "write queue high watermark {} exceeds capacity {}",
                self.write_queue_high, self.write_queue_capacity
            ));
        }
        Ok(())
    }
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        assert_eq!(MemConfig::paper().validate(), Ok(()));
        assert_eq!(MemConfig::paper_fast().validate(), Ok(()));
        assert_eq!(MemConfig::paper().total_banks(), 32);
    }

    #[test]
    fn invalid_watermarks_are_rejected() {
        let mut c = MemConfig::paper();
        c.write_queue_low = c.write_queue_high;
        assert!(c.validate().is_err());
        let mut c = MemConfig::paper();
        c.write_queue_high = c.write_queue_capacity + 1;
        assert!(c.validate().is_err());
        let mut c = MemConfig::paper();
        c.banks = 0;
        assert!(c.validate().is_err());
    }
}
