//! Main-memory configuration.

use crate::error::ConfigError;
use crate::faults::FaultConfig;
use crate::timing::MemTiming;

/// Configuration of the MDA main memory (paper Table I: 1 GB/channel × 4
/// channels, STT-RAM, open-page, FRFCFS-WQF controller).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Tiles per physical array row inside a bank. Determines how many
    /// consecutive bank-local tiles share an open row buffer entry.
    pub tiles_per_array_row: u64,
    /// Concurrently open row (and column) buffer entries per bank. One is
    /// the paper's default; larger values model the multiple-sub-row-buffer
    /// scheme examined in paper Sec. IX-B.
    pub sub_buffers: usize,
    /// Device timing parameters.
    pub timing: MemTiming,
    /// Write-queue capacity per channel (requests).
    pub write_queue_capacity: usize,
    /// When the write queue reaches this fill level, reads stall while the
    /// queue drains to `write_queue_low` (the "WQF" in FRFCFS-WQF).
    pub write_queue_high: usize,
    /// Drain target once the high watermark is hit.
    pub write_queue_low: usize,
    /// Fault-injection / ECC model. `FaultConfig::none()` (the default)
    /// keeps the controller byte-identical to the fault-free simulator.
    pub faults: FaultConfig,
}

impl MemConfig {
    /// The paper's 4-channel STT configuration.
    pub fn paper() -> MemConfig {
        MemConfig {
            channels: 4,
            ranks: 1,
            banks: 8,
            // An 8 KB physical row (128 tiles × 64 B of row data each).
            tiles_per_array_row: 128,
            sub_buffers: 1,
            timing: MemTiming::stt(),
            write_queue_capacity: 64,
            write_queue_high: 48,
            write_queue_low: 16,
            faults: FaultConfig::none(),
        }
    }

    /// Same organization with the 1.6× faster device of Fig. 17.
    pub fn paper_fast() -> MemConfig {
        MemConfig { timing: MemTiming::fast(), ..MemConfig::paper() }
    }

    /// The same configuration with a fault model attached.
    pub fn with_faults(self, faults: FaultConfig) -> MemConfig {
        MemConfig { faults, ..self }
    }

    /// Total number of banks across the whole memory.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.banks
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a typed [`ConfigError`] for zero-sized resources, non-power-
    /// of-two geometry, inverted write-queue watermarks, or out-of-range
    /// fault probabilities.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [
            ("channels", self.channels),
            ("ranks", self.ranks),
            ("banks", self.banks),
            ("sub_buffers", self.sub_buffers),
        ] {
            if value == 0 {
                return Err(ConfigError::Zero { field });
            }
        }
        if self.tiles_per_array_row == 0 {
            return Err(ConfigError::Zero { field: "tiles_per_array_row" });
        }
        // The Fig. 8 address decode assumes power-of-two interleaving
        // across channels and within a physical array row.
        if !self.channels.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "channels",
                value: self.channels as u64,
            });
        }
        if !self.tiles_per_array_row.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "tiles_per_array_row",
                value: self.tiles_per_array_row,
            });
        }
        if self.write_queue_low >= self.write_queue_high
            || self.write_queue_high > self.write_queue_capacity
        {
            return Err(ConfigError::Watermarks {
                low: self.write_queue_low,
                high: self.write_queue_high,
                capacity: self.write_queue_capacity,
            });
        }
        self.faults.validate()
    }
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        assert_eq!(MemConfig::paper().validate(), Ok(()));
        assert_eq!(MemConfig::paper_fast().validate(), Ok(()));
        assert_eq!(MemConfig::paper().total_banks(), 32);
    }

    #[test]
    fn invalid_watermarks_are_rejected() {
        let mut c = MemConfig::paper();
        c.write_queue_low = c.write_queue_high;
        assert!(matches!(c.validate(), Err(ConfigError::Watermarks { .. })));
        let mut c = MemConfig::paper();
        c.write_queue_high = c.write_queue_capacity + 1;
        assert!(matches!(c.validate(), Err(ConfigError::Watermarks { .. })));
        let mut c = MemConfig::paper();
        c.banks = 0;
        assert_eq!(c.validate(), Err(ConfigError::Zero { field: "banks" }));
    }

    #[test]
    fn non_power_of_two_geometry_is_rejected() {
        let mut c = MemConfig::paper();
        c.channels = 3;
        assert_eq!(
            c.validate(),
            Err(ConfigError::NotPowerOfTwo { field: "channels", value: 3 })
        );
        let mut c = MemConfig::paper();
        c.tiles_per_array_row = 100;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_fault_probability_is_rejected() {
        let mut c = MemConfig::paper();
        c.faults.row.write_ber = 2.0;
        assert!(matches!(c.validate(), Err(ConfigError::Probability { .. })));
    }
}
