//! Device timing parameters, expressed in 3 GHz CPU cycles.
//!
//! The paper models its MDA main memory on STT-MRAM devices (Everspin-class
//! parts simulated in NVMain). We express all latencies in CPU cycles so the
//! core and memory share one clock domain; the `fast()` preset divides every
//! latency by 1.6 to reproduce the paper's Fig. 17 "faster main memory"
//! sensitivity study.

/// Timing parameters for the MDA main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTiming {
    /// Fixed controller pipeline latency added to every request (queueing,
    /// address translation, command issue).
    pub controller_latency: u64,
    /// Extra address-translation cycles for a column-mode access (the
    /// paper adds one memory cycle for the column decoder).
    pub col_decode_extra: u64,
    /// Activate: array row (or column) → open buffer.
    pub t_rcd: u64,
    /// Buffer read → first data on the internal bus.
    pub t_cas: u64,
    /// Precharge / buffer close before opening a different row or column.
    pub t_rp: u64,
    /// Array write service time for one line (STT writes are slow).
    pub t_write: u64,
    /// Channel-bus occupancy to move one 64-byte line.
    pub burst: u64,
    /// Cycles until the critical word of a burst is delivered
    /// (critical-word-first transfer, paper Sec. IV-B-d).
    pub crit_word: u64,
    /// Read-back time to verify a just-written line (write-verify-retry;
    /// a verify is a buffered read, cheaper than a fresh activation).
    pub t_verify: u64,
}

impl MemTiming {
    /// STT-MRAM-class crosspoint timings (the paper's default technology).
    pub fn stt() -> MemTiming {
        MemTiming {
            controller_latency: 24,
            col_decode_extra: 3,
            t_rcd: 90,
            t_cas: 30,
            t_rp: 45,
            t_write: 150,
            burst: 16,
            crit_word: 4,
            t_verify: 30,
        }
    }

    /// A 1.6× faster main memory (Fig. 17 sensitivity study).
    pub fn fast() -> MemTiming {
        MemTiming::stt().scaled(1.6)
    }

    /// Returns a copy of `self` with every latency divided by `factor`
    /// (values are rounded and clamped to at least one cycle).
    ///
    /// # Panics
    /// Panics if `factor` is not strictly positive and finite.
    pub fn scaled(&self, factor: f64) -> MemTiming {
        assert!(factor.is_finite() && factor > 0.0, "scale factor must be positive");
        let s = |v: u64| (((v as f64) / factor).round() as u64).max(1);
        MemTiming {
            controller_latency: s(self.controller_latency),
            col_decode_extra: s(self.col_decode_extra),
            t_rcd: s(self.t_rcd),
            t_cas: s(self.t_cas),
            t_rp: s(self.t_rp),
            t_write: s(self.t_write),
            burst: s(self.burst),
            crit_word: s(self.crit_word),
            t_verify: s(self.t_verify),
        }
    }

    /// Cycles charged to the bank for write-verify retry `attempt`
    /// (1-based): read back, rewrite, plus exponential backoff so repeated
    /// failures space themselves out.
    #[inline]
    pub fn write_retry_cycles(&self, attempt: u32, backoff_base: u64) -> u64 {
        let backoff = backoff_base.saturating_mul(1u64 << attempt.saturating_sub(1).min(16));
        (self.t_verify + self.t_write).saturating_add(backoff)
    }

    /// Latency of a buffer hit (no activation needed), excluding bus time.
    #[inline]
    pub fn hit_latency(&self) -> u64 {
        self.t_cas
    }

    /// Latency of a buffer miss with a previously open conflicting entry:
    /// precharge, activate, then read out.
    #[inline]
    pub fn conflict_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cas
    }

    /// Latency of an access to an idle (closed) bank: activate + read.
    #[inline]
    pub fn closed_latency(&self) -> u64 {
        self.t_rcd + self.t_cas
    }
}

impl Default for MemTiming {
    fn default() -> MemTiming {
        MemTiming::stt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_is_strictly_faster() {
        let base = MemTiming::stt();
        let fast = MemTiming::fast();
        assert!(fast.t_rcd < base.t_rcd);
        assert!(fast.t_cas < base.t_cas);
        assert!(fast.t_write < base.t_write);
        assert!(fast.burst < base.burst);
    }

    #[test]
    fn scaling_rounds_and_clamps() {
        let t = MemTiming::stt().scaled(1000.0);
        assert_eq!(t.t_cas, 1);
        assert_eq!(t.burst, 1);
    }

    #[test]
    fn latency_orderings_hold() {
        let t = MemTiming::stt();
        assert!(t.hit_latency() < t.closed_latency());
        assert!(t.closed_latency() < t.conflict_latency());
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn zero_scale_panics() {
        let _ = MemTiming::stt().scaled(0.0);
    }

    #[test]
    fn retry_cycles_back_off_exponentially() {
        let t = MemTiming::stt();
        let base = t.t_verify + t.t_write;
        assert_eq!(t.write_retry_cycles(1, 8), base + 8);
        assert_eq!(t.write_retry_cycles(2, 8), base + 16);
        assert_eq!(t.write_retry_cycles(3, 8), base + 32);
        // Backoff saturates instead of overflowing for absurd attempts.
        assert!(t.write_retry_cycles(80, u64::MAX) >= base);
    }
}
