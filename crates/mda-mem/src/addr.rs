// mda-lint: hot-path
//! Address geometry: words, lines, tiles and the Fig. 8 address decode.
//!
//! The paper fixes a 64-bit word, a 64-byte cache line (8 words) and a
//! 512-byte 2-D block ("tile": 8 rows × 8 columns × 8 bytes). Within a tile
//! the physical address bits are, from the LSB (paper Fig. 8):
//!
//! ```text
//! [2:0]  byte offset within a word
//! [5:3]  "row word offset"  — the word's position within a ROW line,
//!        i.e. the tile-local COLUMN coordinate `c`
//! [8:6]  "col word offset"  — the word's position within a COLUMN line,
//!        i.e. the tile-local ROW coordinate `r`
//! [..]   tile id (interleaved over channel/rank/bank, then word line and
//!        row/column select inside the bank)
//! ```
//!
//! Tiles are the unit of bank/rank/channel interleaving so that column
//! alignment inside a tile is never disturbed by the interleaving function.

/// Bytes per machine word (the paper uses 64-bit words).
pub const WORD_BYTES: u64 = 8;
/// Words per cache line.
pub const LINE_WORDS: usize = 8;
/// Bytes per cache line.
pub const LINE_BYTES: u64 = WORD_BYTES * LINE_WORDS as u64;
/// Row (and column) lines per 2-D block.
pub const TILE_LINES: usize = 8;
/// Bytes per 2-D block (8 rows × 8 columns × 8 B).
pub const TILE_BYTES: u64 = LINE_BYTES * TILE_LINES as u64;

/// The access/storage orientation of a cache line or memory transfer.
///
/// `Row` transfers move unit-stride words; `Col` transfers move the same
/// quantity of words with a fixed tile-height stride, served by the MDA
/// memory's column buffer in a single operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Orientation {
    /// Unit-stride (conventional) direction.
    #[default]
    Row,
    /// Fixed non-unit-stride direction, native to MDA memories.
    Col,
}

impl Orientation {
    /// The opposite orientation.
    #[inline]
    pub fn other(self) -> Orientation {
        match self {
            Orientation::Row => Orientation::Col,
            Orientation::Col => Orientation::Row,
        }
    }

    /// Both orientations, `Row` first (the paper's default preference).
    pub const BOTH: [Orientation; 2] = [Orientation::Row, Orientation::Col];
}

impl std::fmt::Display for Orientation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Orientation::Row => write!(f, "row"),
            Orientation::Col => write!(f, "col"),
        }
    }
}

/// Identifier of a 512-byte 2-D block in the physical address space.
pub type TileId = u64;

/// A word-aligned physical address.
///
/// All memory operations in the workspace are expressed in terms of words;
/// the byte-offset bits `[2:0]` are always zero here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WordAddr(pub u64);

impl WordAddr {
    /// Builds a word address from a byte address, discarding byte-offset bits.
    #[inline]
    pub fn from_byte_addr(addr: u64) -> WordAddr {
        WordAddr(addr & !(WORD_BYTES - 1))
    }

    /// Builds the address of the word at tile-local coordinates `(r, c)`.
    ///
    /// # Panics
    /// Panics if `r` or `c` is outside `0..8`.
    #[inline]
    pub fn from_tile_coords(tile: TileId, r: u8, c: u8) -> WordAddr {
        assert!(r < TILE_LINES as u8 && c < TILE_LINES as u8);
        WordAddr(tile * TILE_BYTES + (r as u64) * LINE_BYTES + (c as u64) * WORD_BYTES)
    }

    /// The tile this word belongs to.
    #[inline]
    pub fn tile(self) -> TileId {
        self.0 / TILE_BYTES
    }

    /// Tile-local row coordinate `r` (bits `[8:6]`, the "col word offset").
    #[inline]
    pub fn row_in_tile(self) -> u8 {
        ((self.0 >> 6) & 0x7) as u8
    }

    /// Tile-local column coordinate `c` (bits `[5:3]`, the "row word offset").
    #[inline]
    pub fn col_in_tile(self) -> u8 {
        ((self.0 >> 3) & 0x7) as u8
    }

    /// The byte address of the word.
    #[inline]
    pub fn byte_addr(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for WordAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// Identity of one cache-line-sized transfer unit: a row or a column of a
/// tile.
///
/// A `Row` line with index `r` covers words `(tile, r, 0..8)`; a `Col` line
/// with index `c` covers words `(tile, 0..8, c)`. Lines of different
/// orientation within the same tile *intersect* in exactly one word, which is
/// the source of the duplication phenomena handled by the 1P2L cache policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineKey {
    /// The 2-D block the line belongs to.
    pub tile: TileId,
    /// Transfer orientation.
    pub orient: Orientation,
    /// Row index (for `Row`) or column index (for `Col`) within the tile.
    pub idx: u8,
}

impl LineKey {
    /// Creates a line key.
    ///
    /// # Panics
    /// Panics if `idx >= 8`.
    #[inline]
    pub fn new(tile: TileId, orient: Orientation, idx: u8) -> LineKey {
        assert!(idx < TILE_LINES as u8, "line index {idx} out of tile range");
        LineKey { tile, orient, idx }
    }

    /// The line of orientation `orient` containing `word`.
    #[inline]
    pub fn containing(word: WordAddr, orient: Orientation) -> LineKey {
        let idx = match orient {
            Orientation::Row => word.row_in_tile(),
            Orientation::Col => word.col_in_tile(),
        };
        LineKey { tile: word.tile(), orient, idx }
    }

    /// The line of the *other* orientation that intersects `self` at `word`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `word` is not covered by `self`.
    #[inline]
    pub fn intersecting_at(&self, word: WordAddr) -> LineKey {
        debug_assert!(self.contains(word));
        LineKey::containing(word, self.orient.other())
    }

    /// Whether `word` is one of the eight words of this line.
    #[inline]
    pub fn contains(&self, word: WordAddr) -> bool {
        if word.tile() != self.tile {
            return false;
        }
        match self.orient {
            Orientation::Row => word.row_in_tile() == self.idx,
            Orientation::Col => word.col_in_tile() == self.idx,
        }
    }

    /// Position of `word` within the line (`0..8`), if covered.
    #[inline]
    pub fn offset_of(&self, word: WordAddr) -> Option<u8> {
        if !self.contains(word) {
            return None;
        }
        Some(match self.orient {
            Orientation::Row => word.col_in_tile(),
            Orientation::Col => word.row_in_tile(),
        })
    }

    /// The word at position `off` within the line.
    ///
    /// # Panics
    /// Panics if `off >= 8`.
    #[inline]
    pub fn word_at(&self, off: u8) -> WordAddr {
        match self.orient {
            Orientation::Row => WordAddr::from_tile_coords(self.tile, self.idx, off),
            Orientation::Col => WordAddr::from_tile_coords(self.tile, off, self.idx),
        }
    }

    /// Iterates over the eight words covered by the line.
    pub fn words(&self) -> impl Iterator<Item = WordAddr> + '_ {
        let this = *self;
        (0..TILE_LINES as u8).map(move |off| this.word_at(off))
    }

    /// Whether two lines share at least one word.
    ///
    /// Same-orientation lines overlap only when identical; cross-orientation
    /// lines overlap exactly when they belong to the same tile.
    #[inline]
    pub fn overlaps(&self, other: &LineKey) -> bool {
        if self.tile != other.tile {
            return false;
        }
        if self.orient == other.orient {
            self.idx == other.idx
        } else {
            true
        }
    }

    /// Byte address of the line's first word (used for set indexing).
    #[inline]
    pub fn base_addr(&self) -> u64 {
        self.word_at(0).byte_addr()
    }

    /// A dense per-tile line number: rows are `0..8`, columns `8..16`.
    #[inline]
    pub fn slot_in_tile(&self) -> u8 {
        match self.orient {
            Orientation::Row => self.idx,
            Orientation::Col => TILE_LINES as u8 + self.idx,
        }
    }
}

impl std::fmt::Display for LineKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tile {} {} {}", self.tile, self.orient, self.idx)
    }
}

/// The memory-side decode of a tile id (paper Fig. 8, right half).
///
/// Channel, rank and bank bits are taken from the least-significant tile-id
/// bits to maximize parallelism; the remaining bits select the physical
/// word-line group inside the bank. A column-aligned tile is the unit of
/// interleaving, so column alignment within a tile is never disturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    /// Memory channel.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank within the rank.
    pub bank: usize,
    /// Linear tile index local to the bank.
    pub tile_in_bank: u64,
}

impl DecodedAddr {
    /// Decodes `tile` with interleaving `tile : BK : RK : CH` (LSB first).
    ///
    /// The channel/rank/bank selection XOR-folds the high tile-id bits into
    /// the low ones (permutation-based interleaving, standard in memory
    /// controllers) so that power-of-two-strided walks — e.g. a column walk
    /// down a tile grid whose width is a multiple of the bank count — still
    /// spread across banks and channels instead of serializing on one bank.
    /// When the total bank count is a power of two the fold is a bijection
    /// within each bank-parallel block, so no two tiles alias to the same
    /// physical frame.
    pub fn decode(tile: TileId, channels: usize, ranks: usize, banks: usize) -> DecodedAddr {
        let par = (channels * ranks * banks) as u64;
        let bits = 64 - (par.max(2) - 1).leading_zeros();
        let folded = tile ^ (tile >> bits) ^ (tile >> (2 * bits));
        // The paper's geometry (4 channels × 1 rank × 8 banks) is all
        // powers of two, so the div/mod chain reduces to shifts and masks
        // on the per-request path; arbitrary geometries keep the general
        // form below.
        if channels.is_power_of_two() && ranks.is_power_of_two() && banks.is_power_of_two() {
            let ch_bits = channels.trailing_zeros();
            let rk_bits = ranks.trailing_zeros();
            let bk_bits = banks.trailing_zeros();
            let rest = folded >> ch_bits;
            return DecodedAddr {
                channel: (folded & (channels as u64 - 1)) as usize,
                rank: (rest & (ranks as u64 - 1)) as usize,
                bank: ((rest >> rk_bits) & (banks as u64 - 1)) as usize,
                tile_in_bank: tile >> (ch_bits + rk_bits + bk_bits),
            };
        }
        let channel = (folded % channels as u64) as usize;
        let rest = folded / channels as u64;
        let rank = (rest % ranks as u64) as usize;
        let bank = ((rest / ranks as u64) % banks as u64) as usize;
        DecodedAddr { channel, rank, bank, tile_in_bank: tile / par }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_addr_coords_round_trip() {
        for tile in [0u64, 1, 17, 1024] {
            for r in 0..8u8 {
                for c in 0..8u8 {
                    let w = WordAddr::from_tile_coords(tile, r, c);
                    assert_eq!(w.tile(), tile);
                    assert_eq!(w.row_in_tile(), r);
                    assert_eq!(w.col_in_tile(), c);
                }
            }
        }
    }

    #[test]
    fn row_line_covers_unit_stride_words() {
        let line = LineKey::new(5, Orientation::Row, 3);
        let words: Vec<u64> = line.words().map(|w| w.byte_addr()).collect();
        let base = 5 * TILE_BYTES + 3 * LINE_BYTES;
        let expect: Vec<u64> = (0..8).map(|c| base + c * WORD_BYTES).collect();
        assert_eq!(words, expect);
    }

    #[test]
    fn col_line_covers_line_stride_words() {
        let line = LineKey::new(5, Orientation::Col, 3);
        let words: Vec<u64> = line.words().map(|w| w.byte_addr()).collect();
        let base = 5 * TILE_BYTES + 3 * WORD_BYTES;
        let expect: Vec<u64> = (0..8).map(|r| base + r * LINE_BYTES).collect();
        assert_eq!(words, expect);
    }

    #[test]
    fn cross_orientation_lines_intersect_in_one_word() {
        let row = LineKey::new(9, Orientation::Row, 2);
        let col = LineKey::new(9, Orientation::Col, 6);
        let shared: Vec<WordAddr> = row.words().filter(|w| col.contains(*w)).collect();
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0], WordAddr::from_tile_coords(9, 2, 6));
        assert!(row.overlaps(&col));
    }

    #[test]
    fn same_orientation_lines_overlap_iff_identical() {
        let a = LineKey::new(4, Orientation::Row, 1);
        let b = LineKey::new(4, Orientation::Row, 2);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&a));
        let other_tile = LineKey::new(5, Orientation::Col, 1);
        assert!(!a.overlaps(&other_tile));
    }

    #[test]
    fn containing_and_offset_agree() {
        let w = WordAddr::from_tile_coords(7, 4, 6);
        let row = LineKey::containing(w, Orientation::Row);
        assert_eq!(row, LineKey::new(7, Orientation::Row, 4));
        assert_eq!(row.offset_of(w), Some(6));
        let col = LineKey::containing(w, Orientation::Col);
        assert_eq!(col, LineKey::new(7, Orientation::Col, 6));
        assert_eq!(col.offset_of(w), Some(4));
        assert_eq!(row.intersecting_at(w), col);
    }

    #[test]
    fn decode_spreads_consecutive_tiles_over_channels() {
        let d0 = DecodedAddr::decode(0, 4, 1, 8);
        let d1 = DecodedAddr::decode(1, 4, 1, 8);
        let d4 = DecodedAddr::decode(4, 4, 1, 8);
        assert_eq!(d0.channel, 0);
        assert_eq!(d1.channel, 1);
        assert_eq!(d4.channel, 0);
        assert_eq!(d4.bank, 1);
    }

    #[test]
    fn slot_in_tile_is_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for orient in Orientation::BOTH {
            for idx in 0..8 {
                assert!(seen.insert(LineKey::new(0, orient, idx).slot_in_tile()));
            }
        }
        assert_eq!(seen.len(), 16);
        assert!(seen.iter().all(|s| *s < 16));
    }
}
