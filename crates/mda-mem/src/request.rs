//! Memory request and completion types.

use crate::addr::LineKey;
use crate::Cycle;

/// The kind of a memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Demand or prefetch fill of one line.
    Read,
    /// Writeback of one (possibly partial) line.
    Write,
}

/// One line-granular memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// The row or column line being transferred. The orientation field is
    /// the identifier the cache hierarchy passes down so the controller can
    /// steer the access to the row or the column buffer (paper Sec. VI-A).
    pub line: LineKey,
    /// Read (fill) or write (writeback).
    pub kind: RequestKind,
    /// Number of valid words transferred (sparse writebacks may move fewer
    /// than eight words; reads always move a full line).
    pub words: u8,
}

impl MemRequest {
    /// A full-line read request.
    pub fn read(line: LineKey) -> MemRequest {
        MemRequest { line, kind: RequestKind::Read, words: 8 }
    }

    /// A writeback of `words` valid words of `line`.
    ///
    /// # Panics
    /// Panics if `words` is zero or exceeds the line size.
    pub fn write(line: LineKey, words: u8) -> MemRequest {
        assert!((1..=8).contains(&words), "writeback must carry 1..=8 words");
        MemRequest { line, kind: RequestKind::Write, words }
    }

    /// Bytes moved on the memory bus by this request.
    pub fn bytes(&self) -> u64 {
        u64::from(self.words) * crate::WORD_BYTES
    }
}

/// Timing outcome of a scheduled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCompletion {
    /// Cycle at which the critical word is available to the requester
    /// (reads) or at which the write is accepted (writes are posted).
    pub done: Cycle,
    /// Cycle at which the full burst has left the channel.
    pub burst_done: Cycle,
    /// Whether the access hit in the open row/column buffer.
    pub buffer_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LineKey, Orientation};

    #[test]
    fn read_moves_full_line() {
        let r = MemRequest::read(LineKey::new(0, Orientation::Row, 0));
        assert_eq!(r.bytes(), 64);
    }

    #[test]
    fn partial_write_moves_fewer_bytes() {
        let w = MemRequest::write(LineKey::new(0, Orientation::Col, 1), 3);
        assert_eq!(w.bytes(), 24);
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn zero_word_write_rejected() {
        let _ = MemRequest::write(LineKey::new(0, Orientation::Row, 0), 0);
    }
}
