//! Structural model of the crosspoint array organization (paper Sec. III).
//!
//! The bit-level symmetry of a crosspoint array gives symmetric access to
//! *bits*, not *words*. To deliver a cache line of words in column mode, the
//! paper bit-slices each word across mats: with an interleaving interval of
//! `k` bits, bit `b` of every word in a row lands `k` cells apart, so a
//! single column operation gathers all 64 bits of the 8 words of a column
//! line into the column buffer (paper Figs. 5–6). Two *block-selector*
//! transistors per group steer the row/column mode.
//!
//! Nothing in this module affects simulated timing directly — the timing
//! model abstracts buffer operations — but it validates that the chosen
//! geometry is realizable and computes the overhead figures the paper cites
//! (two extra transistors per 16 bits; < 1 % decoder area overhead).

use crate::addr::{LINE_WORDS, TILE_LINES};

#[cfg(test)]
use crate::addr::LINE_BYTES;

/// Geometry of one crosspoint mat group implementing a tile row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrosspointGeometry {
    /// Bits per word (64 in the paper).
    pub word_bits: usize,
    /// Words per cache line (8).
    pub line_words: usize,
    /// Bit-interleaving interval: a slice of each word is placed every
    /// `interleave_bits` cells along a physical row (8 in the paper's
    /// example — "placing a red in every 8 bits").
    pub interleave_bits: usize,
    /// Cells covered by one pair of block selectors (16 in the paper's
    /// implementation: "two additional transistors per 16 bits").
    pub block_select_span: usize,
}

impl CrosspointGeometry {
    /// The paper's default organization.
    pub fn paper() -> CrosspointGeometry {
        CrosspointGeometry {
            word_bits: 64,
            line_words: LINE_WORDS,
            interleave_bits: 8,
            block_select_span: 16,
        }
    }

    /// Validates realizability of the geometry.
    ///
    /// # Errors
    /// Returns a message when the interleave does not evenly slice words or
    /// the block-selector span does not divide the physical row.
    pub fn validate(&self) -> Result<(), String> {
        if self.word_bits == 0 || self.line_words == 0 {
            return Err("word and line sizes must be non-zero".into());
        }
        if self.interleave_bits == 0 || !self.word_bits.is_multiple_of(self.interleave_bits) {
            return Err(format!(
                "interleave interval {} must evenly divide word size {}",
                self.interleave_bits, self.word_bits
            ));
        }
        if self.block_select_span == 0 || !self.physical_row_bits().is_multiple_of(self.block_select_span) {
            return Err(format!(
                "block-selector span {} must divide the physical row of {} bits",
                self.block_select_span,
                self.physical_row_bits()
            ));
        }
        Ok(())
    }

    /// Total cells along one physical array row holding one line of words.
    pub fn physical_row_bits(&self) -> usize {
        self.word_bits * self.line_words
    }

    /// Number of bit groups a row is segmented into for column gathering
    /// ("the number of the same color bits in the same row", Fig. 5).
    pub fn bit_groups(&self) -> usize {
        self.word_bits / self.interleave_bits
    }

    /// Block-selector transistors needed along one physical row (two per
    /// span: one row selector plus one column selector).
    pub fn block_selectors_per_row(&self) -> usize {
        2 * (self.physical_row_bits() / self.block_select_span)
    }

    /// Selector transistors per memory cell — the paper's area-overhead
    /// figure of merit (2/16 = 0.125 transistors per cell by default).
    pub fn selectors_per_cell(&self) -> f64 {
        2.0 / self.block_select_span as f64
    }

    /// Estimated area overhead of the duplicated column decoder relative to
    /// a conventional single-decoder array, for a square bank array of
    /// `rows` × `rows` cells. The extra decoder for `n` outputs is modelled
    /// as `n · log2(n)` gate units against `n²` cell units — the paper
    /// states the resulting overhead is "typically less than 1 %" for
    /// realistic (≥ 1 K-row) arrays.
    pub fn column_decoder_overhead(&self, rows: usize) -> f64 {
        assert!(rows > 1, "array must have at least two rows");
        let cells = (rows as f64) * (rows as f64);
        let decoder = rows as f64 * (rows as f64).log2();
        decoder / cells
    }
}

impl Default for CrosspointGeometry {
    fn default() -> CrosspointGeometry {
        CrosspointGeometry::paper()
    }
}

/// Number of mats activated to assemble one column-mode line, given the
/// geometry: one mat per bit group of each of the tile's rows.
pub fn mats_activated_for_column(geom: &CrosspointGeometry) -> usize {
    geom.bit_groups() * TILE_LINES
}

/// Row-buffer capacity in bytes implied by the geometry (one physical row).
pub fn row_buffer_bytes(geom: &CrosspointGeometry) -> u64 {
    (geom.physical_row_bits() / 8) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_is_valid() {
        let g = CrosspointGeometry::paper();
        assert_eq!(g.validate(), Ok(()));
        assert_eq!(g.physical_row_bits() as u64, LINE_BYTES * 8);
        assert_eq!(g.bit_groups(), 8);
    }

    #[test]
    fn paper_selector_overhead_matches_two_per_sixteen() {
        let g = CrosspointGeometry::paper();
        assert_eq!(g.block_selectors_per_row(), 2 * 512 / 16);
        assert!((g.selectors_per_cell() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn decoder_overhead_is_below_one_percent_for_realistic_arrays() {
        let g = CrosspointGeometry::paper();
        // A 1024-row mat group.
        assert!(g.column_decoder_overhead(1024) < 0.01);
    }

    #[test]
    fn bad_interleave_is_rejected() {
        let mut g = CrosspointGeometry::paper();
        g.interleave_bits = 7;
        assert!(g.validate().is_err());
        g.interleave_bits = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn column_gather_touches_all_bit_groups() {
        let g = CrosspointGeometry::paper();
        assert_eq!(mats_activated_for_column(&g), 64);
        assert_eq!(row_buffer_bytes(&g), 64);
    }
}
