//! Per-bank state: row buffer, column buffer, and busy-time reservation.
//!
//! Each crosspoint bank keeps **two** open buffers — one row buffer and one
//! column buffer (paper Fig. 2(b)/Fig. 3). A row-mode access hits when the
//! physical array row it needs is the one latched in the row buffer;
//! likewise for column-mode accesses and the column buffer. The two buffers
//! are independent (they latch bit-sliced data, see [`crate::crosspoint`]),
//! but the bank's sense/drive circuitry is shared, so all operations
//! serialize on the bank's `free_at` reservation.

use crate::addr::{LineKey, Orientation};
use crate::timing::MemTiming;
use crate::Cycle;

/// Identifier of a physical array row (or column) inside a bank.
///
/// A bank's array is tiled by 2-D blocks laid out on a grid that is
/// `tiles_per_array_row` blocks wide. Physical row `tile_row * 8 + r` spans
/// the `r`-th row line of every tile in that grid row; physical column
/// `tile_col * 8 + c` spans the `c`-th column line of every tile in that
/// grid column.
pub type BufferEntry = u64;

/// Classification of where an access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferOutcome {
    /// The needed physical row/column was already open.
    Hit,
    /// The bank had a different entry open in this orientation; it had to be
    /// closed (precharged) first.
    Conflict,
    /// The buffer was empty (first access or after an explicit close).
    Empty,
}

/// State of one bank.
///
/// Each orientation keeps up to `sub_buffers` concurrently open entries
/// (LRU-replaced). One per orientation is the paper's default; the
/// multi-sub-buffer variant reproduces the Gulur et al. scheme the paper
/// examined in Sec. IX-B and found to have "a less than 1 % impact" on its
/// single-threaded workloads.
#[derive(Debug, Clone)]
pub struct Bank {
    open_rows: Vec<BufferEntry>,
    open_cols: Vec<BufferEntry>,
    sub_buffers: usize,
    free_at: Cycle,
    tiles_per_array_row: u64,
    /// Bank-local tiles that suffered an uncorrectable error and were
    /// remapped to the bank's spare region. Accesses to these tiles pay a
    /// remap-table lookup. Kept small (bounded by the configured spare
    /// capacity), so a linear scan is fine.
    remapped: Vec<u64>,
}

impl Bank {
    /// Creates an idle bank whose array is `tiles_per_array_row` tiles wide,
    /// with one buffer per orientation.
    ///
    /// # Panics
    /// Panics if `tiles_per_array_row` is zero.
    pub fn new(tiles_per_array_row: u64) -> Bank {
        Bank::with_sub_buffers(tiles_per_array_row, 1)
    }

    /// Creates an idle bank with `sub_buffers` open entries per orientation.
    ///
    /// # Panics
    /// Panics if `tiles_per_array_row` or `sub_buffers` is zero.
    pub fn with_sub_buffers(tiles_per_array_row: u64, sub_buffers: usize) -> Bank {
        assert!(tiles_per_array_row > 0);
        assert!(sub_buffers > 0, "at least one buffer per orientation");
        Bank {
            open_rows: Vec::with_capacity(sub_buffers),
            open_cols: Vec::with_capacity(sub_buffers),
            sub_buffers,
            free_at: 0,
            tiles_per_array_row,
            remapped: Vec::new(),
        }
    }

    /// True when `tile_in_bank` was remapped to the spare region.
    pub fn is_remapped(&self, tile_in_bank: u64) -> bool {
        self.remapped.contains(&tile_in_bank)
    }

    /// Remaps `tile_in_bank` to the spare region after an uncorrectable
    /// error. Returns `false` when the spare capacity is exhausted (the
    /// tile keeps operating degraded). Remapping an already-remapped tile
    /// is a no-op returning `true`.
    pub fn remap(&mut self, tile_in_bank: u64, spare_capacity: u32) -> bool {
        if self.is_remapped(tile_in_bank) {
            return true;
        }
        if self.remapped.len() >= spare_capacity as usize {
            return false;
        }
        self.remapped.push(tile_in_bank);
        true
    }

    /// Number of tiles this bank has remapped so far.
    pub fn remapped_tiles(&self) -> usize {
        self.remapped.len()
    }

    /// The physical buffer entry needed to serve `line` in this bank, given
    /// the line's bank-local tile index.
    pub fn buffer_entry(&self, tile_in_bank: u64, line: &LineKey) -> BufferEntry {
        let tile_row = tile_in_bank / self.tiles_per_array_row;
        let tile_col = tile_in_bank % self.tiles_per_array_row;
        match line.orient {
            Orientation::Row => tile_row * 8 + u64::from(line.idx),
            Orientation::Col => tile_col * 8 + u64::from(line.idx),
        }
    }

    /// Cycle at which the bank can accept another operation.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Pushes the bank-busy reservation forward (used by the controller for
    /// write drains).
    pub fn reserve_until(&mut self, cycle: Cycle) {
        self.free_at = self.free_at.max(cycle);
    }

    /// The most-recently-opened entry in `orient`, if any.
    pub fn open_entry(&self, orient: Orientation) -> Option<BufferEntry> {
        self.buffers(orient).last().copied()
    }

    fn buffers(&self, orient: Orientation) -> &Vec<BufferEntry> {
        match orient {
            Orientation::Row => &self.open_rows,
            Orientation::Col => &self.open_cols,
        }
    }

    fn buffers_mut(&mut self, orient: Orientation) -> &mut Vec<BufferEntry> {
        match orient {
            Orientation::Row => &mut self.open_rows,
            Orientation::Col => &mut self.open_cols,
        }
    }

    /// Looks up `entry` among the open buffers of `orient`, classifying the
    /// access and updating recency/replacement (the buffers are kept in
    /// LRU-to-MRU order).
    fn open_buffer(&mut self, orient: Orientation, entry: BufferEntry) -> BufferOutcome {
        let cap = self.sub_buffers;
        let bufs = self.buffers_mut(orient);
        if let Some(pos) = bufs.iter().position(|e| *e == entry) {
            bufs.remove(pos);
            bufs.push(entry);
            return BufferOutcome::Hit;
        }
        if bufs.len() < cap {
            bufs.push(entry);
            BufferOutcome::Empty
        } else {
            bufs.remove(0);
            bufs.push(entry);
            BufferOutcome::Conflict
        }
    }

    /// Serves one read of `line` (bank-local tile `tile_in_bank`) arriving at
    /// `start`. Returns the classification and the cycle at which the data is
    /// in the buffer ready for bus transfer. Updates open-buffer state and
    /// the bank reservation.
    pub fn serve_read(
        &mut self,
        tile_in_bank: u64,
        line: &LineKey,
        start: Cycle,
        timing: &MemTiming,
    ) -> (BufferOutcome, Cycle) {
        let entry = self.buffer_entry(tile_in_bank, line);
        let begin = start.max(self.free_at);
        let outcome = self.open_buffer(line.orient, entry);
        let ready = begin
            + match outcome {
                BufferOutcome::Hit => timing.hit_latency(),
                BufferOutcome::Conflict => timing.conflict_latency(),
                BufferOutcome::Empty => timing.closed_latency(),
            };
        self.free_at = ready;
        (outcome, ready)
    }

    /// Serves one write of `line` arriving at `start`. Writes go through the
    /// open buffer as well, then occupy the bank for the STT array-write
    /// service time. Returns the classification and the cycle at which the
    /// bank becomes free again.
    pub fn serve_write(
        &mut self,
        tile_in_bank: u64,
        line: &LineKey,
        start: Cycle,
        timing: &MemTiming,
    ) -> (BufferOutcome, Cycle) {
        let entry = self.buffer_entry(tile_in_bank, line);
        let begin = start.max(self.free_at);
        let outcome = self.open_buffer(line.orient, entry);
        let opened = begin
            + match outcome {
                BufferOutcome::Hit => 0,
                BufferOutcome::Conflict => timing.t_rp + timing.t_rcd,
                BufferOutcome::Empty => timing.t_rcd,
            };
        let done = opened + timing.t_write;
        self.free_at = done;
        (outcome, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> MemTiming {
        MemTiming::stt()
    }

    #[test]
    fn first_access_opens_buffer() {
        let mut b = Bank::new(128);
        let line = LineKey::new(0, Orientation::Row, 3);
        let (o, ready) = b.serve_read(0, &line, 100, &t());
        assert_eq!(o, BufferOutcome::Empty);
        assert_eq!(ready, 100 + t().closed_latency());
        assert_eq!(b.open_entry(Orientation::Row), Some(3));
    }

    #[test]
    fn repeat_access_hits_buffer() {
        let mut b = Bank::new(128);
        let line = LineKey::new(0, Orientation::Row, 3);
        let (_, r1) = b.serve_read(0, &line, 0, &t());
        let (o, r2) = b.serve_read(0, &line, r1, &t());
        assert_eq!(o, BufferOutcome::Hit);
        assert_eq!(r2, r1 + t().hit_latency());
    }

    #[test]
    fn different_row_conflicts() {
        let mut b = Bank::new(128);
        b.serve_read(0, &LineKey::new(0, Orientation::Row, 3), 0, &t());
        let (o, _) = b.serve_read(0, &LineKey::new(0, Orientation::Row, 4), 1000, &t());
        assert_eq!(o, BufferOutcome::Conflict);
    }

    #[test]
    fn row_and_col_buffers_are_independent() {
        let mut b = Bank::new(128);
        b.serve_read(0, &LineKey::new(0, Orientation::Row, 3), 0, &t());
        let (o, _) = b.serve_read(0, &LineKey::new(0, Orientation::Col, 5), 1000, &t());
        // First column access: the column buffer was empty, and opening it
        // does not disturb the row buffer.
        assert_eq!(o, BufferOutcome::Empty);
        assert_eq!(b.open_entry(Orientation::Row), Some(3));
        assert_eq!(b.open_entry(Orientation::Col), Some(5));
    }

    #[test]
    fn adjacent_tiles_share_a_physical_row() {
        let b = Bank::new(128);
        // Tiles 0 and 1 sit side by side in the array: row line r of both
        // maps to the same physical row.
        let l0 = LineKey::new(0, Orientation::Row, 2);
        let l1 = LineKey::new(1, Orientation::Row, 2);
        assert_eq!(b.buffer_entry(0, &l0), b.buffer_entry(1, &l1));
        // But their column lines differ.
        let c0 = LineKey::new(0, Orientation::Col, 2);
        let c1 = LineKey::new(1, Orientation::Col, 2);
        assert_ne!(b.buffer_entry(0, &c0), b.buffer_entry(1, &c1));
    }

    #[test]
    fn vertically_adjacent_tiles_share_a_physical_column() {
        let b = Bank::new(4);
        // With 4 tiles per array row, bank-local tiles 0 and 4 are stacked
        // vertically: column line c of both maps to the same physical column.
        let c0 = LineKey::new(0, Orientation::Col, 1);
        let c4 = LineKey::new(0, Orientation::Col, 1);
        assert_eq!(b.buffer_entry(0, &c0), b.buffer_entry(4, &c4));
    }

    #[test]
    fn write_occupies_bank_for_write_service_time() {
        let mut b = Bank::new(128);
        let line = LineKey::new(0, Orientation::Row, 0);
        b.serve_read(0, &line, 0, &t());
        let free = b.free_at();
        let (o, done) = b.serve_write(0, &line, free, &t());
        assert_eq!(o, BufferOutcome::Hit);
        assert_eq!(done, free + t().t_write);
        assert_eq!(b.free_at(), done);
    }

    #[test]
    fn sub_buffers_keep_multiple_rows_open() {
        let mut b = Bank::with_sub_buffers(128, 2);
        let r3 = LineKey::new(0, Orientation::Row, 3);
        let r4 = LineKey::new(0, Orientation::Row, 4);
        b.serve_read(0, &r3, 0, &t());
        b.serve_read(0, &r4, 1000, &t());
        // With two sub-buffers, returning to row 3 still hits.
        let (o, _) = b.serve_read(0, &r3, 2000, &t());
        assert_eq!(o, BufferOutcome::Hit);
    }

    #[test]
    fn sub_buffers_replace_lru_entry() {
        let mut b = Bank::with_sub_buffers(128, 2);
        let rows: Vec<LineKey> = (3..6).map(|i| LineKey::new(0, Orientation::Row, i)).collect();
        b.serve_read(0, &rows[0], 0, &t());
        b.serve_read(0, &rows[1], 1000, &t());
        // Touch row 3 so row 4 becomes LRU, then open row 5.
        b.serve_read(0, &rows[0], 2000, &t());
        b.serve_read(0, &rows[2], 3000, &t());
        let (o3, _) = b.serve_read(0, &rows[0], 4000, &t());
        assert_eq!(o3, BufferOutcome::Hit, "row 3 survived");
        let (o4, _) = b.serve_read(0, &rows[1], 5000, &t());
        assert_eq!(o4, BufferOutcome::Conflict, "row 4 was the LRU victim");
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_sub_buffers_rejected() {
        let _ = Bank::with_sub_buffers(128, 0);
    }

    #[test]
    fn remap_honors_spare_capacity() {
        let mut b = Bank::new(128);
        assert!(!b.is_remapped(7));
        assert!(b.remap(7, 2));
        assert!(b.is_remapped(7));
        assert!(b.remap(7, 2), "re-remapping is a no-op");
        assert_eq!(b.remapped_tiles(), 1);
        assert!(b.remap(9, 2));
        assert!(!b.remap(11, 2), "spare region exhausted");
        assert_eq!(b.remapped_tiles(), 2);
    }

    #[test]
    fn busy_bank_delays_later_request() {
        let mut b = Bank::new(128);
        let line = LineKey::new(0, Orientation::Row, 0);
        let (_, r1) = b.serve_read(0, &line, 0, &t());
        // Request arriving "in the past" still starts only once free.
        let (_, r2) = b.serve_read(0, &line, 0, &t());
        assert_eq!(r2, r1 + t().hit_latency());
    }
}
