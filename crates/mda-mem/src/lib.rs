//! # mda-mem — Multi-Dimensional-Access main memory model
//!
//! This crate models the *MDA main memory* of the MDACache paper (MICRO
//! 2018): a crosspoint non-volatile memory (STT-MRAM class) whose arrays can
//! transfer a cache-line-sized chunk of data along **either the row or the
//! column axis** of an 8×8-word tile at near-symmetric cost.
//!
//! The model is *latency-forwarding*: instead of a full discrete-event
//! engine, every resource (bank, channel bus) tracks the cycle at which it
//! next becomes free, and each request is scheduled against those
//! reservations. This captures row/column-buffer locality, bank and channel
//! contention, burst bandwidth and write-queue drain pressure, which are the
//! effects the paper's evaluation depends on.
//!
//! The crate also hosts the **shared geometry vocabulary** used by the whole
//! workspace: [`Orientation`], [`WordAddr`], [`LineKey`], and the tile
//! constants of the paper's Fig. 8 address decode.
//!
//! ```
//! use mda_mem::{MainMemory, MemConfig, Orientation, LineKey, WordAddr};
//!
//! let mut mem = MainMemory::new(MemConfig::default());
//! // Fetch a column line of tile 3: one access where a conventional memory
//! // would need eight row activations.
//! let line = LineKey::new(3, Orientation::Col, 5);
//! let read = mem.read(line, 0);
//! assert!(read.done > 0);
//! assert_eq!(mem.stats().reads, 1);
//! ```

pub mod addr;
pub mod bank;
pub mod channel;
pub mod config;
pub mod controller;
pub mod crosspoint;
pub mod error;
pub mod faults;
pub mod request;
pub mod stats;
pub mod timing;

pub use addr::{
    DecodedAddr, LineKey, Orientation, TileId, WordAddr, LINE_BYTES, LINE_WORDS, TILE_BYTES,
    TILE_LINES, WORD_BYTES,
};
pub use config::MemConfig;
pub use controller::MainMemory;
pub use error::ConfigError;
pub use faults::{FaultConfig, FaultRates};
pub use request::{MemCompletion, MemRequest, RequestKind};
pub use stats::MemStats;
pub use timing::MemTiming;

/// Simulation time, expressed in CPU cycles (the paper models a 3 GHz core).
pub type Cycle = u64;
