//! Property tests for the MDA main-memory model.

use mda_mem::{DecodedAddr, FaultConfig, LineKey, MainMemory, MemConfig, MemRequest, Orientation};
use proptest::prelude::*;
use std::collections::HashSet;

fn line_strategy(tiles: u64) -> impl Strategy<Value = LineKey> {
    (0..tiles, 0u8..8, any::<bool>()).prop_map(|(t, idx, col)| {
        LineKey::new(t, if col { Orientation::Col } else { Orientation::Row }, idx)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Completions never travel back in time and always include the
    /// controller latency; the full burst never beats the critical word.
    #[test]
    fn completions_are_causal(
        lines in proptest::collection::vec(line_strategy(4096), 1..64),
    ) {
        let mut mem = MainMemory::new(MemConfig::paper());
        let mut now = 0u64;
        for line in lines {
            let c = mem.read(line, now);
            prop_assert!(c.done > now + mem.config().timing.controller_latency);
            prop_assert!(c.burst_done >= c.done - mem.config().timing.crit_word);
            now += 7; // arbitrary forward progress
        }
    }

    /// The tile decode is injective: no two tiles share (channel, rank,
    /// bank, tile_in_bank) when the total bank count is a power of two.
    #[test]
    fn decode_is_injective(offset in 0u64..100_000) {
        let cfg = MemConfig::paper();
        let mut seen = HashSet::new();
        for t in offset..offset + 512 {
            let d = DecodedAddr::decode(t, cfg.channels, cfg.ranks, cfg.banks);
            prop_assert!(d.channel < cfg.channels);
            prop_assert!(d.rank < cfg.ranks);
            prop_assert!(d.bank < cfg.banks);
            prop_assert!(
                seen.insert((d.channel, d.rank, d.bank, d.tile_in_bank)),
                "tile {t} aliases another tile"
            );
        }
    }

    /// Strided tile walks spread over more than one bank (the XOR fold at
    /// work) for every power-of-two stride that used to serialize.
    #[test]
    fn strided_walks_spread_over_banks(stride_log in 2u32..8) {
        let cfg = MemConfig::paper();
        let stride = 1u64 << stride_log;
        let banks: HashSet<(usize, usize)> = (0..64)
            .map(|k| {
                let d = DecodedAddr::decode(k * stride, cfg.channels, cfg.ranks, cfg.banks);
                (d.channel, d.bank)
            })
            .collect();
        prop_assert!(banks.len() >= 4, "stride {stride} uses only {} banks", banks.len());
    }

    /// Statistics exactly reflect the requests issued.
    #[test]
    fn stats_conservation(
        reads in proptest::collection::vec(line_strategy(64), 0..40),
        writes in proptest::collection::vec((line_strategy(64), 1u8..9), 0..40),
    ) {
        let mut mem = MainMemory::new(MemConfig::paper());
        for (i, line) in reads.iter().enumerate() {
            mem.read(*line, i as u64 * 10);
        }
        let mut expect_wbytes = 0;
        for (i, (line, words)) in writes.iter().enumerate() {
            mem.access(MemRequest::write(*line, *words), i as u64 * 10);
            expect_wbytes += u64::from(*words) * 8;
        }
        let s = mem.stats();
        prop_assert_eq!(s.reads, reads.len() as u64);
        prop_assert_eq!(s.writes, writes.len() as u64);
        prop_assert_eq!(s.bytes_read, reads.len() as u64 * 64);
        prop_assert_eq!(s.bytes_written, expect_wbytes);
        prop_assert_eq!(s.row_reads + s.col_reads, s.reads);
        prop_assert!(s.buffer_hits + s.buffer_conflicts <= s.reads);
    }

    /// Reading the same line twice back-to-back is never slower the second
    /// time (open-page locality).
    #[test]
    fn repeat_reads_exploit_open_buffers(line in line_strategy(256)) {
        let mut mem = MainMemory::new(MemConfig::paper());
        let first = mem.read(line, 0);
        let lat1 = first.done;
        let second = mem.read(line, first.burst_done);
        let lat2 = second.done - first.burst_done;
        prop_assert!(lat2 <= lat1);
        prop_assert!(second.buffer_hit);
    }

    /// A fault model with every rate at zero is indistinguishable from no
    /// fault model at all, whatever its seed: identical completion times
    /// and identical statistics for any request mix.
    #[test]
    fn zero_fault_rates_change_nothing(
        seed in any::<u64>(),
        ops in proptest::collection::vec((line_strategy(512), 1u8..9, any::<bool>()), 1..48),
    ) {
        let mut plain = MainMemory::new(MemConfig::paper());
        let mut gated = MainMemory::new(
            MemConfig::paper().with_faults(FaultConfig::uniform(seed, 0.0, 0.0, 0.0)),
        );
        let mut now = 0u64;
        for (line, words, is_write) in ops {
            let req = if is_write {
                MemRequest::write(line, words)
            } else {
                MemRequest::read(line)
            };
            let a = plain.access(req, now);
            let b = gated.access(req, now);
            prop_assert_eq!(a.done, b.done);
            prop_assert_eq!(a.burst_done, b.burst_done);
            now += 5;
        }
        prop_assert_eq!(plain.stats(), gated.stats());
        prop_assert!(!gated.stats().reliability_active());
    }

    /// The fault model is a pure function of its seed and the access
    /// stream: two memories configured identically observe the identical
    /// fault sequence (the invariant behind worker-count-independent
    /// reliability tables).
    #[test]
    fn identical_seeds_reproduce_identical_fault_sequences(
        seed in any::<u64>(),
        ops in proptest::collection::vec((line_strategy(128), 1u8..9, any::<bool>()), 1..48),
    ) {
        let cfg =
            MemConfig::paper().with_faults(FaultConfig::uniform(seed, 0.05, 0.01, 0.005));
        let mut a = MainMemory::new(cfg);
        let mut b = MainMemory::new(cfg);
        let mut now = 0u64;
        for (line, words, is_write) in ops {
            let req = if is_write {
                MemRequest::write(line, words)
            } else {
                MemRequest::read(line)
            };
            let ca = a.access(req, now);
            let cb = b.access(req, now);
            prop_assert_eq!(ca.done, cb.done);
            now += 11;
        }
        prop_assert_eq!(a.stats(), b.stats());
    }
}
