//! Profiling-based direction extraction (paper Sec. V, last paragraph).
//!
//! When a data reference has no statically decidable row/column preference,
//! the paper falls back to profiling: run the program once, watch each
//! static instruction's address deltas, and annotate the instruction with
//! the dominant direction. This module implements that profiler on top of
//! the trace generator: it replays a (typically small) input, classifies
//! every scalar access's delta as row-like (word stride within a tile row)
//! or column-like (line stride within a tile column), and reports the
//! majority direction per stream.

use crate::ir::Program;
use crate::trace::{TraceOp, TraceSource};
use crate::vectorize::CodegenOptions;
use mda_mem::{Orientation, WordAddr, LINE_BYTES, WORD_BYTES};
use std::collections::HashMap;

/// Per-stream profile counters.
#[derive(Debug, Clone, Copy, Default)]
struct StreamProfile {
    row_like: u64,
    col_like: u64,
    last: Option<WordAddr>,
}

/// The direction profile of a program: per static instruction, the observed
/// row-like and column-like delta counts.
#[derive(Debug, Clone, Default)]
pub struct DirectionProfile {
    streams: HashMap<u32, StreamProfile>,
}

impl DirectionProfile {
    /// Profiles `src` by replaying it under `opts`.
    pub fn collect(src: &dyn TraceSource, opts: &CodegenOptions) -> DirectionProfile {
        let mut profile = DirectionProfile::default();
        src.generate(opts, &mut |op| {
            if let TraceOp::Mem(m) = op {
                let entry = profile.streams.entry(m.stream).or_default();
                if let Some(prev) = entry.last {
                    let delta = m.word.byte_addr() as i64 - prev.byte_addr() as i64;
                    if delta.unsigned_abs() == WORD_BYTES {
                        entry.row_like += 1;
                    } else if delta.unsigned_abs() == LINE_BYTES {
                        entry.col_like += 1;
                    }
                }
                entry.last = Some(m.word);
            }
        });
        profile
    }

    /// The dominant direction suggested for `stream`, or `None` when the
    /// profile saw no classifiable deltas (e.g. random access).
    pub fn suggestion(&self, stream: u32) -> Option<Orientation> {
        let s = self.streams.get(&stream)?;
        match s.row_like.cmp(&s.col_like) {
            std::cmp::Ordering::Greater => Some(Orientation::Row),
            std::cmp::Ordering::Less => Some(Orientation::Col),
            std::cmp::Ordering::Equal => (s.row_like > 0).then_some(Orientation::Row),
        }
    }

    /// Number of profiled streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether no stream was observed.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }
}

/// Rebuilds `program` with profiling hints attached to every reference
/// whose direction the static analysis cannot decide (both subscripts move
/// with the innermost index). References with a clear static direction are
/// left untouched — the profile never overrides the compiler.
pub fn annotate(program: &Program, profile: &DirectionProfile) -> Program {
    let mut out = Program::new(program.name().to_string());
    for decl in program.arrays() {
        out.array(decl.name.clone(), decl.rows, decl.cols);
    }
    for nest in program.nests() {
        let innermost = nest.innermost();
        let mut nest = nest.clone();
        for r in &mut nest.refs {
            let ambiguous =
                r.row.coeff_of(innermost) != 0 && r.col.coeff_of(innermost) != 0;
            if ambiguous {
                if let Some(orient) = profile.suggestion(r.stream) {
                    r.hint = Some(orient);
                }
            }
        }
        // add_nest reassigns stream ids; order is preserved, so they keep
        // their original values.
        out.add_nest(nest);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::ir::{ArrayRef, Loop, LoopNest, Program};
    use crate::layout::LayoutKind;

    /// Scalar-only codegen so the profiler sees raw element deltas.
    fn scalar_opts() -> CodegenOptions {
        CodegenOptions {
            layout: LayoutKind::Tiled2D,
            vectorize_rows: false,
            vectorize_cols: false,
            loop_overhead: 0,
        }
    }

    #[test]
    fn profiler_recovers_row_and_column_walks() {
        let mut p = Program::new("t");
        let a = p.array("A", 16, 16);
        // Row walk (stream 0) and column walk (stream 1).
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, 16), Loop::constant(0, 16)],
            refs: vec![
                ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1)),
                ArrayRef::read(a, AffineExpr::var(1), AffineExpr::var(0)),
            ],
            flops_per_iter: 0,
        });
        let profile = DirectionProfile::collect(&p, &scalar_opts());
        assert_eq!(profile.suggestion(0), Some(Orientation::Row));
        assert_eq!(profile.suggestion(1), Some(Orientation::Col));
        assert_eq!(profile.len(), 2);
    }

    #[test]
    fn unknown_stream_has_no_suggestion() {
        let profile = DirectionProfile::default();
        assert!(profile.is_empty());
        assert_eq!(profile.suggestion(7), None);
    }

    #[test]
    fn annotate_hints_only_ambiguous_refs() {
        use crate::ir::{ArrayRef, Loop, LoopNest};
        let mut p = Program::new("amb");
        let a = p.array("A", 32, 32);
        // Ref 0: statically row-wise. Ref 1: A[i+j][2i] — both subscripts
        // move with i (innermost), statically ambiguous.
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, 16), Loop::constant(0, 16)],
            refs: vec![
                ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1)),
                ArrayRef::read(
                    a,
                    AffineExpr::var(0).add(&AffineExpr::var(1)),
                    AffineExpr::scaled_var(1, 2),
                ),
            ],
            flops_per_iter: 0,
        });
        // Hand the profiler a synthetic suggestion for stream 1.
        let mut profile = DirectionProfile::default();
        profile.streams.insert(1, StreamProfile { row_like: 10, col_like: 0, last: None });
        let annotated = annotate(&p, &profile);
        let refs = &annotated.nests()[0].refs;
        assert_eq!(refs[0].hint, None, "clear static direction is never overridden");
        assert_eq!(refs[1].hint, Some(Orientation::Row));
        // The analysis now classifies the ambiguous ref per the hint.
        let a1 = crate::analysis::analyze_ref(&refs[1], 1);
        assert_eq!(a1.direction, crate::analysis::Direction::Row);
        assert!(!a1.unit_stride, "hints never enable vectorization");
    }

    #[test]
    fn diagonal_walk_yields_no_false_confidence() {
        let mut p = Program::new("diag");
        let a = p.array("A", 16, 16);
        // A[i][i]: deltas are neither word- nor line-sized inside a tile.
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, 16)],
            refs: vec![ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(0))],
            flops_per_iter: 0,
        });
        let profile = DirectionProfile::collect(&p, &scalar_opts());
        assert_eq!(profile.suggestion(0), None);
    }
}
