//! Iteration-space tiling (Lam/Rothberg/Wolf-style loop blocking) — the
//! hardware/software-collaborative optimization the paper names as future
//! work: "the compiler can tile a loop nest such that the tile size (in
//! each dimension) matches the 2-D block size used by the 2P2L cache"
//! (paper Sec. X).
//!
//! [`tile`] rewrites a perfect nest so that selected loops iterate over
//! fixed-size blocks: each tiled loop `v in lo..hi` becomes an outer
//! tile-index loop plus an intra-tile loop of `size` iterations, and every
//! subscript/bound is renumbered accordingly. Choosing `size = 8` aligns
//! the traversal with the 8×8-word MDA blocks.

use crate::expr::{AffineExpr, VarId};
use crate::ir::{Loop, LoopNest, Program};

/// Why a nest could not be tiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileError {
    /// The named variable does not exist in the nest.
    NoSuchLoop(VarId),
    /// The tiled loop's bounds reference outer variables (e.g. a
    /// triangular loop), which plain rectangular tiling cannot express in
    /// this affine IR.
    NonRectangular(VarId),
    /// The loop's trip count is not a multiple of the tile size (remainder
    /// tiles are not generated).
    Indivisible {
        /// Offending variable.
        var: VarId,
        /// Its trip count.
        trip: i64,
        /// The requested tile size.
        size: i64,
    },
    /// A non-positive tile size was requested.
    BadSize(i64),
}

impl std::fmt::Display for TileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TileError::NoSuchLoop(v) => write!(f, "loop variable v{v} does not exist"),
            TileError::NonRectangular(v) => {
                write!(f, "loop v{v} has outer-variable-dependent bounds")
            }
            TileError::Indivisible { var, trip, size } => {
                write!(f, "trip count {trip} of v{var} is not a multiple of tile size {size}")
            }
            TileError::BadSize(s) => write!(f, "tile size {s} must be positive"),
        }
    }
}

impl std::error::Error for TileError {}

/// Tiles `nest` on the `(variable, tile_size)` pairs in `spec`.
///
/// The transformed nest orders all tile-index loops first (in the original
/// relative order of their variables), followed by every original loop;
/// tiled loops' bounds become `[size·v_t, size·v_t + size)`.
///
/// # Errors
/// See [`TileError`]. Only rectangular (constant-bound) loops with
/// divisible trip counts can be tiled.
pub fn tile(nest: &LoopNest, spec: &[(VarId, i64)]) -> Result<LoopNest, TileError> {
    let depth = nest.depth();
    for &(v, size) in spec {
        if size <= 0 {
            return Err(TileError::BadSize(size));
        }
        if v >= depth {
            return Err(TileError::NoSuchLoop(v));
        }
        let l = &nest.loops[v];
        if !l.lo.uses_only_outer(0) || !l.hi.uses_only_outer(0) {
            return Err(TileError::NonRectangular(v));
        }
        let trip = l.hi.constant_term() - l.lo.constant_term();
        if trip % size != 0 {
            return Err(TileError::Indivisible { var: v, trip, size });
        }
    }

    let tiled: Vec<(VarId, i64)> = {
        let mut s = spec.to_vec();
        s.sort_by_key(|(v, _)| *v);
        s
    };
    let num_tile_loops = tiled.len();
    // Original variable v lives at position num_tile_loops + v in the new
    // nest; tile loop for the i-th tiled variable lives at position i.
    let remap = |v: VarId| num_tile_loops + v;

    let mut loops = Vec::with_capacity(depth + num_tile_loops);
    // Tile-index loops.
    for (i, &(v, size)) in tiled.iter().enumerate() {
        let l = &nest.loops[v];
        let trip = l.hi.constant_term() - l.lo.constant_term();
        let _ = i;
        loops.push(Loop::constant(0, trip / size));
    }
    // Intra loops (every original loop, renumbered; tiled ones re-bounded).
    for (v, l) in nest.loops.iter().enumerate() {
        if let Some(pos) = tiled.iter().position(|(tv, _)| *tv == v) {
            let (_, size) = tiled[pos];
            let base = AffineExpr::scaled_var(pos, size).plus(l.lo.constant_term());
            loops.push(Loop::new(base.clone(), base.plus(size)));
        } else {
            loops.push(Loop::new(l.lo.remap_vars(remap), l.hi.remap_vars(remap)));
        }
    }

    let refs = nest
        .refs
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.row = r.row.remap_vars(remap);
            r.col = r.col.remap_vars(remap);
            r
        })
        .collect();

    Ok(LoopNest { loops, refs, flops_per_iter: nest.flops_per_iter })
}

/// Applies [`tile`] to every nest of `program` for which `spec_for` returns
/// a tiling spec, rebuilding the program (stream ids are reassigned in
/// order, so trace statistics remain comparable).
///
/// # Errors
/// Propagates the first [`TileError`].
pub fn tile_program(
    program: &Program,
    mut spec_for: impl FnMut(usize, &LoopNest) -> Option<Vec<(VarId, i64)>>,
) -> Result<Program, TileError> {
    let mut out = Program::new(format!("{}_tiled", program.name()));
    for decl in program.arrays() {
        out.array(decl.name.clone(), decl.rows, decl.cols);
    }
    for (i, nest) in program.nests().iter().enumerate() {
        let new_nest = match spec_for(i, nest) {
            Some(spec) => tile(nest, &spec)?,
            None => nest.clone(),
        };
        out.add_nest(new_nest);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ArrayRef;
    use crate::trace::{count_ops, TraceOp, TraceSource};
    use crate::vectorize::CodegenOptions;
    use std::collections::HashSet;

    fn walk(n: i64) -> (Program, LoopNest) {
        let mut p = Program::new("t");
        let a = p.array("A", n as u64, n as u64);
        let nest = LoopNest {
            loops: vec![Loop::constant(0, n), Loop::constant(0, n)],
            refs: vec![ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1))],
            flops_per_iter: 1,
        };
        p.add_nest(nest.clone());
        (p, nest)
    }

    #[test]
    fn tiled_nest_has_expected_shape() {
        let (_, nest) = walk(32);
        let t = tile(&nest, &[(0, 8), (1, 8)]).expect("tiles");
        assert_eq!(t.depth(), 4);
        // Tile loops iterate over 4 blocks each.
        assert_eq!(t.loops[0].hi.constant_term(), 4);
        assert_eq!(t.loops[1].hi.constant_term(), 4);
        // Intra loop for v0 runs [8·t0, 8·t0 + 8).
        assert_eq!(t.loops[2].lo.coeff_of(0), 8);
        assert_eq!(t.loops[2].hi.coeff_of(0), 8);
        assert_eq!(t.loops[2].hi.constant_term() - t.loops[2].lo.constant_term(), 8);
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn tiling_preserves_the_footprint_and_volume() {
        let (p, nest) = walk(32);
        let tiled = tile_program(&p, |_, _| Some(vec![(0, 8), (1, 8)])).expect("tiles");
        let _ = nest;
        let opts = CodegenOptions::mda();
        let base = count_ops(&p, &opts);
        let blocked = count_ops(&tiled, &opts);
        assert_eq!(base.bytes, blocked.bytes, "same data volume");

        let words = |prog: &Program| {
            let mut s = HashSet::new();
            prog.generate(&opts, &mut |op| {
                if let TraceOp::Mem(m) = op {
                    if m.vector {
                        s.extend(
                            mda_mem::LineKey::containing(m.word, m.orient)
                                .words()
                                .map(|w| w.0),
                        );
                    } else {
                        s.insert(m.word.0);
                    }
                }
            });
            s
        };
        assert_eq!(words(&p), words(&tiled), "same footprint");
    }

    #[test]
    fn triangular_loops_are_rejected() {
        let mut p = Program::new("tri");
        let a = p.array("A", 16, 16);
        let nest = LoopNest {
            loops: vec![
                Loop::constant(0, 16),
                Loop::new(AffineExpr::var(0), AffineExpr::constant(16)),
            ],
            refs: vec![ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1))],
            flops_per_iter: 0,
        };
        assert_eq!(tile(&nest, &[(1, 8)]), Err(TileError::NonRectangular(1)));
        // Tiling the rectangular outer loop alone is fine.
        assert!(tile(&nest, &[(0, 8)]).is_ok());
    }

    #[test]
    fn indivisible_trip_counts_are_rejected() {
        let (_, nest) = walk(20);
        assert_eq!(
            tile(&nest, &[(0, 8)]),
            Err(TileError::Indivisible { var: 0, trip: 20, size: 8 })
        );
        assert_eq!(tile(&nest, &[(0, 0)]), Err(TileError::BadSize(0)));
        assert_eq!(tile(&nest, &[(7, 8)]), Err(TileError::NoSuchLoop(7)));
    }

    #[test]
    fn tiled_walk_improves_block_locality() {
        // A column-then-row mixed walk revisits each 8×8 block twice; after
        // tiling, the two visits to a block are adjacent in time. Count
        // distinct tiles touched within a sliding window as a locality
        // proxy: the tiled version's transitions between tiles are fewer.
        let mut p = Program::new("mix");
        let a = p.array("A", 32, 32);
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, 32), Loop::constant(0, 32)],
            refs: vec![
                ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1)),
                ArrayRef::read(a, AffineExpr::var(1), AffineExpr::var(0)),
            ],
            flops_per_iter: 1,
        });
        let tiled = tile_program(&p, |_, _| Some(vec![(0, 8), (1, 8)])).expect("tiles");

        let tile_switches = |prog: &Program| {
            let mut last = u64::MAX;
            let mut switches = 0u64;
            prog.generate(&CodegenOptions::mda(), &mut |op| {
                if let TraceOp::Mem(m) = op {
                    let t = m.word.tile();
                    if t != last {
                        switches += 1;
                        last = t;
                    }
                }
            });
            switches
        };
        assert!(
            tile_switches(&tiled) < tile_switches(&p),
            "blocking should reduce tile transitions"
        );
    }
}
