//! Lowering a [`Program`] to the annotated memory-operation stream of the
//! MDA ISA (paper Sec. IV-B-a: every scalar or SIMD memory operation has a
//! row- and a column-preference variant).
//!
//! Generation is *streaming*: ops are pushed into a caller-provided sink so
//! that traces of hundreds of millions of operations never materialize in
//! memory. Loop-invariant references are register-promoted around the
//! innermost loop (reads before it, writes after it); vectorized nests emit
//! one line-wide memory operation per reference per eight iterations, with
//! scalar pro-/epilogues wherever a chunk is not line-aligned (triangular
//! bounds, unaligned lower bounds, negative strides).

use crate::analysis::Direction;
use crate::ir::{ArrayRef, LoopNest, Program, RefKind};
use crate::layout::Layout;
use crate::vectorize::{plan_nest, CodegenOptions, NestPlan};
use mda_mem::{LineKey, Orientation, WordAddr, LINE_WORDS};

/// One memory micro-operation with its MDA annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// First (or only) word accessed. Vector ops address offset 0 of their
    /// line.
    pub word: WordAddr,
    /// Compiler-assigned preference bit.
    pub orient: Orientation,
    /// Whether this is a line-wide SIMD operation.
    pub vector: bool,
    /// Whether this operation stores.
    pub write: bool,
    /// Static-instruction id (PC analog).
    pub stream: u32,
}

impl MemOp {
    /// Bytes moved by the operation.
    pub fn bytes(&self) -> u64 {
        if self.vector {
            mda_mem::LINE_BYTES
        } else {
            mda_mem::WORD_BYTES
        }
    }
}

/// One element of the executed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A memory operation.
    Mem(MemOp),
    /// `n` non-memory micro-ops (ALU work and loop control).
    Compute(u32),
}

/// Anything that can produce a trace for a given code-generation target:
/// compiled [`Program`]s, and the hand-rolled HTAP generators in
/// `mda-workloads`.
pub trait TraceSource {
    /// Workload name (for reports).
    fn name(&self) -> &str;

    /// Streams the trace into `sink`.
    fn generate(&self, opts: &CodegenOptions, sink: &mut dyn FnMut(TraceOp));

    /// Padded data footprint under the target layout, in bytes.
    fn footprint_bytes(&self, opts: &CodegenOptions) -> u64;
}

impl TraceSource for Program {
    fn name(&self) -> &str {
        Program::name(self)
    }

    fn generate(&self, opts: &CodegenOptions, sink: &mut dyn FnMut(TraceOp)) {
        let layout = Layout::plan(self, opts.layout);
        for nest in self.nests() {
            let plan = plan_nest(nest, opts);
            let mut walker = Walker {
                nest,
                plan: &plan,
                layout: &layout,
                opts,
                sink,
                idx: vec![0; nest.depth()],
            };
            walker.walk(0);
        }
    }

    fn footprint_bytes(&self, opts: &CodegenOptions) -> u64 {
        Layout::plan(self, opts.layout).total_bytes()
    }
}

/// The effective direction of a reference: its direction with respect to
/// the deepest loop variable that actually moves it (used for invariant
/// references, whose preference comes from the loop level that sweeps
/// them).
fn effective_direction(r: &ArrayRef, depth: usize) -> Direction {
    for v in (0..depth).rev() {
        let row_c = r.row.coeff_of(v);
        let col_c = r.col.coeff_of(v);
        match (row_c, col_c) {
            (0, 0) => continue,
            (0, _) => return Direction::Row,
            (_, 0) => return Direction::Col,
            (_, _) => return Direction::Col,
        }
    }
    Direction::Row
}

struct Walker<'a> {
    nest: &'a LoopNest,
    plan: &'a NestPlan,
    layout: &'a Layout,
    opts: &'a CodegenOptions,
    sink: &'a mut dyn FnMut(TraceOp),
    idx: Vec<i64>,
}

impl Walker<'_> {
    fn walk(&mut self, depth: usize) {
        let innermost = self.nest.innermost();
        let lo = self.nest.loops[depth].lo.eval(&self.idx);
        let hi = self.nest.loops[depth].hi.eval(&self.idx);
        if depth == innermost {
            self.emit_innermost(lo, hi);
            return;
        }
        for v in lo..hi {
            self.idx[depth] = v;
            self.walk(depth + 1);
        }
    }

    fn addr_of(&self, r: &ArrayRef) -> WordAddr {
        let i = r.row.eval(&self.idx);
        let j = r.col.eval(&self.idx);
        debug_assert!(i >= 0 && j >= 0, "negative subscript");
        self.layout.of(r.array).addr(i as u64, j as u64)
    }

    fn emit_scalar(&mut self, r: &ArrayRef, dir: Direction) {
        let op = MemOp {
            word: self.addr_of(r),
            orient: dir.orientation(),
            vector: false,
            write: r.is_write(),
            stream: r.stream,
        };
        (self.sink)(TraceOp::Mem(op));
    }

    fn emit_invariants(&mut self, kind: RefKind) {
        let depth = self.nest.depth();
        for (r, a) in self.nest.refs.iter().zip(&self.plan.refs) {
            if a.direction == Direction::Invariant && r.kind == kind {
                let dir = effective_direction(r, depth);
                self.emit_scalar(r, dir);
            }
        }
    }

    /// The lines touched by the eight words of `r` across iterations
    /// `[v, v+8)`: one when the chunk is line-aligned, two when an
    /// unaligned SIMD access straddles a line boundary.
    fn vector_lines(&mut self, r: &ArrayRef, dir: Direction, v: i64) -> (LineKey, Option<LineKey>) {
        let innermost = self.nest.innermost();
        self.idx[innermost] = v;
        let w0 = self.addr_of(r);
        self.idx[innermost] = v + LINE_WORDS as i64 - 1;
        let w7 = self.addr_of(r);
        let orient = dir.orientation();
        let first = LineKey::containing(w0, orient);
        if first.contains(w7) {
            (first, None)
        } else {
            (first, Some(LineKey::containing(w7, orient)))
        }
    }

    /// Scalar iterations to peel so the first non-invariant reference's
    /// chunk covers exactly one line — for ascending *or* descending unit
    /// strides (0 when already aligned or undecidable).
    fn peel_for_alignment(&mut self, lo: i64, hi: i64) -> i64 {
        let lead = self
            .plan
            .refs
            .iter()
            .position(|a| a.direction != Direction::Invariant);
        let Some(ri) = lead else { return 0 };
        let (r, dir) = (self.nest.refs[ri].clone(), self.plan.refs[ri].direction);
        for peel in 0..LINE_WORDS as i64 {
            if lo + peel + LINE_WORDS as i64 > hi {
                break;
            }
            let (_, straddle) = self.vector_lines(&r, dir, lo + peel);
            if straddle.is_none() {
                return peel;
            }
        }
        0
    }

    fn emit_innermost(&mut self, lo: i64, hi: i64) {
        if hi <= lo {
            return;
        }
        let innermost = self.nest.innermost();
        let flops = self.nest.flops_per_iter;
        let overhead = self.opts.loop_overhead;

        self.emit_invariants(RefKind::Read);

        let peel = if self.plan.vectorized { self.peel_for_alignment(lo, hi) } else { 0 };
        let mut v = lo;
        while v < hi {
            let vectorize =
                self.plan.vectorized && v >= lo + peel && v + LINE_WORDS as i64 <= hi;
            if vectorize {
                for ri in 0..self.nest.refs.len() {
                    let a = self.plan.refs[ri];
                    if a.direction == Direction::Invariant {
                        continue;
                    }
                    let r = self.nest.refs[ri].clone();
                    let (first, second) = self.vector_lines(&r, a.direction, v);
                    if r.is_write() && second.is_some() {
                        // A straddling vector store would dirty two full
                        // lines; emit the masked store as scalars instead.
                        for lane in 0..LINE_WORDS as i64 {
                            self.idx[innermost] = v + lane;
                            self.emit_scalar(&r, a.direction);
                        }
                    } else {
                        for line in std::iter::once(first).chain(second) {
                            let op = MemOp {
                                word: line.word_at(0),
                                orient: line.orient,
                                vector: true,
                                write: r.is_write(),
                                stream: r.stream,
                            };
                            (self.sink)(TraceOp::Mem(op));
                        }
                    }
                }
                if flops + overhead > 0 {
                    (self.sink)(TraceOp::Compute(flops + overhead));
                }
                v += LINE_WORDS as i64;
            } else {
                self.idx[innermost] = v;
                for (ri, a) in self.plan.refs.iter().enumerate() {
                    if a.direction == Direction::Invariant {
                        continue;
                    }
                    let r = self.nest.refs[ri].clone();
                    self.emit_scalar(&r, a.direction);
                }
                if flops + overhead > 0 {
                    (self.sink)(TraceOp::Compute(flops + overhead));
                }
                v += 1;
            }
        }

        self.emit_invariants(RefKind::Write);
    }
}

/// Aggregate operation counts of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Memory micro-ops.
    pub mem_ops: u64,
    /// Vector memory micro-ops (subset of `mem_ops`).
    pub vector_mem_ops: u64,
    /// Non-memory micro-ops.
    pub compute_uops: u64,
    /// Bytes touched by memory ops (8 per scalar, 64 per vector).
    pub bytes: u64,
}

/// Runs generation just to count operations.
pub fn count_ops(src: &dyn TraceSource, opts: &CodegenOptions) -> OpCounts {
    let mut c = OpCounts::default();
    src.generate(opts, &mut |op| match op {
        TraceOp::Mem(m) => {
            c.mem_ops += 1;
            c.bytes += m.bytes();
            if m.vector {
                c.vector_mem_ops += 1;
            }
        }
        TraceOp::Compute(n) => c.compute_uops += u64::from(n),
    });
    c
}

/// Access-type distribution by data volume — the quantity plotted in the
/// paper's Fig. 10 (row/column × scalar/vector).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessMix {
    /// Bytes moved by row-preference scalar ops.
    pub row_scalar: u64,
    /// Bytes moved by row-preference vector ops.
    pub row_vector: u64,
    /// Bytes moved by column-preference scalar ops.
    pub col_scalar: u64,
    /// Bytes moved by column-preference vector ops.
    pub col_vector: u64,
}

impl AccessMix {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.row_scalar + self.row_vector + self.col_scalar + self.col_vector
    }

    /// `(row_scalar, row_vector, col_scalar, col_vector)` as fractions of
    /// the total volume.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.row_scalar as f64 / t,
            self.row_vector as f64 / t,
            self.col_scalar as f64 / t,
            self.col_vector as f64 / t,
        )
    }

    /// Fraction of volume accessed with column preference.
    pub fn col_fraction(&self) -> f64 {
        let (_, _, cs, cv) = self.fractions();
        cs + cv
    }
}

/// Computes the Fig. 10 access mix of `src` under `opts`.
pub fn access_mix(src: &dyn TraceSource, opts: &CodegenOptions) -> AccessMix {
    let mut mix = AccessMix::default();
    src.generate(opts, &mut |op| {
        if let TraceOp::Mem(m) = op {
            let slot = match (m.orient, m.vector) {
                (Orientation::Row, false) => &mut mix.row_scalar,
                (Orientation::Row, true) => &mut mix.row_vector,
                (Orientation::Col, false) => &mut mix.col_scalar,
                (Orientation::Col, true) => &mut mix.col_vector,
            };
            *slot += m.bytes();
        }
    });
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::ir::{ArrayRef, Loop};

    fn collect(p: &Program, opts: &CodegenOptions) -> Vec<TraceOp> {
        let mut v = Vec::new();
        p.generate(opts, &mut |op| v.push(op));
        v
    }

    fn row_walk(n: i64) -> Program {
        let mut p = Program::new("rowwalk");
        let a = p.array("A", n as u64, n as u64);
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, n), Loop::constant(0, n)],
            refs: vec![ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1))],
            flops_per_iter: 1,
        });
        p
    }

    fn col_walk(n: i64) -> Program {
        let mut p = Program::new("colwalk");
        let a = p.array("A", n as u64, n as u64);
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, n), Loop::constant(0, n)],
            refs: vec![ArrayRef::read(a, AffineExpr::var(1), AffineExpr::var(0))],
            flops_per_iter: 1,
        });
        p
    }

    #[test]
    fn row_walk_vectorizes_on_both_targets() {
        for opts in [CodegenOptions::baseline(), CodegenOptions::mda()] {
            let c = count_ops(&row_walk(16), &opts);
            assert_eq!(c.mem_ops, 16 * 16 / 8, "{opts:?}");
            assert_eq!(c.vector_mem_ops, c.mem_ops);
            assert_eq!(c.bytes, 16 * 16 * 8);
        }
    }

    #[test]
    fn col_walk_vectorizes_only_on_mda() {
        let mda = count_ops(&col_walk(16), &CodegenOptions::mda());
        assert_eq!(mda.mem_ops, 32);
        assert_eq!(mda.vector_mem_ops, 32);

        let base = count_ops(&col_walk(16), &CodegenOptions::baseline());
        assert_eq!(base.mem_ops, 256, "scalar column walk");
        assert_eq!(base.vector_mem_ops, 0);
    }

    #[test]
    fn col_vector_ops_are_column_oriented_lines() {
        let ops = collect(&col_walk(16), &CodegenOptions::mda());
        for op in &ops {
            if let TraceOp::Mem(m) = op {
                assert!(m.vector);
                assert_eq!(m.orient, Orientation::Col);
                let line = LineKey::containing(m.word, Orientation::Col);
                assert_eq!(line.offset_of(m.word), Some(0));
            }
        }
    }

    #[test]
    fn invariants_are_register_promoted() {
        // acc[i][0] += A[i][k] over k: the accumulator is read once and
        // written once per i, not per k.
        let mut p = Program::new("t");
        let a = p.array("A", 8, 64);
        let acc = p.array("acc", 8, 1);
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, 8), Loop::constant(0, 64)],
            refs: vec![
                ArrayRef::read(acc, AffineExpr::var(0), AffineExpr::constant(0)),
                ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1)),
                ArrayRef::write(acc, AffineExpr::var(0), AffineExpr::constant(0)),
            ],
            flops_per_iter: 1,
        });
        let ops = collect(&p, &CodegenOptions::mda());
        let scalar_ops = ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Mem(m) if !m.vector))
            .count();
        let vec_ops = ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Mem(m) if m.vector))
            .count();
        assert_eq!(scalar_ops, 8 * 2, "one read + one write of acc per i");
        assert_eq!(vec_ops, 8 * 64 / 8);
        // First op of each i-iteration is the promoted read, last the write.
        assert!(matches!(ops[0], TraceOp::Mem(m) if !m.vector && !m.write));
        assert!(matches!(ops.last().unwrap(), TraceOp::Mem(m) if !m.vector && m.write));
    }

    #[test]
    fn triangular_loop_gets_scalar_prologue() {
        // for i in 0..16 { for j in i..16 { read A[i][j] } }
        let mut p = Program::new("tri");
        let a = p.array("A", 16, 16);
        p.add_nest(LoopNest {
            loops: vec![
                Loop::constant(0, 16),
                Loop::new(AffineExpr::var(0), AffineExpr::constant(16)),
            ],
            refs: vec![ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1))],
            flops_per_iter: 1,
        });
        let ops = collect(&p, &CodegenOptions::mda());
        let scalars = ops.iter().filter(|o| matches!(o, TraceOp::Mem(m) if !m.vector)).count();
        let vectors = ops.iter().filter(|o| matches!(o, TraceOp::Mem(m) if m.vector)).count();
        // Row i: j from i..16 → (8 − i%8) % 8 … scalar head then aligned
        // vector chunks. Total elements = 136.
        let total = scalars + vectors * 8;
        assert_eq!(total, 136);
        assert!(vectors > 0 && scalars > 0);
    }

    #[test]
    fn access_mix_classifies_volume() {
        // Mixed kernel: one row operand, one column operand.
        let mut p = Program::new("mix");
        let a = p.array("A", 16, 16);
        let b = p.array("B", 16, 16);
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, 16), Loop::constant(0, 16)],
            refs: vec![
                ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1)),
                ArrayRef::read(b, AffineExpr::var(1), AffineExpr::var(0)),
            ],
            flops_per_iter: 1,
        });
        let mix = access_mix(&p, &CodegenOptions::mda());
        let (rs, rv, cs, cv) = mix.fractions();
        assert_eq!(rs, 0.0);
        assert_eq!(cs, 0.0);
        assert!((rv - 0.5).abs() < 1e-12);
        assert!((cv - 0.5).abs() < 1e-12);
        assert!((mix.col_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inner_loop_emits_nothing() {
        let mut p = Program::new("t");
        let a = p.array("A", 8, 8);
        p.add_nest(LoopNest {
            loops: vec![
                Loop::constant(0, 8),
                // j in 8..8 — empty.
                Loop::constant(8, 8),
            ],
            refs: vec![ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1))],
            flops_per_iter: 1,
        });
        assert_eq!(count_ops(&p, &CodegenOptions::mda()).mem_ops, 0);
    }

    #[test]
    fn footprint_reflects_layout_padding() {
        let p = row_walk(10);
        assert!(
            p.footprint_bytes(&CodegenOptions::mda())
                >= p.footprint_bytes(&CodegenOptions::baseline())
        );
    }
}
