//! Compact binary serialization of generated traces.
//!
//! Lowered traces can be dumped once and replayed many times (or analyzed
//! by external tooling) without re-running the code generator. The format
//! is a little-endian stream of 16-byte records behind a magic/version
//! header:
//!
//! ```text
//! header:  b"MDAT" u32-version u64-record-count
//! record:  u64 word-address | u32 stream | u8 flags | 3 pad bytes
//!          flags: bit0 = column, bit1 = vector, bit2 = write,
//!                 bit3 = compute record (then the address field holds the
//!                 µop count and the other flag bits are zero)
//! ```

use crate::trace::{MemOp, TraceOp, TraceSource};
use crate::vectorize::CodegenOptions;
use mda_mem::{Orientation, WordAddr};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"MDAT";
const VERSION: u32 = 1;

const FLAG_COL: u8 = 1 << 0;
const FLAG_VECTOR: u8 = 1 << 1;
const FLAG_WRITE: u8 = 1 << 2;
const FLAG_COMPUTE: u8 = 1 << 3;

/// Infallible little-endian `u32` at `off` (callers pass in-bounds offsets
/// into fixed-size buffers, so no panicking `try_into` conversion needed).
fn le_u32(bytes: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[off..off + 4]);
    u32::from_le_bytes(b)
}

/// Infallible little-endian `u64` at `off`.
fn le_u64(bytes: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Serializes the trace of `src` under `opts` into `out`.
///
/// # Errors
/// Propagates I/O errors from `out`.
pub fn write_trace<W: Write>(
    src: &dyn TraceSource,
    opts: &CodegenOptions,
    out: W,
) -> io::Result<u64> {
    let mut out = io::BufWriter::new(out);
    // Count first so the header can carry the record count (the trace is
    // deterministic, so generating twice is sound).
    let mut count = 0u64;
    src.generate(opts, &mut |_| count += 1);

    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&count.to_le_bytes())?;

    let mut io_err: Option<io::Error> = None;
    src.generate(opts, &mut |op| {
        if io_err.is_some() {
            return;
        }
        let (addr, stream, flags) = match op {
            TraceOp::Compute(n) => (u64::from(n), 0u32, FLAG_COMPUTE),
            TraceOp::Mem(m) => {
                let mut flags = 0u8;
                if m.orient == Orientation::Col {
                    flags |= FLAG_COL;
                }
                if m.vector {
                    flags |= FLAG_VECTOR;
                }
                if m.write {
                    flags |= FLAG_WRITE;
                }
                (m.word.byte_addr(), m.stream, flags)
            }
        };
        let mut rec = [0u8; 16];
        rec[..8].copy_from_slice(&addr.to_le_bytes());
        rec[8..12].copy_from_slice(&stream.to_le_bytes());
        rec[12] = flags;
        if let Err(e) = out.write_all(&rec) {
            io_err = Some(e);
        }
    });
    if let Some(e) = io_err {
        return Err(e);
    }
    out.flush()?;
    Ok(count)
}

/// A trace loaded from the binary format; replayable as a [`TraceSource`]
/// (the stored ops are emitted verbatim; codegen options are ignored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedTrace {
    name: String,
    ops: Vec<TraceOp>,
    footprint: u64,
}

impl RecordedTrace {
    /// Captures `src`'s trace under `opts` directly into memory (no
    /// serialization round trip) — used by the multi-programmed simulator,
    /// which needs pull-based interleaving of several traces.
    pub fn capture(src: &dyn TraceSource, opts: &CodegenOptions) -> RecordedTrace {
        let mut ops = Vec::new();
        let mut footprint = 0u64;
        src.generate(opts, &mut |op| {
            if let TraceOp::Mem(m) = &op {
                footprint = footprint.max(m.word.byte_addr() + mda_mem::LINE_BYTES);
            }
            ops.push(op);
        });
        RecordedTrace { name: src.name().to_string(), ops, footprint }
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Reads a trace written by [`write_trace`].
    ///
    /// # Errors
    /// Returns `InvalidData` on a bad magic, version, flag combination or
    /// truncated stream.
    pub fn read<R: Read>(name: impl Into<String>, input: R) -> io::Result<RecordedTrace> {
        let mut input = io::BufReader::new(input);
        let mut header = [0u8; 16];
        input.read_exact(&mut header)?;
        if &header[..4] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad trace magic"));
        }
        let version = le_u32(&header, 4);
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        let count = le_u64(&header, 8);

        let mut ops = Vec::with_capacity(count.min(1 << 24) as usize);
        let mut footprint = 0u64;
        let mut rec = [0u8; 16];
        for _ in 0..count {
            input.read_exact(&mut rec)?;
            let addr = le_u64(&rec, 0);
            let stream = le_u32(&rec, 8);
            let flags = rec[12];
            if flags & FLAG_COMPUTE != 0 {
                let n = u32::try_from(addr).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "oversized compute record")
                })?;
                ops.push(TraceOp::Compute(n));
            } else {
                let orient =
                    if flags & FLAG_COL != 0 { Orientation::Col } else { Orientation::Row };
                ops.push(TraceOp::Mem(MemOp {
                    word: WordAddr::from_byte_addr(addr),
                    orient,
                    vector: flags & FLAG_VECTOR != 0,
                    write: flags & FLAG_WRITE != 0,
                    stream,
                }));
                footprint = footprint.max(addr + mda_mem::LINE_BYTES);
            }
        }
        Ok(RecordedTrace { name: name.into(), ops, footprint })
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for RecordedTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(&self, _opts: &CodegenOptions, sink: &mut dyn FnMut(TraceOp)) {
        for op in &self.ops {
            sink(*op);
        }
    }

    fn footprint_bytes(&self, _opts: &CodegenOptions) -> u64 {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::ir::{ArrayRef, Loop, LoopNest, Program};

    fn sample() -> Program {
        let mut p = Program::new("sample");
        let a = p.array("A", 16, 16);
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, 16), Loop::constant(0, 16)],
            refs: vec![
                ArrayRef::read(a, AffineExpr::var(1), AffineExpr::var(0)),
                ArrayRef::write(a, AffineExpr::var(0), AffineExpr::var(1)),
            ],
            flops_per_iter: 2,
        });
        p
    }

    #[test]
    fn round_trip_preserves_every_op() {
        let p = sample();
        let opts = CodegenOptions::mda();
        let mut buf = Vec::new();
        let written = write_trace(&p, &opts, &mut buf).expect("write");
        let loaded = RecordedTrace::read("sample", buf.as_slice()).expect("read");
        assert_eq!(written as usize, loaded.len());

        let mut original = Vec::new();
        p.generate(&opts, &mut |op| original.push(op));
        let mut replayed = Vec::new();
        loaded.generate(&opts, &mut |op| replayed.push(op));
        assert_eq!(original, replayed);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bogus = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00".to_vec();
        assert!(RecordedTrace::read("x", bogus.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let p = sample();
        let mut buf = Vec::new();
        write_trace(&p, &CodegenOptions::mda(), &mut buf).expect("write");
        buf.truncate(buf.len() - 5);
        assert!(RecordedTrace::read("x", buf.as_slice()).is_err());
    }

    #[test]
    fn recorded_trace_simulates_like_the_original_source() {
        use crate::trace::count_ops;
        let p = sample();
        let opts = CodegenOptions::mda();
        let mut buf = Vec::new();
        write_trace(&p, &opts, &mut buf).expect("write");
        let loaded = RecordedTrace::read("sample", buf.as_slice()).expect("read");
        assert_eq!(count_ops(&p, &opts), count_ops(&loaded, &opts));
        assert!(loaded.footprint_bytes(&opts) >= p.footprint_bytes(&opts) / 2);
    }

    #[test]
    fn record_size_is_sixteen_bytes() {
        let p = sample();
        let mut buf = Vec::new();
        let n = write_trace(&p, &CodegenOptions::baseline(), &mut buf).expect("write");
        assert_eq!(buf.len() as u64, 16 + 16 * n);
    }
}
