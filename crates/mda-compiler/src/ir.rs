//! The affine loop-nest intermediate representation.
//!
//! A [`Program`] declares 2-D arrays of 64-bit words and a sequence of
//! perfectly nested affine loop nests. Each nest executes its body — a list
//! of [`ArrayRef`]s plus an abstract amount of compute — once per iteration
//! of its innermost loop. This is exactly the program class (dense linear
//! algebra, stencils, table scans) the paper's compiler support targets.

use crate::expr::{AffineExpr, VarId};

/// Handle to an array declared in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub(crate) usize);

/// A declared 2-D array of 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name.
    pub name: String,
    /// Logical rows.
    pub rows: u64,
    /// Logical columns.
    pub cols: u64,
}

/// Whether a reference reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

/// One static array reference `A[row_expr][col_expr]` in a nest body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// The referenced array.
    pub array: ArrayId,
    /// Row-subscript expression.
    pub row: AffineExpr,
    /// Column-subscript expression.
    pub col: AffineExpr,
    /// Read or write.
    pub kind: RefKind,
    /// Globally unique static-instruction id, assigned by
    /// [`Program::add_nest`]. Plays the role of the PC for the prefetcher
    /// and the profiler.
    pub stream: u32,
    /// Profiling-supplied direction annotation, consulted only when the
    /// static analysis finds no decidable preference (paper Sec. V:
    /// "profiling can be used to extract directional bias and then the
    /// corresponding static load/store instructions can be annotated").
    pub hint: Option<mda_mem::Orientation>,
}

impl ArrayRef {
    /// A read reference `array[row][col]`.
    pub fn read(array: ArrayId, row: AffineExpr, col: AffineExpr) -> ArrayRef {
        ArrayRef { array, row, col, kind: RefKind::Read, stream: u32::MAX, hint: None }
    }

    /// A write reference `array[row][col]`.
    pub fn write(array: ArrayId, row: AffineExpr, col: AffineExpr) -> ArrayRef {
        ArrayRef { array, row, col, kind: RefKind::Write, stream: u32::MAX, hint: None }
    }

    /// Whether this reference writes.
    pub fn is_write(&self) -> bool {
        self.kind == RefKind::Write
    }

    /// Returns the reference with a profiling-supplied direction hint.
    pub fn with_hint(mut self, orient: mda_mem::Orientation) -> ArrayRef {
        self.hint = Some(orient);
        self
    }
}

/// One loop `for v in lo..hi` (step 1). Bounds may reference outer loop
/// variables only, which is how triangular iteration spaces (`strmm`,
/// `ssyrk`) are expressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// Lower bound (inclusive).
    pub lo: AffineExpr,
    /// Upper bound (exclusive).
    pub hi: AffineExpr,
}

impl Loop {
    /// A loop with constant bounds `lo..hi`.
    pub fn constant(lo: i64, hi: i64) -> Loop {
        Loop { lo: AffineExpr::constant(lo), hi: AffineExpr::constant(hi) }
    }

    /// A loop with affine bounds.
    pub fn new(lo: AffineExpr, hi: AffineExpr) -> Loop {
        Loop { lo, hi }
    }
}

/// A perfectly nested affine loop nest with a flat body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Loops from outermost (variable 0) to innermost.
    pub loops: Vec<Loop>,
    /// Body references, executed once per innermost iteration.
    pub refs: Vec<ArrayRef>,
    /// Abstract compute micro-ops per innermost iteration (FMAs etc.).
    pub flops_per_iter: u32,
}

impl LoopNest {
    /// Depth of the nest.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// The innermost loop variable.
    pub fn innermost(&self) -> VarId {
        self.depth() - 1
    }

    /// Validates that bounds use only outer variables and subscripts use
    /// only declared loop variables.
    ///
    /// # Errors
    /// Returns a description of the first malformed loop or reference.
    pub fn validate(&self) -> Result<(), String> {
        if self.loops.is_empty() {
            return Err("a nest needs at least one loop".into());
        }
        for (d, l) in self.loops.iter().enumerate() {
            if !l.lo.uses_only_outer(d) || !l.hi.uses_only_outer(d) {
                return Err(format!("bounds of loop {d} reference inner variables"));
            }
        }
        let depth = self.depth();
        for (i, r) in self.refs.iter().enumerate() {
            if !r.row.uses_only_outer(depth) || !r.col.uses_only_outer(depth) {
                return Err(format!("reference {i} uses undeclared loop variables"));
            }
        }
        Ok(())
    }
}

/// A whole program: array declarations plus a sequence of loop nests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    arrays: Vec<ArrayDecl>,
    nests: Vec<LoopNest>,
    next_stream: u32,
}

impl Program {
    /// Creates an empty program called `name`.
    pub fn new(name: impl Into<String>) -> Program {
        Program { name: name.into(), arrays: Vec::new(), nests: Vec::new(), next_stream: 0 }
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a `rows × cols` array of 64-bit words.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn array(&mut self, name: impl Into<String>, rows: u64, cols: u64) -> ArrayId {
        assert!(rows > 0 && cols > 0, "arrays must be non-empty");
        self.arrays.push(ArrayDecl { name: name.into(), rows, cols });
        ArrayId(self.arrays.len() - 1)
    }

    /// Appends a nest, assigning stream ids to its references.
    ///
    /// # Panics
    /// Panics if the nest fails [`LoopNest::validate`] or references an
    /// undeclared array.
    pub fn add_nest(&mut self, mut nest: LoopNest) {
        if let Err(msg) = nest.validate() {
            // mda-lint: allow(lib-unwrap): documented `# Panics` contract rejecting invalid loop nests
            panic!("invalid loop nest: {msg}");
        }
        for r in &mut nest.refs {
            assert!(r.array.0 < self.arrays.len(), "reference to undeclared array");
            r.stream = self.next_stream;
            self.next_stream += 1;
        }
        self.nests.push(nest);
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// The declaration of `id`.
    pub fn array_decl(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// The loop nests in program order.
    pub fn nests(&self) -> &[LoopNest] {
        &self.nests
    }

    /// Total data footprint in words (unpadded).
    pub fn footprint_words(&self) -> u64 {
        self.arrays.iter().map(|a| a.rows * a.cols).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_a_program_assigns_streams() {
        let mut p = Program::new("t");
        let a = p.array("A", 4, 4);
        let b = p.array("B", 4, 4);
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, 4), Loop::constant(0, 4)],
            refs: vec![
                ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1)),
                ArrayRef::write(b, AffineExpr::var(0), AffineExpr::var(1)),
            ],
            flops_per_iter: 1,
        });
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, 4)],
            refs: vec![ArrayRef::read(a, AffineExpr::var(0), AffineExpr::constant(0))],
            flops_per_iter: 0,
        });
        let streams: Vec<u32> = p.nests().iter().flat_map(|n| n.refs.iter().map(|r| r.stream)).collect();
        assert_eq!(streams, vec![0, 1, 2]);
        assert_eq!(p.footprint_words(), 32);
        assert_eq!(p.array_decl(b).name, "B");
    }

    #[test]
    fn triangular_bounds_validate() {
        // for i in 0..8 { for j in i..8 { ... } }
        let nest = LoopNest {
            loops: vec![Loop::constant(0, 8), Loop::new(AffineExpr::var(0), AffineExpr::constant(8))],
            refs: vec![],
            flops_per_iter: 0,
        };
        assert_eq!(nest.validate(), Ok(()));
        assert_eq!(nest.innermost(), 1);
    }

    #[test]
    fn inner_variable_in_bounds_is_rejected() {
        let nest = LoopNest {
            loops: vec![Loop::new(AffineExpr::var(1), AffineExpr::constant(8)), Loop::constant(0, 8)],
            refs: vec![],
            flops_per_iter: 0,
        };
        assert!(nest.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid loop nest")]
    fn empty_nest_panics_on_add() {
        let mut p = Program::new("t");
        p.add_nest(LoopNest { loops: vec![], refs: vec![], flops_per_iter: 0 });
    }

    #[test]
    #[should_panic(expected = "undeclared array")]
    fn undeclared_array_panics() {
        let mut p = Program::new("t");
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, 1)],
            refs: vec![ArrayRef::read(ArrayId(3), AffineExpr::constant(0), AffineExpr::constant(0))],
            flops_per_iter: 0,
        });
    }
}
