//! Access-direction prediction (paper Sec. V, "Access Direction
//! Prediction").
//!
//! For a row-major array, the column subscript is the fastest-changing
//! dimension. If the innermost loop index appears only there, the reference
//! walks a row; if it appears only in the row subscript, the reference
//! walks a column; if it appears in both (e.g. `Z[i+j][i+2]` with `i`
//! innermost, the paper's example of a column-wise diagonal) the reference
//! is treated as column-wise when the row subscript moves, otherwise it has
//! no discernible preference and defaults to row (paper Sec. IV-B-a).

use crate::expr::VarId;
use crate::ir::ArrayRef;

/// Statically predicted access direction of a reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Walks along a row (unit stride in the fastest dimension).
    Row,
    /// Walks along a column (row subscript moves with the innermost index).
    Col,
    /// Loop-invariant with respect to the innermost loop.
    Invariant,
}

impl Direction {
    /// The orientation preference bit conveyed to the ISA: undiscerned or
    /// invariant references default to row preference.
    pub fn orientation(self) -> mda_mem::Orientation {
        match self {
            Direction::Col => mda_mem::Orientation::Col,
            Direction::Row | Direction::Invariant => mda_mem::Orientation::Row,
        }
    }
}

/// Result of analyzing one reference against the innermost loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefAnalysis {
    /// Predicted direction.
    pub direction: Direction,
    /// Whether consecutive innermost iterations touch adjacent elements
    /// along the direction (unit coefficient, other subscript invariant) —
    /// the precondition for vectorizing the reference.
    pub unit_stride: bool,
}

/// Analyzes `r` with respect to innermost loop variable `innermost`.
pub fn analyze_ref(r: &ArrayRef, innermost: VarId) -> RefAnalysis {
    let row_c = r.row.coeff_of(innermost);
    let col_c = r.col.coeff_of(innermost);
    match (row_c, col_c) {
        (0, 0) => RefAnalysis { direction: Direction::Invariant, unit_stride: false },
        (0, c) => RefAnalysis { direction: Direction::Row, unit_stride: c.abs() == 1 },
        (c, 0) => RefAnalysis { direction: Direction::Col, unit_stride: c.abs() == 1 },
        // Both subscripts move: a diagonal walk with no statically clear
        // preference. A profiling annotation decides when present
        // (paper Sec. V, last paragraph); otherwise classify column-wise,
        // like the paper's Z[i+j][i+2] example, since the row subscript
        // changes every iteration. Either way it is not unit-stride along
        // either axis, so it cannot be vectorized.
        (_, _) => {
            let direction = match r.hint {
                Some(mda_mem::Orientation::Row) => Direction::Row,
                _ => Direction::Col,
            };
            RefAnalysis { direction, unit_stride: false }
        }
    }
}

/// Analyzes every reference of a nest body.
pub fn analyze_nest(refs: &[ArrayRef], innermost: VarId) -> Vec<RefAnalysis> {
    refs.iter().map(|r| analyze_ref(r, innermost)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::ir::ArrayId;

    fn r(row: AffineExpr, col: AffineExpr) -> ArrayRef {
        ArrayRef::read(ArrayId(0), row, col)
    }

    #[test]
    fn x_i_j_with_j_innermost_is_row_wise() {
        // X[i][j], innermost j = var 1 — the paper's canonical row access.
        let a = analyze_ref(&r(AffineExpr::var(0), AffineExpr::var(1)), 1);
        assert_eq!(a.direction, Direction::Row);
        assert!(a.unit_stride);
        assert_eq!(a.direction.orientation(), mda_mem::Orientation::Row);
    }

    #[test]
    fn y_j_i_with_j_innermost_is_column_wise() {
        // Y[j][i], innermost j — the paper's canonical column access.
        let a = analyze_ref(&r(AffineExpr::var(1), AffineExpr::var(0)), 1);
        assert_eq!(a.direction, Direction::Col);
        assert!(a.unit_stride);
        assert_eq!(a.direction.orientation(), mda_mem::Orientation::Col);
    }

    #[test]
    fn z_diagonal_is_column_wise_but_not_vectorizable() {
        // Z[i+j][i+2] with i innermost (paper Sec. V example).
        let i = 1;
        let row = AffineExpr::var(0).add(&AffineExpr::var(1));
        let col = AffineExpr::var(1).plus(2);
        let a = analyze_ref(&r(row, col), i);
        assert_eq!(a.direction, Direction::Col);
        assert!(!a.unit_stride);
    }

    #[test]
    fn invariant_reference_is_detected() {
        // C[i][j] inside a k-innermost loop (k = var 2).
        let a = analyze_ref(&r(AffineExpr::var(0), AffineExpr::var(1)), 2);
        assert_eq!(a.direction, Direction::Invariant);
        assert_eq!(a.direction.orientation(), mda_mem::Orientation::Row);
    }

    #[test]
    fn non_unit_coefficient_blocks_vectorization() {
        // X[i][2j]: row direction, stride 2 — not vectorizable.
        let a = analyze_ref(&r(AffineExpr::var(0), AffineExpr::scaled_var(1, 2)), 1);
        assert_eq!(a.direction, Direction::Row);
        assert!(!a.unit_stride);
    }

    #[test]
    fn analyze_nest_covers_all_refs() {
        let refs = vec![
            r(AffineExpr::var(0), AffineExpr::var(2)), // row-wise
            r(AffineExpr::var(2), AffineExpr::var(1)), // col-wise
            r(AffineExpr::var(0), AffineExpr::var(1)), // invariant
        ];
        let out = analyze_nest(&refs, 2);
        assert_eq!(
            out.iter().map(|a| a.direction).collect::<Vec<_>>(),
            vec![Direction::Row, Direction::Col, Direction::Invariant]
        );
    }
}
