//! Affine index expressions over loop variables.

/// Identifier of a loop variable: its depth in the enclosing nest
/// (0 = outermost).
pub type VarId = usize;

/// An affine expression `Σ cᵥ·v + k` over loop variables.
///
/// Array subscripts and loop bounds are affine, which is what makes the
/// direction analysis of paper Sec. V decidable: the coefficient of the
/// innermost loop variable in each subscript position tells the compiler
/// whether the reference walks rows or columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    /// `(variable, coefficient)` pairs, sorted by variable, no zeros.
    terms: Vec<(VarId, i64)>,
    /// The constant term.
    constant: i64,
}

impl AffineExpr {
    /// The constant expression `k`.
    pub fn constant(k: i64) -> AffineExpr {
        AffineExpr { terms: Vec::new(), constant: k }
    }

    /// The single-variable expression `v`.
    pub fn var(v: VarId) -> AffineExpr {
        AffineExpr { terms: vec![(v, 1)], constant: 0 }
    }

    /// The expression `c·v`.
    pub fn scaled_var(v: VarId, c: i64) -> AffineExpr {
        if c == 0 {
            AffineExpr::constant(0)
        } else {
            AffineExpr { terms: vec![(v, c)], constant: 0 }
        }
    }

    /// `self + k`.
    pub fn plus(mut self, k: i64) -> AffineExpr {
        self.constant += k;
        self
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)] // consuming builder-style add
    pub fn add(mut self, other: &AffineExpr) -> AffineExpr {
        for &(v, c) in &other.terms {
            self.add_term(v, c);
        }
        self.constant += other.constant;
        self
    }

    fn add_term(&mut self, v: VarId, c: i64) {
        match self.terms.binary_search_by_key(&v, |t| t.0) {
            Ok(i) => {
                self.terms[i].1 += c;
                if self.terms[i].1 == 0 {
                    self.terms.remove(i);
                }
            }
            Err(i) => {
                if c != 0 {
                    self.terms.insert(i, (v, c));
                }
            }
        }
    }

    /// The coefficient of variable `v` (zero if absent).
    pub fn coeff_of(&self, v: VarId) -> i64 {
        self.terms
            .binary_search_by_key(&v, |t| t.0)
            .map(|i| self.terms[i].1)
            .unwrap_or(0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Whether the expression mentions no variable deeper than `depth`
    /// (i.e. uses only variables `0..depth`).
    pub fn uses_only_outer(&self, depth: usize) -> bool {
        self.terms.iter().all(|&(v, _)| v < depth)
    }

    /// Evaluates the expression with `values[v]` as the value of variable
    /// `v`.
    ///
    /// # Panics
    /// Panics if a referenced variable has no value.
    pub fn eval(&self, values: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(v, c) in &self.terms {
            acc += c * values[v];
        }
        acc
    }

    /// Variables referenced by the expression.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().map(|&(v, _)| v)
    }

    /// Returns the expression with every variable `v` replaced by `f(v)`
    /// (used by loop transformations that renumber the nest).
    pub fn remap_vars(&self, mut f: impl FnMut(VarId) -> VarId) -> AffineExpr {
        let mut out = AffineExpr::constant(self.constant);
        for &(v, c) in &self.terms {
            out.add_term(f(v), c);
        }
        out
    }
}

impl From<i64> for AffineExpr {
    fn from(k: i64) -> AffineExpr {
        AffineExpr::constant(k)
    }
}

impl std::fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for &(v, c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if c == 1 {
                write!(f, "v{v}")?;
            } else {
                write!(f, "{c}·v{v}")?;
            }
        }
        if self.constant != 0 || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_of_affine_combination() {
        // 2·v0 + v2 + 5
        let e = AffineExpr::scaled_var(0, 2).add(&AffineExpr::var(2)).plus(5);
        assert_eq!(e.eval(&[3, 100, 7]), 2 * 3 + 7 + 5);
        assert_eq!(e.coeff_of(0), 2);
        assert_eq!(e.coeff_of(1), 0);
        assert_eq!(e.coeff_of(2), 1);
    }

    #[test]
    fn cancelling_terms_disappear() {
        let e = AffineExpr::var(1).add(&AffineExpr::scaled_var(1, -1));
        assert_eq!(e, AffineExpr::constant(0));
        assert!(e.uses_only_outer(0));
    }

    #[test]
    fn uses_only_outer_checks_depth() {
        let e = AffineExpr::var(0).add(&AffineExpr::var(2));
        assert!(e.uses_only_outer(3));
        assert!(!e.uses_only_outer(2));
        assert!(!e.uses_only_outer(0));
    }

    #[test]
    fn display_is_readable() {
        let e = AffineExpr::var(0).add(&AffineExpr::scaled_var(1, 3)).plus(-2);
        assert_eq!(e.to_string(), "v0 + 3·v1 + -2");
        assert_eq!(AffineExpr::constant(0).to_string(), "0");
    }

    #[test]
    fn from_i64_builds_constant() {
        let e: AffineExpr = 42.into();
        assert_eq!(e.eval(&[]), 42);
    }
}
