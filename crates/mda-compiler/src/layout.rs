//! Memory-layout planning: conventional row-major vs. MDA-compliant tiled
//! layout with intra-array padding (paper Sec. V, "MDA-memory Compliant
//! Memory Layout").
//!
//! The MDA layout must guarantee that two elements in the same logical
//! column of an array (`X[i][j]` and `X[i+1][j]`) also land in the same
//! *physical* column of the MDA tiles. We achieve this with intra-array
//! padding of both dimensions to the 8-word tile granularity, and a
//! tile-major element order inside the padded rectangle: element `(i, j)`
//! lives at word `(i mod 8, j mod 8)` of tile `(i/8, j/8)` of the array's
//! tile grid. Row lines remain unit-stride in memory, so conventional row
//! vectorization works unchanged, and column lines are exactly the MDA
//! column transfer unit.
//!
//! The conventional layout (`Linear1D`) is plain row-major with each row
//! padded to a cache-line multiple — what the paper's "1-D optimized"
//! baseline uses.

use crate::ir::{ArrayId, Program};
use mda_mem::{WordAddr, LINE_WORDS, TILE_BYTES, TILE_LINES, WORD_BYTES};

/// Which layout family an array uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Row-major, rows padded to a cache line: optimized for logically 1-D
    /// hierarchies.
    Linear1D,
    /// Tile-major with intra-array padding to 8×8 tiles: optimized for
    /// logically 2-D (MDA) hierarchies.
    Tiled2D,
}

/// Placement of one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayLayout {
    /// Base byte address (tile-aligned).
    pub base: u64,
    /// Rows after padding.
    pub padded_rows: u64,
    /// Columns after padding.
    pub padded_cols: u64,
    /// Layout family.
    pub kind: LayoutKind,
}

impl ArrayLayout {
    /// Bytes occupied by the padded array.
    pub fn size_bytes(&self) -> u64 {
        self.padded_rows * self.padded_cols * WORD_BYTES
    }

    /// The word address of element `(i, j)`.
    ///
    /// # Panics
    /// Panics in debug builds if `(i, j)` exceeds the padded extent.
    #[inline]
    pub fn addr(&self, i: u64, j: u64) -> WordAddr {
        debug_assert!(i < self.padded_rows && j < self.padded_cols, "index out of padded extent");
        match self.kind {
            LayoutKind::Linear1D => {
                WordAddr(self.base + (i * self.padded_cols + j) * WORD_BYTES)
            }
            LayoutKind::Tiled2D => {
                let tiles_per_row = self.padded_cols / TILE_LINES as u64;
                let tile = (i / TILE_LINES as u64) * tiles_per_row + j / TILE_LINES as u64;
                let within =
                    (i % TILE_LINES as u64) * LINE_WORDS as u64 + (j % TILE_LINES as u64);
                WordAddr(self.base + tile * TILE_BYTES + within * WORD_BYTES)
            }
        }
    }
}

/// The placement of every array of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    arrays: Vec<ArrayLayout>,
    total_bytes: u64,
    kind: LayoutKind,
}

impl Layout {
    /// Plans the layout of every array in `program` with layout family
    /// `kind`. Arrays are placed back to back, each base tile-aligned.
    pub fn plan(program: &Program, kind: LayoutKind) -> Layout {
        let mut arrays = Vec::with_capacity(program.arrays().len());
        let mut cursor = 0u64;
        for decl in program.arrays() {
            let (padded_rows, padded_cols) = match kind {
                LayoutKind::Linear1D => (decl.rows, round_up(decl.cols, LINE_WORDS as u64)),
                LayoutKind::Tiled2D => (
                    round_up(decl.rows, TILE_LINES as u64),
                    round_up(decl.cols, TILE_LINES as u64),
                ),
            };
            let a = ArrayLayout { base: cursor, padded_rows, padded_cols, kind };
            cursor = round_up(cursor + a.size_bytes(), TILE_BYTES);
            arrays.push(a);
        }
        Layout { arrays, total_bytes: cursor, kind }
    }

    /// The placement of array `id`.
    pub fn of(&self, id: ArrayId) -> &ArrayLayout {
        &self.arrays[id.0]
    }

    /// Total padded footprint in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The layout family.
    pub fn kind(&self) -> LayoutKind {
        self.kind
    }
}

fn round_up(v: u64, to: u64) -> u64 {
    v.div_ceil(to) * to
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_mem::Orientation;

    fn program(rows: u64, cols: u64) -> (Program, ArrayId) {
        let mut p = Program::new("t");
        let a = p.array("A", rows, cols);
        (p, a)
    }

    #[test]
    fn linear_layout_is_row_major_with_line_padding() {
        let (p, a) = program(4, 10);
        let l = Layout::plan(&p, LayoutKind::Linear1D);
        let al = l.of(a);
        assert_eq!(al.padded_cols, 16, "10 columns pad to two cache lines");
        assert_eq!(al.addr(0, 1).0 - al.addr(0, 0).0, 8, "unit stride along rows");
        assert_eq!(al.addr(1, 0).0 - al.addr(0, 0).0, 16 * 8, "row pitch");
    }

    #[test]
    fn tiled_layout_keeps_columns_in_one_physical_column() {
        let (p, a) = program(32, 32);
        let l = Layout::plan(&p, LayoutKind::Tiled2D);
        let al = l.of(a);
        // X[i][j] and X[i+1][j] must share the MDA column: same tile column
        // coordinate, and the same tile while within an 8-row band.
        for i in 0..7u64 {
            let w0 = al.addr(i, 5);
            let w1 = al.addr(i + 1, 5);
            assert_eq!(w0.tile(), w1.tile());
            assert_eq!(w0.col_in_tile(), w1.col_in_tile());
            assert_eq!(w1.row_in_tile(), w0.row_in_tile() + 1);
        }
    }

    #[test]
    fn tiled_layout_keeps_rows_unit_stride_within_a_line() {
        let (p, a) = program(16, 16);
        let l = Layout::plan(&p, LayoutKind::Tiled2D);
        let al = l.of(a);
        for j in 0..7u64 {
            assert_eq!(al.addr(3, j + 1).0, al.addr(3, j).0 + 8);
        }
        // A full aligned row chunk is exactly one row line.
        let line = mda_mem::LineKey::containing(al.addr(3, 0), Orientation::Row);
        assert_eq!(line.offset_of(al.addr(3, 0)), Some(0));
        assert_eq!(line.offset_of(al.addr(3, 7)), Some(7));
    }

    #[test]
    fn tiled_column_chunk_is_exactly_one_column_line() {
        let (p, a) = program(16, 16);
        let l = Layout::plan(&p, LayoutKind::Tiled2D);
        let al = l.of(a);
        let line = mda_mem::LineKey::containing(al.addr(8, 5), Orientation::Col);
        for i in 8..16u64 {
            assert!(line.contains(al.addr(i, 5)));
        }
        assert_eq!(line.offset_of(al.addr(8, 5)), Some(0));
    }

    #[test]
    fn intra_array_padding_rounds_dimensions() {
        let (p, a) = program(9, 17);
        let l = Layout::plan(&p, LayoutKind::Tiled2D);
        assert_eq!(l.of(a).padded_rows, 16);
        assert_eq!(l.of(a).padded_cols, 24);
        assert_eq!(l.of(a).size_bytes(), 16 * 24 * 8);
    }

    #[test]
    fn arrays_do_not_overlap_and_bases_are_tile_aligned() {
        let mut p = Program::new("t");
        let a = p.array("A", 9, 9);
        let b = p.array("B", 9, 9);
        let l = Layout::plan(&p, LayoutKind::Tiled2D);
        let (la, lb) = (l.of(a), l.of(b));
        assert!(la.base + la.size_bytes() <= lb.base);
        assert_eq!(lb.base % TILE_BYTES, 0);
        assert!(l.total_bytes() >= lb.base + lb.size_bytes());
    }

    #[test]
    fn distinct_elements_have_distinct_addresses() {
        let (p, a) = program(24, 24);
        for kind in [LayoutKind::Linear1D, LayoutKind::Tiled2D] {
            let l = Layout::plan(&p, kind);
            let al = l.of(a);
            let mut seen = std::collections::HashSet::new();
            for i in 0..24 {
                for j in 0..24 {
                    assert!(seen.insert(al.addr(i, j).0), "duplicate address in {kind:?}");
                }
            }
        }
    }
}
