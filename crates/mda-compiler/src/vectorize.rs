//! Vectorization decisions (paper Sec. V, "Vectorization").
//!
//! Current compilers vectorize only unit-stride (row) accesses; column
//! accesses would first need an expensive gather. Because the MDA hierarchy
//! serves dense column lines, the MDA code generator vectorizes along *both*
//! directions. A nest is vectorized when every non-invariant reference is
//! unit-stride along its predicted direction **and** that direction is
//! enabled by the target's [`CodegenOptions`]; otherwise the whole nest is
//! emitted scalar (partial/gathered vectorization is out of scope, as in
//! the paper).

use crate::analysis::{analyze_nest, Direction, RefAnalysis};
use crate::ir::LoopNest;
use crate::layout::LayoutKind;

/// Code-generation target options: which layout the data uses and which
/// directions the SIMD unit may vectorize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Memory layout family.
    pub layout: LayoutKind,
    /// Vectorize unit-stride row accesses (all targets).
    pub vectorize_rows: bool,
    /// Vectorize unit-stride column accesses (MDA targets only).
    pub vectorize_cols: bool,
    /// Loop-control micro-ops charged per innermost iteration (or per
    /// vector chunk once vectorized).
    pub loop_overhead: u32,
}

impl CodegenOptions {
    /// The conventional target: 1-D layout, row-only vectorization — what
    /// the paper's 1P1L baseline runs.
    pub fn baseline() -> CodegenOptions {
        CodegenOptions {
            layout: LayoutKind::Linear1D,
            vectorize_rows: true,
            vectorize_cols: false,
            loop_overhead: 1,
        }
    }

    /// The MDA target: tiled layout, row and column vectorization — what
    /// all *P2L hierarchies run.
    pub fn mda() -> CodegenOptions {
        CodegenOptions {
            layout: LayoutKind::Tiled2D,
            vectorize_rows: true,
            vectorize_cols: true,
            loop_overhead: 1,
        }
    }

    /// The Sec. IV-C Design-0 ablation: a 1-D hierarchy forced to run on
    /// the 2-D-optimized layout (layout/access mismatch).
    pub fn baseline_on_mda_layout() -> CodegenOptions {
        CodegenOptions { layout: LayoutKind::Tiled2D, ..CodegenOptions::baseline() }
    }

    /// Whether a reference of direction `dir` may be emitted as a vector
    /// operation.
    pub fn allows(&self, dir: Direction) -> bool {
        match dir {
            Direction::Row => self.vectorize_rows,
            Direction::Col => self.vectorize_cols,
            Direction::Invariant => true,
        }
    }
}

impl Default for CodegenOptions {
    fn default() -> CodegenOptions {
        CodegenOptions::mda()
    }
}

/// The per-nest vectorization verdict, with the per-reference analyses it
/// was derived from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestPlan {
    /// Whether the innermost loop is vectorized by the 8-word line width.
    pub vectorized: bool,
    /// Analysis of each body reference (parallel to `nest.refs`).
    pub refs: Vec<RefAnalysis>,
}

/// Decides whether `nest` vectorizes under `opts`.
pub fn plan_nest(nest: &LoopNest, opts: &CodegenOptions) -> NestPlan {
    let refs = analyze_nest(&nest.refs, nest.innermost());
    let vectorized = !nest.refs.is_empty()
        && refs.iter().all(|a| {
            a.direction == Direction::Invariant || (a.unit_stride && opts.allows(a.direction))
        });
    NestPlan { vectorized, refs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::ir::{ArrayRef, Loop, Program};

    /// sgemm's k-innermost nest: C[i][j] += A[i][k] * B[k][j].
    fn sgemm_nest() -> LoopNest {
        let mut p = Program::new("sgemm");
        let a = p.array("A", 8, 8);
        let b = p.array("B", 8, 8);
        let c = p.array("C", 8, 8);
        LoopNest {
            loops: vec![Loop::constant(0, 8); 3],
            refs: vec![
                ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(2)), // row-wise
                ArrayRef::read(b, AffineExpr::var(2), AffineExpr::var(1)), // col-wise
                ArrayRef::read(c, AffineExpr::var(0), AffineExpr::var(1)), // invariant
                ArrayRef::write(c, AffineExpr::var(0), AffineExpr::var(1)), // invariant
            ],
            flops_per_iter: 2,
        }
    }

    #[test]
    fn mda_target_vectorizes_mixed_direction_sgemm() {
        let plan = plan_nest(&sgemm_nest(), &CodegenOptions::mda());
        assert!(plan.vectorized, "column vectorization unlocks the k loop");
    }

    #[test]
    fn baseline_cannot_vectorize_the_column_operand() {
        let plan = plan_nest(&sgemm_nest(), &CodegenOptions::baseline());
        assert!(!plan.vectorized, "B[k][j] forces the whole nest scalar");
    }

    #[test]
    fn row_only_nest_vectorizes_everywhere() {
        let mut p = Program::new("t");
        let a = p.array("A", 8, 8);
        let nest = LoopNest {
            loops: vec![Loop::constant(0, 8), Loop::constant(0, 8)],
            refs: vec![ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1))],
            flops_per_iter: 1,
        };
        assert!(plan_nest(&nest, &CodegenOptions::baseline()).vectorized);
        assert!(plan_nest(&nest, &CodegenOptions::mda()).vectorized);
    }

    #[test]
    fn non_unit_stride_blocks_vectorization_on_all_targets() {
        let mut p = Program::new("t");
        let a = p.array("A", 8, 8);
        let nest = LoopNest {
            loops: vec![Loop::constant(0, 4)],
            refs: vec![ArrayRef::read(a, AffineExpr::constant(0), AffineExpr::scaled_var(0, 2))],
            flops_per_iter: 1,
        };
        assert!(!plan_nest(&nest, &CodegenOptions::mda()).vectorized);
    }

    #[test]
    fn empty_body_is_not_vectorized() {
        let nest = LoopNest { loops: vec![Loop::constant(0, 8)], refs: vec![], flops_per_iter: 1 };
        assert!(!plan_nest(&nest, &CodegenOptions::mda()).vectorized);
    }
}
