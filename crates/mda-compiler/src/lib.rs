//! # mda-compiler — software support for MDA memories
//!
//! Implements the compiler half of the MDACache co-design (paper Sec. V):
//!
//! * **Access-direction prediction** ([`analysis`]) — for each array
//!   reference in an affine loop nest, the subscript position in which the
//!   innermost loop index appears decides whether the access walks rows or
//!   columns of the array, and hence which preference bit the generated
//!   load/store carries.
//! * **MDA-compliant memory layout** ([`layout`]) — intra-array padding
//!   aligns logical columns with the physical columns of the MDA tiles; a
//!   conventional row-major layout is kept for 1-D hierarchies.
//! * **Row *and* column vectorization** ([`vectorize`], [`trace`]) — loops
//!   whose references move along columns can be vectorized too, because the
//!   MDA hierarchy serves dense column lines. The trace generator lowers a
//!   [`ir::Program`] to the annotated memory-operation stream the simulated
//!   ISA would execute.
//! * **Profiling fallback** ([`profile`]) — references without a decidable
//!   static direction can be annotated from an address-delta profile.
//!
//! ```
//! use mda_compiler::ir::{Program, ArrayRef, Loop, LoopNest};
//! use mda_compiler::expr::AffineExpr;
//! use mda_compiler::{CodegenOptions, trace::count_ops};
//!
//! // for i in 0..16 { for j in 0..16 { sum += x[i][j] } } — a row walk.
//! let mut p = Program::new("rowsum");
//! let x = p.array("x", 16, 16);
//! p.add_nest(LoopNest {
//!     loops: vec![Loop::constant(0, 16), Loop::constant(0, 16)],
//!     refs: vec![ArrayRef::read(x, AffineExpr::var(0), AffineExpr::var(1))],
//!     flops_per_iter: 1,
//! });
//! let mda = CodegenOptions::mda();
//! // Vectorized by 8: 16×16/8 = 32 vector loads (plus compute ops).
//! assert_eq!(count_ops(&p, &mda).mem_ops, 32);
//! ```

pub mod analysis;
pub mod expr;
pub mod ir;
pub mod layout;
pub mod profile;
pub mod reuse;
pub mod tiling;
pub mod trace;
pub mod tracefile;
pub mod vectorize;

pub use analysis::{Direction, RefAnalysis};
pub use expr::AffineExpr;
pub use ir::{ArrayId, ArrayRef, Loop, LoopNest, Program};
pub use layout::{ArrayLayout, Layout, LayoutKind};
pub use reuse::{ReuseGranularity, ReuseProfile};
pub use tiling::{tile, tile_program, TileError};
pub use trace::{MemOp, TraceOp, TraceSource};
pub use tracefile::{write_trace, RecordedTrace};
pub use vectorize::CodegenOptions;
