//! Reuse-distance (Mattson stack) analysis of generated traces.
//!
//! For every memory access, the *reuse distance* is the number of distinct
//! cache lines touched since the previous access to the same line. Under
//! fully-associative LRU, an access hits if and only if its reuse distance
//! is smaller than the cache's line capacity, so the histogram of reuse
//! distances yields the entire miss-rate-versus-capacity curve in one
//! pass — the analytical companion to the event simulation, and a handy
//! way to reason about how MDA caching changes a workload's locality
//! (column vectorization shortens the B-operand's reuse distances by 8×).
//!
//! Distances are computed with the Bennett–Kruskal algorithm: a Fenwick
//! tree over access timestamps counts, for each access, how many lines
//! were last touched after the current line's previous access — O(log n)
//! per access.

use crate::trace::{TraceOp, TraceSource};
use crate::vectorize::CodegenOptions;
use mda_mem::{LineKey, Orientation};
use std::collections::HashMap;

/// Which line granularity to measure distances at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseGranularity {
    /// Conventional 64-byte row lines (every access mapped to its row
    /// line) — the right metric for 1-D hierarchies.
    RowLines,
    /// Orientation-faithful lines: vector ops use their own orientation,
    /// scalars their preference — the metric a logically 2-D cache sees.
    OrientedLines,
}

/// A Fenwick (binary indexed) tree over access timestamps.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Fenwick {
        Fenwick { tree: vec![0; n + 1] }
    }

    fn grow(&mut self, n: usize) {
        if n + 1 > self.tree.len() {
            self.tree.resize((n + 1).next_power_of_two(), 0);
        }
    }

    fn add(&mut self, mut i: usize, v: i64) {
        i += 1;
        self.grow(i);
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + v) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over `[0, i]`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0;
        let mut idx = i.min(self.tree.len() - 1);
        while idx > 0 {
            s += self.tree[idx];
            idx -= idx & idx.wrapping_neg();
        }
        s
    }
}

/// The reuse-distance histogram of one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReuseProfile {
    /// `histogram[d]` = number of accesses with reuse distance exactly `d`
    /// (capped at the largest observed distance).
    histogram: HashMap<u64, u64>,
    /// First-touch (cold) accesses.
    cold: u64,
    /// Total line-granular accesses.
    accesses: u64,
}

impl ReuseProfile {
    /// Computes the profile of `src` under `opts` at `granularity`.
    pub fn collect(
        src: &dyn TraceSource,
        opts: &CodegenOptions,
        granularity: ReuseGranularity,
    ) -> ReuseProfile {
        let mut profile = ReuseProfile::default();
        let mut last_access: HashMap<LineKey, usize> = HashMap::new();
        let mut fenwick = Fenwick::new(1024);
        let mut time = 0usize;

        src.generate(opts, &mut |op| {
            let TraceOp::Mem(m) = op else { return };
            let line = match granularity {
                ReuseGranularity::RowLines => LineKey::containing(m.word, Orientation::Row),
                ReuseGranularity::OrientedLines => LineKey::containing(m.word, m.orient),
            };
            profile.accesses += 1;
            match last_access.insert(line, time) {
                None => {
                    profile.cold += 1;
                }
                Some(prev) => {
                    // Distinct lines touched since `prev` = number of lines
                    // whose last access lies in (prev, time).
                    let later = fenwick.prefix(time) - fenwick.prefix(prev);
                    *profile.histogram.entry(later).or_default() += 1;
                    fenwick.add(prev, -1);
                }
            }
            fenwick.add(time, 1);
            time += 1;
        });
        profile
    }

    /// Total line-granular accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// First-touch accesses (infinite reuse distance).
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Number of distinct lines the trace touches.
    pub fn footprint_lines(&self) -> u64 {
        self.cold
    }

    /// Fully-associative LRU hit rate at a capacity of `lines` cache
    /// lines, in `[0, 1]`.
    pub fn hit_rate_at(&self, lines: u64) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .histogram
            .iter()
            .filter(|(d, _)| **d < lines)
            .map(|(_, n)| *n)
            .sum();
        hits as f64 / self.accesses as f64
    }

    /// The miss curve over the given capacities.
    pub fn miss_curve(&self, capacities: &[u64]) -> Vec<(u64, f64)> {
        capacities.iter().map(|c| (*c, 1.0 - self.hit_rate_at(*c))).collect()
    }

    /// Mean finite reuse distance (None if no line is ever reused).
    pub fn mean_distance(&self) -> Option<f64> {
        let n: u64 = self.histogram.values().sum();
        if n == 0 {
            return None;
        }
        let total: u64 = self.histogram.iter().map(|(d, c)| d * c).sum();
        Some(total as f64 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::ir::{ArrayRef, Loop, LoopNest, Program};
    use crate::layout::LayoutKind;

    fn scalar_opts() -> CodegenOptions {
        CodegenOptions {
            layout: LayoutKind::Tiled2D,
            vectorize_rows: false,
            vectorize_cols: false,
            loop_overhead: 0,
        }
    }

    fn row_scan(rows: i64, cols: i64, passes: i64) -> Program {
        let mut p = Program::new("scan");
        let a = p.array("A", rows as u64, cols as u64);
        p.add_nest(LoopNest {
            loops: vec![
                Loop::constant(0, passes),
                Loop::constant(0, rows),
                Loop::constant(0, cols),
            ],
            refs: vec![ArrayRef::read(a, AffineExpr::var(1), AffineExpr::var(2))],
            flops_per_iter: 0,
        });
        p
    }

    #[test]
    fn single_pass_is_all_cold_at_line_granularity() {
        let p = row_scan(8, 64, 1);
        let r = ReuseProfile::collect(&p, &scalar_opts(), ReuseGranularity::RowLines);
        // 8 scalar accesses per line: 1 cold + 7 distance-0 reuses each.
        assert_eq!(r.accesses(), 8 * 64);
        assert_eq!(r.footprint_lines(), 8 * 64 / 8);
        assert!((r.hit_rate_at(1) - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn second_pass_reuses_at_footprint_distance() {
        // Two passes over 64 lines: pass-2 accesses have distance 63 at
        // line granularity (each line was last touched one full sweep ago).
        let p = row_scan(8, 64, 2);
        let r = ReuseProfile::collect(&p, &scalar_opts(), ReuseGranularity::RowLines);
        let lines = 64u64;
        // A 64-line cache captures everything after the cold pass; a
        // 63-line cache loses the second sweep's long reuses.
        assert!(r.hit_rate_at(lines) > r.hit_rate_at(lines - 16) + 0.05);
        assert_eq!(r.footprint_lines(), lines);
    }

    #[test]
    fn hit_rate_is_monotone_in_capacity() {
        let p = row_scan(16, 32, 3);
        let r = ReuseProfile::collect(&p, &scalar_opts(), ReuseGranularity::RowLines);
        let mut prev = -1.0;
        for c in [1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
            let h = r.hit_rate_at(c);
            assert!(h >= prev, "hit rate dropped at capacity {c}");
            prev = h;
        }
        let curve = r.miss_curve(&[1, 64, 1024]);
        assert!(curve[0].1 >= curve[2].1);
    }

    #[test]
    fn column_vectorization_shrinks_column_reuse_pressure() {
        // A column walk at row-line granularity touches each row line 8
        // times, far apart; with column vectorization (oriented lines) each
        // column line is one access — the footprint the cache must hold
        // drops 8×.
        let mut p = Program::new("colwalk");
        let a = p.array("A", 64, 64);
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, 64), Loop::constant(0, 64)],
            refs: vec![ArrayRef::read(a, AffineExpr::var(1), AffineExpr::var(0))],
            flops_per_iter: 0,
        });
        let conventional =
            ReuseProfile::collect(&p, &scalar_opts(), ReuseGranularity::RowLines);
        let mda =
            ReuseProfile::collect(&p, &CodegenOptions::mda(), ReuseGranularity::OrientedLines);
        assert_eq!(mda.accesses(), conventional.accesses() / 8);
        assert_eq!(mda.cold_misses(), conventional.footprint_lines());
        // Conventional: reusing a row line requires holding a whole
        // column-sweep's worth of lines; a small cache catches nothing.
        assert_eq!(conventional.hit_rate_at(8), 0.0);
    }

    #[test]
    fn empty_trace_behaves() {
        let mut p = Program::new("empty");
        let a = p.array("A", 8, 8);
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, 0)],
            refs: vec![ArrayRef::read(a, AffineExpr::constant(0), AffineExpr::var(0))],
            flops_per_iter: 0,
        });
        let r = ReuseProfile::collect(&p, &scalar_opts(), ReuseGranularity::RowLines);
        assert_eq!(r.accesses(), 0);
        assert_eq!(r.hit_rate_at(1024), 0.0);
        assert_eq!(r.mean_distance(), None);
    }
}
