//! Focused integration tests for code-generation corner cases.

use mda_compiler::expr::AffineExpr;
use mda_compiler::ir::{ArrayRef, Loop, LoopNest, Program};
use mda_compiler::trace::{TraceOp, TraceSource};
use mda_compiler::vectorize::CodegenOptions;
use mda_mem::Orientation;

fn ops(p: &Program, opts: &CodegenOptions) -> Vec<TraceOp> {
    let mut v = Vec::new();
    p.generate(opts, &mut |op| v.push(op));
    v
}

#[test]
fn promoted_invariant_down_a_column_carries_column_preference() {
    // acc[i][0] += X[i][k] with k innermost: the accumulator is invariant
    // in k, and the loop that sweeps it (i) moves its ROW subscript — the
    // promoted scalar ops must carry column preference so a 1P2L hierarchy
    // fetches the accumulator as a column line.
    let mut p = Program::new("colacc");
    let x = p.array("X", 32, 32);
    let acc = p.array("acc", 32, 1);
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(0, 32), Loop::constant(0, 32)],
        refs: vec![
            ArrayRef::read(acc, AffineExpr::var(0), AffineExpr::constant(0)),
            ArrayRef::read(x, AffineExpr::var(0), AffineExpr::var(1)),
            ArrayRef::write(acc, AffineExpr::var(0), AffineExpr::constant(0)),
        ],
        flops_per_iter: 1,
    });
    let mut acc_orients = Vec::new();
    p.generate(&CodegenOptions::mda(), &mut |op| {
        if let TraceOp::Mem(m) = op {
            if !m.vector {
                acc_orients.push(m.orient);
            }
        }
    });
    assert!(!acc_orients.is_empty());
    assert!(
        acc_orients.iter().all(|o| *o == Orientation::Col),
        "promoted accumulator ops must prefer columns"
    );
}

#[test]
fn loop_overhead_knob_scales_compute_volume() {
    let build = |overhead| {
        let mut p = Program::new("t");
        let a = p.array("A", 16, 16);
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, 16), Loop::constant(0, 16)],
            refs: vec![ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1))],
            flops_per_iter: 1,
        });
        let opts = CodegenOptions { loop_overhead: overhead, ..CodegenOptions::mda() };
        let mut compute = 0u64;
        p.generate(&opts, &mut |op| {
            if let TraceOp::Compute(n) = op {
                compute += u64::from(n);
            }
        });
        compute
    };
    let lean = build(0);
    let heavy = build(3);
    // 32 vector chunks: overhead adds 3 µops per chunk.
    assert_eq!(heavy - lean, 3 * 32);
}

#[test]
fn multiple_nests_execute_in_program_order() {
    let mut p = Program::new("phases");
    let a = p.array("A", 16, 16);
    // Nest 1 reads row-wise (stream 0), nest 2 column-wise (stream 1).
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(0, 16), Loop::constant(0, 16)],
        refs: vec![ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1))],
        flops_per_iter: 0,
    });
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(0, 16), Loop::constant(0, 16)],
        refs: vec![ArrayRef::read(a, AffineExpr::var(1), AffineExpr::var(0))],
        flops_per_iter: 0,
    });
    let trace = ops(&p, &CodegenOptions::mda());
    let streams: Vec<u32> = trace
        .iter()
        .filter_map(|op| match op {
            TraceOp::Mem(m) => Some(m.stream),
            _ => None,
        })
        .collect();
    let first_of_1 = streams.iter().position(|s| *s == 1).expect("nest 2 ran");
    assert!(
        streams[..first_of_1].iter().all(|s| *s == 0),
        "all of nest 1 must precede nest 2"
    );
}

#[test]
fn negative_stride_walk_emits_descending_vectors() {
    // for i { for j { read A[i][31 - j] } }: row direction with stride −1;
    // chunks are full lines visited in descending order.
    let mut p = Program::new("rev");
    let a = p.array("A", 32, 32);
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(0, 32), Loop::constant(0, 32)],
        refs: vec![ArrayRef::read(
            a,
            AffineExpr::var(0),
            AffineExpr::scaled_var(1, -1).plus(31),
        )],
        flops_per_iter: 0,
    });
    let trace = ops(&p, &CodegenOptions::mda());
    let vectors = trace
        .iter()
        .filter(|o| matches!(o, TraceOp::Mem(m) if m.vector))
        .count();
    let scalars = trace
        .iter()
        .filter(|o| matches!(o, TraceOp::Mem(m) if !m.vector))
        .count();
    // Descending unit stride peels to line alignment and then vectorizes
    // every chunk exactly once: 32 × 32 / 8 single-line vector ops.
    assert_eq!(vectors, 32 * 32 / 8);
    assert_eq!(scalars, 0);
}

#[test]
fn single_loop_nests_work() {
    let mut p = Program::new("one");
    let a = p.array("A", 1, 64);
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(0, 64)],
        refs: vec![ArrayRef::read(a, AffineExpr::constant(0), AffineExpr::var(0))],
        flops_per_iter: 1,
    });
    let c = mda_compiler::trace::count_ops(&p, &CodegenOptions::mda());
    assert_eq!(c.mem_ops, 8);
    assert_eq!(c.vector_mem_ops, 8);
}

#[test]
fn mixed_vectorizable_and_blocked_nests_coexist() {
    // Nest 1 vectorizes; nest 2 (non-unit stride) stays scalar — per-nest
    // decisions are independent.
    let mut p = Program::new("mixed");
    let a = p.array("A", 32, 64);
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(0, 32), Loop::constant(0, 32)],
        refs: vec![ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1))],
        flops_per_iter: 0,
    });
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(0, 32)],
        refs: vec![ArrayRef::read(a, AffineExpr::constant(0), AffineExpr::scaled_var(0, 2))],
        flops_per_iter: 0,
    });
    let trace = ops(&p, &CodegenOptions::mda());
    let by_stream = |s: u32, vector: bool| {
        trace
            .iter()
            .filter(|o| matches!(o, TraceOp::Mem(m) if m.stream == s && m.vector == vector))
            .count()
    };
    assert_eq!(by_stream(0, true), 32 * 32 / 8);
    assert_eq!(by_stream(0, false), 0);
    assert_eq!(by_stream(1, true), 0);
    assert_eq!(by_stream(1, false), 32);
}
