//! Property tests for iteration-space tiling: semantic preservation on
//! arbitrary rectangular nests.

use mda_compiler::expr::AffineExpr;
use mda_compiler::ir::{ArrayRef, Loop, LoopNest, Program};
use mda_compiler::tiling::tile_program;
use mda_compiler::trace::{TraceOp, TraceSource};
use mda_compiler::vectorize::CodegenOptions;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct NestSpec {
    blocks_i: i64,
    blocks_j: i64,
    refs: Vec<(u8, u8, bool)>,
    tile_i: bool,
    tile_j: bool,
}

fn spec_strategy() -> impl Strategy<Value = NestSpec> {
    (
        1i64..4,
        1i64..4,
        proptest::collection::vec((0u8..3, 0u8..3, any::<bool>()), 1..4),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(blocks_i, blocks_j, refs, tile_i, tile_j)| NestSpec {
            blocks_i,
            blocks_j,
            refs,
            tile_i,
            tile_j,
        })
}

fn build(spec: &NestSpec) -> Program {
    let mut p = Program::new("prop");
    let dim = 8 * spec.blocks_i.max(spec.blocks_j) as u64;
    let a = p.array("A", dim, dim);
    let pick = |w: u8| match w {
        0 => AffineExpr::var(0),
        1 => AffineExpr::var(1),
        _ => AffineExpr::constant(3),
    };
    let refs = spec
        .refs
        .iter()
        .map(|(rp, cp, write)| {
            if *write {
                ArrayRef::write(a, pick(*rp), pick(*cp))
            } else {
                ArrayRef::read(a, pick(*rp), pick(*cp))
            }
        })
        .collect();
    p.add_nest(LoopNest {
        loops: vec![
            Loop::constant(0, 8 * spec.blocks_i),
            Loop::constant(0, 8 * spec.blocks_j),
        ],
        refs,
        flops_per_iter: 1,
    });
    p
}

/// Per-word access counts of the scalar lowering (exact semantics).
fn scalar_histogram(p: &Program) -> HashMap<(u64, bool), u64> {
    let opts = CodegenOptions {
        layout: mda_compiler::LayoutKind::Tiled2D,
        vectorize_rows: false,
        vectorize_cols: false,
        loop_overhead: 0,
    };
    let mut h = HashMap::new();
    p.generate(&opts, &mut |op| {
        if let TraceOp::Mem(m) = op {
            *h.entry((m.word.0, m.write)).or_default() += 1;
        }
    });
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tiling preserves the exact per-word access histogram of the scalar
    /// lowering (it only reorders iterations). Invariant refs are excluded
    /// by construction when tiling changes promotion scope, so this runs
    /// both versions with promotion disabled via the scalar path — counts
    /// may differ only for refs invariant in the innermost loop, which the
    /// generator spec cannot produce here (every ref uses v0 and/or v1 or
    /// is fully constant, and constants are promoted identically per
    /// instance count when both loops are tiled or untouched together).
    #[test]
    fn tiling_preserves_scalar_access_histogram(spec in spec_strategy()) {
        // Refs invariant in the innermost loop are register-promoted once
        // per innermost-loop *instance*; tiling multiplies the number of
        // instances, so their access counts legitimately change (the same
        // effect the blocked-sgemm test in ext_tiling quantifies). Restrict
        // the exact-histogram property to specs without such refs whenever
        // any tiling happens.
        let has_inner_invariant =
            spec.refs.iter().any(|(rp, cp, _)| *rp != 1 && *cp != 1);
        prop_assume!(!has_inner_invariant || (!spec.tile_i && !spec.tile_j));

        let p = build(&spec);
        let mut dims = Vec::new();
        if spec.tile_i {
            dims.push((0usize, 8i64));
        }
        if spec.tile_j {
            dims.push((1usize, 8i64));
        }
        let tiled = tile_program(&p, |_, _| Some(dims.clone())).expect("rectangular");

        let a = scalar_histogram(&p);
        let b = scalar_histogram(&tiled);
        // Reads must match exactly; writes too.
        prop_assert_eq!(a, b);
    }

    /// Tiled nests always validate and keep the right depth.
    #[test]
    fn tiled_nests_validate(spec in spec_strategy()) {
        let p = build(&spec);
        let n_tiled = usize::from(spec.tile_i) + usize::from(spec.tile_j);
        let mut dims = Vec::new();
        if spec.tile_i {
            dims.push((0usize, 8i64));
        }
        if spec.tile_j {
            dims.push((1usize, 8i64));
        }
        let tiled = tile_program(&p, |_, _| Some(dims.clone())).expect("rectangular");
        for nest in tiled.nests() {
            prop_assert_eq!(nest.validate(), Ok(()));
            prop_assert_eq!(nest.depth(), 2 + n_tiled);
        }
    }
}
