//! Property tests for the code generator: vectorization must never change
//! which data a program touches, only how it is packaged.

use mda_compiler::expr::AffineExpr;
use mda_compiler::ir::{ArrayRef, Loop, LoopNest, Program};
use mda_compiler::layout::LayoutKind;
use mda_compiler::trace::{TraceOp, TraceSource};
use mda_compiler::vectorize::CodegenOptions;
use mda_mem::{LineKey, Orientation, WordAddr};
use proptest::prelude::*;
use std::collections::HashSet;

/// A random 2-D walk: loops over (i, j) with a reference whose subscripts
/// pick i, j, or a constant per dimension.
#[derive(Debug, Clone)]
struct WalkSpec {
    rows: u64,
    cols: u64,
    row_pick: u8, // 0 = i, 1 = j, 2 = const
    col_pick: u8,
    write: bool,
    aligned: bool,
}

fn walk_strategy() -> impl Strategy<Value = WalkSpec> {
    (1u64..5, 1u64..5, 0u8..3, 0u8..3, any::<bool>(), any::<bool>()).prop_map(
        |(rb, cb, row_pick, col_pick, write, aligned)| WalkSpec {
            rows: rb * 8,
            cols: cb * 8,
            row_pick,
            col_pick,
            write,
            aligned,
        },
    )
}

fn build(spec: &WalkSpec) -> Program {
    let mut p = Program::new("prop");
    // Square array so either loop variable can index either dimension.
    let dim = spec.rows.max(spec.cols);
    let a = p.array("A", dim, dim);
    let pick = |which: u8| match which {
        0 => AffineExpr::var(0),
        1 => AffineExpr::var(1),
        _ => AffineExpr::constant(0),
    };
    let (lo_i, hi_i) = if spec.aligned { (0, spec.rows as i64) } else { (1, spec.rows as i64 - 1) };
    let r = if spec.write {
        ArrayRef::write(a, pick(spec.row_pick), pick(spec.col_pick))
    } else {
        ArrayRef::read(a, pick(spec.row_pick), pick(spec.col_pick))
    };
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(lo_i, hi_i), Loop::constant(0, spec.cols as i64)],
        refs: vec![r],
        flops_per_iter: 1,
    });
    p
}

/// All words touched by the trace (vector ops expanded to their lines).
fn touched_words(p: &Program, opts: &CodegenOptions) -> HashSet<WordAddr> {
    let mut words = HashSet::new();
    p.generate(opts, &mut |op| {
        if let TraceOp::Mem(m) = op {
            if m.vector {
                words.extend(LineKey::containing(m.word, m.orient).words());
            } else {
                words.insert(m.word);
            }
        }
    });
    words
}

fn scalar_opts(layout: LayoutKind) -> CodegenOptions {
    CodegenOptions { layout, vectorize_rows: false, vectorize_cols: false, loop_overhead: 0 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The MDA-vectorized trace covers every word the scalar trace touches.
    #[test]
    fn vectorization_preserves_coverage(spec in walk_strategy()) {
        let p = build(&spec);
        let scalar = touched_words(&p, &scalar_opts(LayoutKind::Tiled2D));
        let vectored = touched_words(&p, &CodegenOptions::mda());
        for w in &scalar {
            prop_assert!(vectored.contains(w), "vector trace misses {w}");
        }
        // Over-fetch is bounded by line rounding: at most 2× the scalar
        // coverage (an unaligned vector op touches at most two lines).
        prop_assert!(vectored.len() <= scalar.len().max(1) * 2);
    }

    /// Aligned full-rectangle walks cover exactly the same words.
    #[test]
    fn aligned_walks_cover_exactly(mut spec in walk_strategy()) {
        spec.aligned = true;
        let p = build(&spec);
        let scalar = touched_words(&p, &scalar_opts(LayoutKind::Tiled2D));
        let vectored = touched_words(&p, &CodegenOptions::mda());
        prop_assert_eq!(scalar, vectored);
    }

    /// Generation is deterministic.
    #[test]
    fn generation_is_deterministic(spec in walk_strategy()) {
        let p = build(&spec);
        let mut a = Vec::new();
        let mut b = Vec::new();
        p.generate(&CodegenOptions::mda(), &mut |op| a.push(op));
        p.generate(&CodegenOptions::mda(), &mut |op| b.push(op));
        prop_assert_eq!(a, b);
    }

    /// The baseline target never emits column vectors, under any layout.
    #[test]
    fn baseline_emits_no_column_vectors(spec in walk_strategy()) {
        let p = build(&spec);
        for opts in [CodegenOptions::baseline(), CodegenOptions::baseline_on_mda_layout()] {
            p.generate(&opts, &mut |op| {
                if let TraceOp::Mem(m) = op {
                    assert!(
                        !(m.vector && m.orient == Orientation::Col),
                        "baseline produced a column vector op"
                    );
                }
            });
        }
    }

    /// Every generated address stays inside the planned layout footprint.
    #[test]
    fn addresses_stay_in_bounds(spec in walk_strategy()) {
        let p = build(&spec);
        for opts in [CodegenOptions::baseline(), CodegenOptions::mda()] {
            let bound = p.footprint_bytes(&opts);
            p.generate(&opts, &mut |op| {
                if let TraceOp::Mem(m) = op {
                    let top = if m.vector {
                        LineKey::containing(m.word, m.orient)
                            .words()
                            .map(|w| w.byte_addr())
                            .max()
                            .unwrap()
                    } else {
                        m.word.byte_addr()
                    };
                    assert!(top + 8 <= bound, "address {top:#x} beyond footprint {bound:#x}");
                }
            });
        }
    }

    /// Vector ops always address offset zero of a line of their own
    /// orientation (the cache interface contract).
    #[test]
    fn vector_ops_are_line_aligned(spec in walk_strategy()) {
        let p = build(&spec);
        p.generate(&CodegenOptions::mda(), &mut |op| {
            if let TraceOp::Mem(m) = op {
                if m.vector {
                    let line = LineKey::containing(m.word, m.orient);
                    assert_eq!(line.offset_of(m.word), Some(0));
                }
            }
        });
    }
}
