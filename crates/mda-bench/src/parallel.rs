//! Zero-dependency parallel execution for the harness.
//!
//! Every `(experiment × kernel × design × config-point)` cell of the
//! evaluation is an independent, deterministic simulation, so the whole
//! harness scales with cores. This module provides the fan-out layer the
//! experiments submit their cells through:
//!
//! * [`par_map`] — runs a closure over a slice on a scoped worker pool
//!   (plain `std::thread::scope`; no external crates) and reassembles the
//!   results **in input order**, so every table and CSV downstream is
//!   byte-identical to a sequential run.
//! * [`Cell`]/[`run_cells`] — the labeled `(kernel, input, system)` unit
//!   the figure experiments fan out.
//! * [`jobs`]/[`set_jobs`] — worker-count resolution: an explicit
//!   [`set_jobs`] override (the `--jobs` CLI flag) beats the `MDA_JOBS`
//!   environment variable, which beats
//!   [`std::thread::available_parallelism`]. One job reproduces the
//!   sequential harness exactly (no worker threads are spawned at all).
//! * [`take_cell_count`] — a process-wide counter of executed cells, read
//!   by the `figures` binary's `--bench-timings` mode.

use crate::experiments::run_kernel;
use mda_sim::{SimReport, SystemConfig};
use mda_workloads::Kernel;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Explicit worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cells executed since the last [`take_cell_count`].
static CELLS: AtomicU64 = AtomicU64::new(0);

/// Sets the worker count explicitly (the `--jobs N` CLI flag). Passing 0
/// clears the override.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count used by [`par_map`]: the [`set_jobs`] override if set,
/// else a positive integer `MDA_JOBS` environment variable, else
/// [`std::thread::available_parallelism`].
pub fn jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("MDA_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Returns the number of cells executed since the previous call, resetting
/// the counter.
pub fn take_cell_count() -> u64 {
    CELLS.swap(0, Ordering::SeqCst)
}

/// Maps `f` over `items` on [`jobs`] workers, returning results in input
/// order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, jobs(), f)
}

/// Maps `f` over `items` on an explicit number of workers, returning
/// results in input order.
///
/// With `workers <= 1` (or fewer than two items) the map runs inline on
/// the calling thread — exactly the sequential harness. Otherwise a scoped
/// pool of `min(workers, items.len())` threads claims items through a
/// shared index counter and writes each result into its input slot; a
/// panicking worker propagates the panic to the caller once the scope
/// joins.
pub fn par_map_with<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    CELLS.fetch_add(items.len() as u64, Ordering::SeqCst);
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed index writes its slot")
        })
        .collect()
}

/// One simulation cell of an experiment: a labeled kernel × input-size ×
/// system-configuration point.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Display label, e.g. `fig13/1P2L/sgemm` (diagnostics and timings).
    pub label: String,
    /// The kernel to run.
    pub kernel: Kernel,
    /// Input size (matrix dimension).
    pub n: u64,
    /// The system to run it on.
    pub config: SystemConfig,
}

impl Cell {
    /// Creates a cell.
    pub fn new(label: impl Into<String>, kernel: Kernel, n: u64, config: SystemConfig) -> Cell {
        Cell { label: label.into(), kernel, n, config }
    }
}

/// Simulates every cell on the worker pool, returning reports in cell
/// order.
pub fn run_cells(cells: &[Cell]) -> Vec<SimReport> {
    par_map(cells, |c| run_kernel(c.kernel, c.n, &c.config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_sim::HierarchyKind;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..103).collect();
        for workers in [1, 2, 4, 7] {
            let out = par_map_with(&items, workers, |x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_workers_runs_inline() {
        let out = par_map_with(&[1, 2, 3], 0, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map_with(&[] as &[u32], 8, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn run_cells_matches_sequential_run_kernel() {
        let cfg = SystemConfig::tiny(HierarchyKind::P1L2DifferentSet);
        let cells: Vec<Cell> = Kernel::all()
            .iter()
            .map(|k| Cell::new(k.name(), *k, 24, cfg.clone()))
            .collect();
        let parallel = par_map_with(&cells, 4, |c| run_kernel(c.kernel, c.n, &c.config));
        for (cell, report) in cells.iter().zip(&parallel) {
            let sequential = run_kernel(cell.kernel, cell.n, &cell.config);
            assert_eq!(report, &sequential, "{} diverged across threads", cell.label);
        }
    }

    #[test]
    fn cell_counter_accumulates_and_resets() {
        take_cell_count();
        par_map_with(&[1, 2, 3], 1, |x| *x);
        par_map_with(&[1, 2], 2, |x| *x);
        assert_eq!(take_cell_count(), 5);
        assert_eq!(take_cell_count(), 0);
    }
}
