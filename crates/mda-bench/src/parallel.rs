//! Zero-dependency parallel execution for the harness.
//!
//! Every `(experiment × kernel × design × config-point)` cell of the
//! evaluation is an independent, deterministic simulation, so the whole
//! harness scales with cores. This module provides the fan-out layer the
//! experiments submit their cells through:
//!
//! * [`par_map`]/[`par_try_map`] — run a closure over a slice on a scoped
//!   worker pool (plain `std::thread::scope`; no external crates) and
//!   reassemble the results **in input order**, so every table and CSV
//!   downstream is byte-identical to a sequential run. Each cell runs
//!   under `catch_unwind`: a panicking cell is retried once, and a cell
//!   that fails twice becomes an `Err` (the `try` variants) or aborts the
//!   map (`par_map`, preserving its infallible contract) — it never
//!   poisons the pool or takes the other cells down with it.
//! * [`Cell`]/[`run_cells`] — the labeled `(kernel, input, system)` unit
//!   the figure experiments fan out. `run_cells` reports failures as
//!   labeled [`CellFailure`]s so experiments render them as degraded
//!   cells instead of crashing.
//! * [`jobs`]/[`set_jobs`] — worker-count resolution: an explicit
//!   [`set_jobs`] override (the `--jobs` CLI flag) beats the `MDA_JOBS`
//!   environment variable, which beats
//!   [`std::thread::available_parallelism`]. One job reproduces the
//!   sequential harness exactly (no worker threads are spawned at all).
//! * [`take_cell_count`] — a process-wide counter of executed cells, read
//!   by the `figures` binary's `--bench-timings` mode.

use crate::experiments::run_kernel;
use mda_sim::{SimReport, SystemConfig};
use mda_workloads::Kernel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// Explicit worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cells executed since the last [`take_cell_count`].
static CELLS: AtomicU64 = AtomicU64::new(0);

/// Sets the worker count explicitly (the `--jobs N` CLI flag). Passing 0
/// clears the override.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count used by [`par_map`]: the [`set_jobs`] override if set,
/// else a positive integer `MDA_JOBS` environment variable, else
/// [`std::thread::available_parallelism`]. A malformed or non-positive
/// `MDA_JOBS` is ignored with a one-time warning on stderr.
pub fn jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("MDA_JOBS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => {
                static WARNED: Once = Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring MDA_JOBS='{v}' (expected a positive integer); \
                         falling back to available parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Returns the number of cells executed since the previous call, resetting
/// the counter.
pub fn take_cell_count() -> u64 {
    CELLS.swap(0, Ordering::SeqCst)
}

/// Best-effort rendering of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `f` over `items` on [`jobs`] workers, returning results in input
/// order.
///
/// # Panics
/// Panics if a cell panics twice in a row (once plus the automatic retry);
/// use [`par_try_map`] to handle failures gracefully.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, jobs(), f)
}

/// Maps `f` over `items` on an explicit number of workers, returning
/// results in input order. Panic-isolation contract as in [`par_map`].
///
/// # Panics
/// Panics if a cell panics twice in a row.
pub fn par_map_with<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_try_map_with(items, workers, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|msg| panic!("parallel cell failed after retry: {msg}")))
        .collect()
}

/// Fallible variant of [`par_map`] on [`jobs`] workers: each cell's panic
/// is isolated, retried once, and surfaced as `Err(message)` if it fails
/// again.
pub fn par_try_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_try_map_with(items, jobs(), f)
}

/// Maps `f` over `items` on an explicit number of workers with panic
/// isolation, returning per-item `Result`s in input order.
///
/// With `workers <= 1` (or fewer than two items) the map runs inline on
/// the calling thread — exactly the sequential harness. Otherwise a scoped
/// pool of `min(workers, items.len())` threads claims items through a
/// shared index counter and writes each result into its input slot.
///
/// Each invocation of `f` runs under [`catch_unwind`]: a panicking cell is
/// retried once (transient failures — e.g. resource exhaustion — recover),
/// and a cell that panics twice resolves to `Err` with the panic message
/// while every other cell's result is preserved.
pub fn par_try_map_with<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    CELLS.fetch_add(items.len() as u64, Ordering::SeqCst);
    let attempt = |item: &T| -> Result<R, String> {
        match catch_unwind(AssertUnwindSafe(|| f(item))) {
            Ok(r) => Ok(r),
            Err(payload) => {
                eprintln!(
                    "warning: harness cell panicked ({}); retrying once",
                    panic_message(payload.as_ref())
                );
                catch_unwind(AssertUnwindSafe(|| f(item)))
                    .map_err(|payload| panic_message(payload.as_ref()))
            }
        }
    };

    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().map(attempt).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, String>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = attempt(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed index writes its slot")
        })
        .collect()
}

/// One simulation cell of an experiment: a labeled kernel × input-size ×
/// system-configuration point.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Display label, e.g. `fig13/1P2L/sgemm` (diagnostics and timings).
    pub label: String,
    /// The kernel to run.
    pub kernel: Kernel,
    /// Input size (matrix dimension).
    pub n: u64,
    /// The system to run it on.
    pub config: SystemConfig,
}

impl Cell {
    /// Creates a cell.
    pub fn new(label: impl Into<String>, kernel: Kernel, n: u64, config: SystemConfig) -> Cell {
        Cell { label: label.into(), kernel, n, config }
    }
}

/// A cell that panicked twice and was rendered degraded instead of taking
/// the run down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The failed cell's label.
    pub label: String,
    /// The panic message of the second (post-retry) failure.
    pub message: String,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell '{}' degraded: {}", self.label, self.message)
    }
}

/// The outcome of one harness cell: a report, or a labeled failure.
pub type CellResult = Result<SimReport, CellFailure>;

/// Deliberate-failure hook for exercising the degraded-cell path end to
/// end (used by `scripts/verify.sh`): when the `MDA_PANIC_CELL`
/// environment variable is set, any cell whose label contains its value
/// panics. Read once per process so the harness stays deterministic.
fn deliberate_panic_check(label: &str) {
    static PANIC_CELL: OnceLock<Option<String>> = OnceLock::new();
    let target = PANIC_CELL
        .get_or_init(|| std::env::var("MDA_PANIC_CELL").ok().filter(|s| !s.is_empty()));
    if let Some(t) = target {
        if label.contains(t.as_str()) {
            panic!("deliberate MDA_PANIC_CELL failure in '{label}'");
        }
    }
}

/// Simulates every cell on the worker pool, returning per-cell outcomes in
/// cell order. A cell that panics (twice, after the automatic retry) comes
/// back as a labeled [`CellFailure`] with the other cells' reports intact.
pub fn run_cells(cells: &[Cell]) -> Vec<CellResult> {
    par_try_map(cells, |c| {
        deliberate_panic_check(&c.label);
        run_kernel(c.kernel, c.n, &c.config)
    })
    .into_iter()
    .zip(cells)
    .map(|(r, c)| r.map_err(|message| CellFailure { label: c.label.clone(), message }))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_sim::HierarchyKind;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..103).collect();
        for workers in [1, 2, 4, 7] {
            let out = par_map_with(&items, workers, |x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_workers_runs_inline() {
        let out = par_map_with(&[1, 2, 3], 0, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map_with(&[] as &[u32], 8, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn run_cells_matches_sequential_run_kernel() {
        let cfg = SystemConfig::tiny(HierarchyKind::P1L2DifferentSet);
        let cells: Vec<Cell> = Kernel::all()
            .iter()
            .map(|k| Cell::new(k.name(), *k, 24, cfg.clone()))
            .collect();
        let parallel = par_map_with(&cells, 4, |c| run_kernel(c.kernel, c.n, &c.config));
        for (cell, report) in cells.iter().zip(&parallel) {
            let sequential = run_kernel(cell.kernel, cell.n, &cell.config);
            assert_eq!(report, &sequential, "{} diverged across threads", cell.label);
        }
    }

    #[test]
    fn cell_counter_accumulates_and_resets() {
        take_cell_count();
        par_map_with(&[1, 2, 3], 1, |x| *x);
        par_map_with(&[1, 2], 2, |x| *x);
        assert_eq!(take_cell_count(), 5);
        assert_eq!(take_cell_count(), 0);
    }

    #[test]
    fn persistent_panic_degrades_only_its_cell() {
        for workers in [1, 4] {
            let items = [1u32, 13, 3];
            let out = par_try_map_with(&items, workers, |x| {
                if *x == 13 {
                    panic!("unlucky cell {x}");
                }
                x * 2
            });
            assert_eq!(out[0], Ok(2), "workers={workers}");
            assert_eq!(out[2], Ok(6), "workers={workers}");
            let err = out[1].as_ref().expect_err("cell 13 must fail");
            assert!(err.contains("unlucky cell 13"), "workers={workers}: {err}");
        }
    }

    #[test]
    fn transient_panic_is_retried_and_recovers() {
        let flaked = AtomicUsize::new(0);
        let out = par_try_map_with(&[7u32], 1, |x| {
            if flaked.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient failure");
            }
            x + 1
        });
        assert_eq!(out, vec![Ok(8)]);
        assert_eq!(flaked.load(Ordering::SeqCst), 2, "exactly one retry");
    }

    #[test]
    #[should_panic(expected = "parallel cell failed after retry")]
    fn par_map_still_aborts_on_persistent_failure() {
        let _ = par_map_with(&[1u32], 1, |_| -> u32 { panic!("always broken") });
    }

    #[test]
    fn degraded_cell_keeps_neighbors_intact() {
        // An invalid config panics inside MainMemory::new deterministically
        // (both the first attempt and the retry), exercising the real
        // degraded path without environment variables.
        let good = SystemConfig::tiny(HierarchyKind::Baseline1P1L);
        let mut bad = good.clone();
        bad.mem.channels = 0;
        let cells = [
            Cell::new("ok/left", Kernel::Sgemm, 16, good.clone()),
            Cell::new("broken/middle", Kernel::Sgemm, 16, bad),
            Cell::new("ok/right", Kernel::Sgemm, 16, good),
        ];
        let out = run_cells(&cells);
        assert!(out[0].is_ok());
        assert!(out[2].is_ok());
        let fail = out[1].as_ref().expect_err("invalid config must degrade");
        assert_eq!(fail.label, "broken/middle");
        assert!(
            fail.message.contains("invalid SystemConfig") || fail.message.contains("invalid MemConfig"),
            "unexpected message: {}",
            fail.message
        );
        assert!(fail.to_string().contains("degraded"));
    }
}
