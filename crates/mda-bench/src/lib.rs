//! # mda-bench — the MDACache evaluation harness
//!
//! One runner per table and figure of the paper's evaluation (Sec. VI–VIII).
//! Each experiment module returns structured results (so integration tests
//! can assert the paper's qualitative claims) and can render itself as an
//! aligned text table mirroring the paper's series.
//!
//! Run everything with the `figures` binary:
//!
//! ```text
//! cargo run -p mda-bench --release --bin figures -- all --scale scaled
//! ```
//!
//! Scales:
//! * `tiny`   — 64×64 inputs, 4/8/16 KB caches (seconds; CI and Criterion)
//! * `scaled` — 256×256 inputs, 16/64/256 KB caches (default; the paper's
//!   working-set-to-capacity ratios at 4× reduction)
//! * `paper`  — 512×512 inputs against the full Table I machine (slow)

pub mod bench_sim;
pub mod chart;
pub mod experiments;
pub mod parallel;
pub mod scale;
pub mod table;

pub use experiments::{
    ablation, designs, ext_energy, ext_multicore, ext_reliability, ext_tiling, fig10, fig11, fig12, fig13, fig14,
    fig15, fig16, fig17, table1, FigureTable,
};
pub use parallel::{CellFailure, CellResult};
pub use scale::Scale;
