//! Minimal aligned text-table rendering for the harness output.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header cells.
    pub fn new(header: Vec<String>) -> TextTable {
        TextTable { header, rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn push_row(&mut self, mut row: Vec<String>) {
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;

        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        // Cells are written straight into the output buffer: no per-cell
        // `String` or per-row join allocation.
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, width)) in cells.iter().zip(widths.iter().copied()).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}");
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats a ratio with three decimals; a NaN marks a degraded (failed)
/// harness cell.
pub fn fmt_ratio(v: f64) -> String {
    if v.is_nan() {
        "degraded".to_string()
    } else {
        format!("{v:.3}")
    }
}

/// Formats a percentage with one decimal.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["kernel".into(), "norm".into()]);
        t.push_row(vec!["sgemm".into(), "0.3".into()]);
        t.push_row(vec!["x".into(), "12.125".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("kernel"));
        assert!(lines[2].ends_with("0.3"));
        assert_eq!(lines[2].len(), lines[3].len(), "rows align");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a".into(), "b".into(), "c".into()]);
        t.push_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ratio(0.3333333), "0.333");
        assert_eq!(fmt_ratio(f64::NAN), "degraded");
        assert_eq!(fmt_pct(0.725), "72.5%");
    }
}
