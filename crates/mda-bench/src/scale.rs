//! Experiment scales: the paper's full configuration and shrunken variants
//! that preserve working-set-to-capacity ratios.

use mda_sim::{HierarchyKind, SystemConfig};

/// How large to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// 64×64 inputs, 4 KB / 8 KB / 16 KB caches — seconds per figure.
    Tiny,
    /// 256×256 inputs, 16 KB / 64 KB / 256 KB caches — the default; the
    /// paper's non-resident ratios at 4× reduction.
    Scaled,
    /// 512×512 inputs against the unmodified Table I machine.
    Paper,
}

impl Scale {
    /// Parses a scale name.
    ///
    /// # Errors
    /// Returns the unrecognized input.
    pub fn parse(s: &str) -> Result<Scale, String> {
        match s {
            "tiny" => Ok(Scale::Tiny),
            "scaled" => Ok(Scale::Scaled),
            "paper" => Ok(Scale::Paper),
            other => Err(format!("unknown scale '{other}' (tiny|scaled|paper)")),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Scaled => "scaled",
            Scale::Paper => "paper",
        }
    }

    /// The matrix dimension used at this scale (the paper's larger,
    /// non-cache-resident input).
    pub fn input(&self) -> u64 {
        match self {
            Scale::Tiny => 64,
            Scale::Scaled => 256,
            Scale::Paper => 512,
        }
    }

    /// The smaller input (the paper's 256×256 companion size, used by the
    /// Fig. 10 comparison and the Fig. 13 cache-resident study).
    pub fn small_input(&self) -> u64 {
        self.input() / 2
    }

    /// The default system for `kind` at this scale (the "1 MB LLC"
    /// equivalent).
    pub fn system(&self, kind: HierarchyKind) -> SystemConfig {
        match self {
            Scale::Tiny => SystemConfig::tiny(kind),
            Scale::Scaled => SystemConfig::scaled(kind),
            Scale::Paper => SystemConfig::paper(kind),
        }
    }

    /// The system with an explicit LLC capacity (Fig. 12 sweep).
    pub fn system_with_llc(&self, kind: HierarchyKind, llc: u64) -> SystemConfig {
        let mut cfg = self.system(kind);
        cfg.l3 = Some(mda_cache::CacheConfig::l3(llc));
        cfg
    }

    /// The Fig. 12 LLC sweep: the paper's 1 / 1.5 / 2 / 4 MB, divided by
    /// the scale factor.
    pub fn llc_sweep(&self) -> [u64; 4] {
        let mb = 1024 * 1024;
        let div = match self {
            Scale::Tiny => 64,
            Scale::Scaled => 4,
            Scale::Paper => 1,
        };
        [mb / div, 3 * mb / 2 / div, 2 * mb / div, 4 * mb / div]
    }

    /// The Fig. 13 cache-resident system: two levels, LLC sized to hold the
    /// small input's working set (2 MB in the paper).
    pub fn cache_resident_system(&self, kind: HierarchyKind) -> SystemConfig {
        let mut cfg = match self {
            Scale::Paper => SystemConfig::paper_cache_resident(kind),
            _ => {
                let mut c = self.system(kind);
                let div = if *self == Scale::Tiny { 64 } else { 4 };
                c.l2.size_bytes = 2 * 1024 * 1024 / div;
                c.l3 = None;
                c
            }
        };
        cfg.default_input = self.small_input();
        cfg
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in [Scale::Tiny, Scale::Scaled, Scale::Paper] {
            assert_eq!(Scale::parse(s.name()), Ok(s));
        }
        assert!(Scale::parse("huge").is_err());
    }

    #[test]
    fn ratios_are_preserved_across_scales() {
        // input² × 8 B per matrix over LLC bytes must match the paper's
        // ratio (512² × 8 / 1 MB = 2).
        for s in [Scale::Tiny, Scale::Scaled, Scale::Paper] {
            let cfg = s.system(HierarchyKind::Baseline1P1L);
            let llc = cfg.l3.expect("three-level").size_bytes;
            let ratio = (s.input() * s.input() * 8) as f64 / llc as f64;
            assert!((ratio - 2.0).abs() < 1e-9, "{s}: ratio {ratio}");
        }
    }

    #[test]
    fn llc_sweep_is_increasing() {
        for s in [Scale::Tiny, Scale::Scaled, Scale::Paper] {
            let sweep = s.llc_sweep();
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(Scale::Paper.llc_sweep()[0], 1024 * 1024);
    }

    #[test]
    fn cache_resident_is_two_level_and_roomy() {
        for s in [Scale::Tiny, Scale::Scaled, Scale::Paper] {
            let cfg = s.cache_resident_system(HierarchyKind::P1L2DifferentSet);
            assert_eq!(cfg.num_levels(), 2);
            let ws = s.small_input() * s.small_input() * 8;
            assert!(cfg.l2.size_bytes >= ws, "{s}: LLC holds one matrix");
        }
    }
}
