//! Minimal ASCII charting for the harness: sparklines and time-series
//! bands, used by the Fig. 15 occupancy output so the rise/fall shape is
//! visible at a glance in terminal output.

/// Eight-level block characters, low to high.
const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` (in `[0, 1]`) as a sparkline string.
pub fn sparkline(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| {
            let clamped = v.clamp(0.0, 1.0);
            let idx = ((clamped * (LEVELS.len() as f64)) as usize).min(LEVELS.len() - 1);
            LEVELS[idx]
        })
        .collect()
}

/// Downsamples `values` to at most `width` points by averaging buckets.
pub fn downsample(values: &[f64], width: usize) -> Vec<f64> {
    if values.is_empty() || width == 0 {
        return Vec::new();
    }
    if values.len() <= width {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(width);
    for b in 0..width {
        let lo = b * values.len() / width;
        let hi = ((b + 1) * values.len() / width).max(lo + 1);
        let bucket = &values[lo..hi.min(values.len())];
        out.push(bucket.iter().sum::<f64>() / bucket.len() as f64);
    }
    out
}

/// Renders a labelled sparkline row: `label |▁▂▅███| min→max`.
pub fn labelled_sparkline(label: &str, values: &[f64], width: usize) -> String {
    let ds = downsample(values, width);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(0.0f64, f64::max);
    if ds.is_empty() {
        return format!("{label:>8} |{}|", " ".repeat(width));
    }
    format!(
        "{label:>8} |{}| {:>5.1}%→{:>5.1}% (peak {:>5.1}%)",
        sparkline(&ds),
        values.first().copied().unwrap_or(0.0) * 100.0,
        values.last().copied().unwrap_or(0.0) * 100.0,
        if max.is_finite() { max * 100.0 } else { 0.0 },
    )
    .replace("inf", &format!("{:.1}", min))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '█');
    }

    #[test]
    fn sparkline_clamps_out_of_range() {
        let s = sparkline(&[-3.0, 7.5]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars, vec!['▁', '█']);
    }

    #[test]
    fn downsample_averages_buckets() {
        let v: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let ds = downsample(&v, 10);
        assert_eq!(ds.len(), 10);
        assert!(ds.windows(2).all(|w| w[0] < w[1]), "monotone input stays monotone");
        // Short inputs pass through untouched.
        assert_eq!(downsample(&[0.5, 0.7], 10), vec![0.5, 0.7]);
        assert!(downsample(&[], 10).is_empty());
        assert!(downsample(&[0.1], 0).is_empty());
    }

    #[test]
    fn labelled_row_mentions_endpoints() {
        let rise: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        let row = labelled_sparkline("L3", &rise, 16);
        assert!(row.contains("L3"));
        assert!(row.contains("0.0%"));
        assert!(row.contains("98.0%"));
    }
}
