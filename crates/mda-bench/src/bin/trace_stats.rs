//! Trace tooling CLI: dump a kernel's compiled trace to the binary format,
//! and analyze traces (op mix, Fig. 10-style volume split, reuse-distance
//! miss curves at both line granularities).
//!
//! ```text
//! trace-stats dump <kernel> <n> <baseline|mda> <out.trace>
//! trace-stats analyze <in.trace>
//! trace-stats compare <kernel> <n>      # baseline vs MDA locality, inline
//! ```

use mda_bench::chart;
use mda_bench::table::TextTable;
use mda_compiler::reuse::{ReuseGranularity, ReuseProfile};
use mda_compiler::trace::{access_mix, count_ops, TraceSource};
use mda_compiler::tracefile::{write_trace, RecordedTrace};
use mda_compiler::CodegenOptions;
use mda_workloads::Kernel;
use std::fs::File;

fn usage() -> ! {
    eprintln!(
        "usage: trace-stats dump <kernel> <n> <baseline|mda> <out.trace>\n       \
         trace-stats analyze <in.trace>\n       \
         trace-stats compare <kernel> <n>"
    );
    std::process::exit(2);
}

fn parse_target(s: &str) -> CodegenOptions {
    match s {
        "baseline" => CodegenOptions::baseline(),
        "mda" => CodegenOptions::mda(),
        other => {
            eprintln!("unknown target '{other}' (baseline|mda)");
            usage()
        }
    }
}

fn analyze(src: &dyn TraceSource, opts: &CodegenOptions) {
    let counts = count_ops(src, opts);
    println!(
        "{}: {} memory µops ({} vector), {} compute µops, {} KB touched",
        src.name(),
        counts.mem_ops,
        counts.vector_mem_ops,
        counts.compute_uops,
        counts.bytes / 1024
    );

    let mix = access_mix(src, opts);
    let (rs, rv, cs, cv) = mix.fractions();
    println!(
        "  volume: {:.1}% row-scalar, {:.1}% row-vector, {:.1}% col-scalar, {:.1}% col-vector",
        rs * 100.0,
        rv * 100.0,
        cs * 100.0,
        cv * 100.0
    );

    for (label, granularity) in [
        ("row-line reuse", ReuseGranularity::RowLines),
        ("oriented-line reuse", ReuseGranularity::OrientedLines),
    ] {
        let profile = ReuseProfile::collect(src, opts, granularity);
        let caps: Vec<u64> = (0..14).map(|i| 1u64 << i).collect();
        let curve = profile.miss_curve(&caps);
        let misses: Vec<f64> = curve.iter().map(|(_, m)| *m).collect();
        println!(
            "  {label}: {} lines footprint, mean distance {:.1}",
            profile.footprint_lines(),
            profile.mean_distance().unwrap_or(0.0)
        );
        println!(
            "    miss curve 1→8K lines: {}",
            chart::sparkline(&misses)
        );
        let mut t = TextTable::new(vec!["capacity (lines)".into(), "miss rate".into()]);
        for (c, m) in curve.iter().step_by(3) {
            t.push_row(vec![format!("{c}"), format!("{:.3}", m)]);
        }
        for line in t.render().lines() {
            println!("    {line}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("dump") => {
            let [_, kernel, n, target, out] = &args[..] else { usage() };
            let kernel = Kernel::parse(kernel).unwrap_or_else(|e| {
                eprintln!("{e}");
                usage()
            });
            let n: u64 = n.parse().unwrap_or_else(|_| usage());
            let opts = parse_target(target);
            let src = kernel.build(n);
            let file = File::create(out).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                std::process::exit(1);
            });
            match write_trace(src.as_ref(), &opts, file) {
                Ok(records) => println!("wrote {records} records to {out}"),
                Err(e) => {
                    eprintln!("write failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("analyze") => {
            let [_, input] = &args[..] else { usage() };
            let file = File::open(input).unwrap_or_else(|e| {
                eprintln!("cannot open {input}: {e}");
                std::process::exit(1);
            });
            let trace = RecordedTrace::read(input.as_str(), file).unwrap_or_else(|e| {
                eprintln!("bad trace file: {e}");
                std::process::exit(1);
            });
            // Recorded traces replay verbatim; the options are inert.
            analyze(&trace, &CodegenOptions::mda());
        }
        Some("compare") => {
            let [_, kernel, n] = &args[..] else { usage() };
            let kernel = Kernel::parse(kernel).unwrap_or_else(|e| {
                eprintln!("{e}");
                usage()
            });
            let n: u64 = n.parse().unwrap_or_else(|_| usage());
            let src = kernel.build(n);
            println!("== conventional target ==");
            analyze(src.as_ref(), &CodegenOptions::baseline());
            println!("\n== MDA target ==");
            analyze(src.as_ref(), &CodegenOptions::mda());
        }
        _ => usage(),
    }
}
