//! Design-space exploration CLI: sweep one system parameter across its
//! range for one kernel, printing normalized cycles per design.
//!
//! ```text
//! sweep <parameter> [--kernel sgemm] [--scale tiny|scaled|paper] [--jobs N]
//!
//! parameters:
//!   llc        LLC capacity (the Fig. 12 axis, extended)
//!   mshrs      L1 MSHR count (miss-level parallelism)
//!   channels   memory channels
//!   prefetch   baseline prefetch degree
//!   subbuf     open row/column buffers per bank (Sec. IX-B)
//!   window     core instruction window
//! ```
//!
//! Every point × design cell runs on the worker pool (`--jobs N`, or the
//! `MDA_JOBS` environment variable; defaults to the machine's cores).

use mda_bench::experiments::run_kernel;
use mda_bench::{parallel, Scale};
use mda_sim::{HierarchyKind, SystemConfig};
use mda_workloads::Kernel;

struct Point {
    label: String,
    cfgs: Vec<(String, SystemConfig)>,
}

fn designs(mut f: impl FnMut(HierarchyKind) -> SystemConfig) -> Vec<(String, SystemConfig)> {
    mda_bench::designs().into_iter().map(|k| (k.name().to_string(), f(k))).collect()
}

fn points(param: &str, scale: Scale) -> Result<Vec<Point>, String> {
    let out = match param {
        "llc" => [1u64, 2, 4, 8, 16]
            .into_iter()
            .map(|mult| {
                let llc = scale.llc_sweep()[0] * mult / 2;
                Point {
                    label: format!("llc={}KB", llc / 1024),
                    cfgs: designs(|k| scale.system_with_llc(k, llc)),
                }
            })
            .collect(),
        "mshrs" => [2usize, 4, 8, 16, 32]
            .into_iter()
            .map(|m| Point {
                label: format!("l1-mshrs={m}"),
                cfgs: designs(|k| {
                    let mut c = scale.system(k);
                    c.l1.mshrs = m;
                    c
                }),
            })
            .collect(),
        "channels" => [1usize, 2, 4, 8]
            .into_iter()
            .map(|ch| Point {
                label: format!("channels={ch}"),
                cfgs: designs(|k| {
                    let mut c = scale.system(k);
                    c.mem.channels = ch;
                    c
                }),
            })
            .collect(),
        "prefetch" => [1usize, 2, 4, 8, 16]
            .into_iter()
            .map(|d| Point {
                label: format!("pf-degree={d}"),
                cfgs: designs(|k| {
                    let mut c = scale.system(k);
                    c.prefetch_degree = d;
                    c
                }),
            })
            .collect(),
        "subbuf" => [1usize, 2, 4, 8]
            .into_iter()
            .map(|s| Point {
                label: format!("sub-buffers={s}"),
                cfgs: designs(|k| {
                    let mut c = scale.system(k);
                    c.mem.sub_buffers = s;
                    c
                }),
            })
            .collect(),
        "window" => [16usize, 32, 64, 96, 192]
            .into_iter()
            .map(|w| Point {
                label: format!("window={w}"),
                cfgs: designs(|k| {
                    let mut c = scale.system(k);
                    c.core.window = w;
                    c
                }),
            })
            .collect(),
        other => return Err(format!("unknown parameter '{other}'")),
    };
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Scaled;
    let mut kernel = Kernel::Sgemm;
    let mut param: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = Scale::parse(&it.next().unwrap_or_default()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            }
            "--kernel" => {
                kernel = Kernel::parse(&it.next().unwrap_or_default()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            }
            "--jobs" => {
                let n = it.next().unwrap_or_default().parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("--jobs expects a positive integer");
                    std::process::exit(2);
                });
                parallel::set_jobs(n);
            }
            p if param.is_none() => param = Some(p.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let Some(param) = param else {
        eprintln!(
            "usage: sweep <llc|mshrs|channels|prefetch|subbuf|window> [--kernel K] [--scale S] [--jobs N]"
        );
        std::process::exit(2);
    };
    let pts = points(&param, scale).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    // Flatten every point × design cell and fan out across the worker
    // pool; results come back in input order, so printing stays identical
    // to the sequential sweep.
    let n = scale.input();
    let all_cfgs: Vec<SystemConfig> =
        pts.iter().flat_map(|p| p.cfgs.iter().map(|(_, cfg)| cfg.clone())).collect();
    let cycles = parallel::par_map(&all_cfgs, |cfg| run_kernel(kernel, n, cfg).cycles);
    let mut cell = cycles.into_iter();

    println!("sweep of {param} — {kernel} at {scale} scale, cycles normalized to each point's 1P1L\n");
    print!("{:>16}", "");
    for (name, _) in &pts[0].cfgs {
        print!("  {name:>14}");
    }
    println!();
    for p in pts {
        print!("{:>16}", p.label);
        let mut base = 1u64;
        for (name, _) in &p.cfgs {
            let cycles = cell.next().expect("one result per cell");
            if name == "1P1L" {
                base = cycles;
                print!("  {cycles:>14}");
            } else {
                print!("  {:>14.3}", cycles as f64 / base as f64);
            }
        }
        println!();
    }
}
