//! Design-space exploration CLI: sweep one system parameter across its
//! range for one kernel, printing normalized cycles per design.
//!
//! ```text
//! sweep <parameter> [--kernel sgemm] [--scale tiny|scaled|paper] [--jobs N]
//!       [--write-ber R] [--read-disturb R] [--retention-ber R]
//!       [--fault-seed N]
//!
//! parameters:
//!   llc        LLC capacity (the Fig. 12 axis, extended)
//!   mshrs      L1 MSHR count (miss-level parallelism)
//!   channels   memory channels
//!   prefetch   baseline prefetch degree
//!   subbuf     open row/column buffers per bank (Sec. IX-B)
//!   window     core instruction window
//!   ber        raw write bit-error rate (the reliability extension axis)
//! ```
//!
//! The `--write-ber`/`--read-disturb`/`--retention-ber`/`--fault-seed`
//! flags inject faults into every point of any sweep (all rates default to
//! 0, i.e. the fault-free devices of the paper's evaluation); the `ber`
//! parameter instead sweeps the write BER itself, with read-disturb and
//! retention scaled proportionally. A cell whose simulation panics is
//! reported on stderr and printed as `degraded`, leaving the rest of the
//! sweep intact.
//!
//! Every point × design cell runs on the worker pool (`--jobs N`, or the
//! `MDA_JOBS` environment variable; defaults to the machine's cores).

use mda_bench::experiments::{ext_reliability, run_kernel};
use mda_bench::{parallel, Scale};
use mda_sim::{FaultConfig, HierarchyKind, SystemConfig};
use mda_workloads::Kernel;

struct Point {
    label: String,
    cfgs: Vec<(String, SystemConfig)>,
}

/// Expands every design over `f`, attaching `faults` to each system.
fn designs(
    faults: FaultConfig,
    mut f: impl FnMut(HierarchyKind) -> SystemConfig,
) -> Vec<(String, SystemConfig)> {
    mda_bench::designs()
        .into_iter()
        .map(|k| {
            let mut cfg = f(k);
            cfg.mem.faults = faults;
            (k.name().to_string(), cfg)
        })
        .collect()
}

fn points(param: &str, scale: Scale, faults: FaultConfig) -> Result<Vec<Point>, String> {
    let out = match param {
        "llc" => [1u64, 2, 4, 8, 16]
            .into_iter()
            .map(|mult| {
                let llc = scale.llc_sweep()[0] * mult / 2;
                Point {
                    label: format!("llc={}KB", llc / 1024),
                    cfgs: designs(faults, |k| scale.system_with_llc(k, llc)),
                }
            })
            .collect(),
        "mshrs" => [2usize, 4, 8, 16, 32]
            .into_iter()
            .map(|m| Point {
                label: format!("l1-mshrs={m}"),
                cfgs: designs(faults, |k| {
                    let mut c = scale.system(k);
                    c.l1.mshrs = m;
                    c
                }),
            })
            .collect(),
        "channels" => [1usize, 2, 4, 8]
            .into_iter()
            .map(|ch| Point {
                label: format!("channels={ch}"),
                cfgs: designs(faults, |k| {
                    let mut c = scale.system(k);
                    c.mem.channels = ch;
                    c
                }),
            })
            .collect(),
        "prefetch" => [1usize, 2, 4, 8, 16]
            .into_iter()
            .map(|d| Point {
                label: format!("pf-degree={d}"),
                cfgs: designs(faults, |k| {
                    let mut c = scale.system(k);
                    c.prefetch_degree = d;
                    c
                }),
            })
            .collect(),
        "subbuf" => [1usize, 2, 4, 8]
            .into_iter()
            .map(|s| Point {
                label: format!("sub-buffers={s}"),
                cfgs: designs(faults, |k| {
                    let mut c = scale.system(k);
                    c.mem.sub_buffers = s;
                    c
                }),
            })
            .collect(),
        "ber" => ext_reliability::BERS
            .into_iter()
            .map(|ber| {
                let point_faults = FaultConfig::uniform(faults.seed, ber, ber / 8.0, ber / 16.0);
                Point {
                    label: if ber == 0.0 { "ber=0".to_string() } else { format!("ber={ber:e}") },
                    cfgs: designs(point_faults, |k| scale.system(k)),
                }
            })
            .collect(),
        "window" => [16usize, 32, 64, 96, 192]
            .into_iter()
            .map(|w| Point {
                label: format!("window={w}"),
                cfgs: designs(faults, |k| {
                    let mut c = scale.system(k);
                    c.core.window = w;
                    c
                }),
            })
            .collect(),
        other => return Err(format!("unknown parameter '{other}'")),
    };
    Ok(out)
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep <llc|mshrs|channels|prefetch|subbuf|window|ber> [--kernel K] \
         [--scale S] [--jobs N] [--write-ber R] [--read-disturb R] [--retention-ber R] \
         [--fault-seed N]"
    );
    std::process::exit(2);
}

/// Parses a probability flag value, naming the flag on failure.
fn parse_rate(flag: &str, v: Option<String>) -> f64 {
    let v = v.unwrap_or_default();
    match v.parse::<f64>() {
        Ok(r) if (0.0..=1.0).contains(&r) => r,
        _ => {
            eprintln!("{flag} expects a probability in [0, 1], got '{v}'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Scaled;
    let mut kernel = Kernel::Sgemm;
    let mut param: Option<String> = None;
    let mut fault_seed = ext_reliability::FAULT_SEED;
    let mut write_ber = 0.0;
    let mut read_disturb = 0.0;
    let mut retention_ber = 0.0;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = Scale::parse(&it.next().unwrap_or_default()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            }
            "--kernel" => {
                kernel = Kernel::parse(&it.next().unwrap_or_default()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            }
            "--jobs" => {
                match it.next().unwrap_or_default().parse::<usize>() {
                    Ok(n) if n > 0 => parallel::set_jobs(n),
                    _ => {
                        eprintln!("--jobs expects a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--write-ber" => write_ber = parse_rate("--write-ber", it.next()),
            "--read-disturb" => read_disturb = parse_rate("--read-disturb", it.next()),
            "--retention-ber" => retention_ber = parse_rate("--retention-ber", it.next()),
            "--fault-seed" => {
                let v = it.next().unwrap_or_default();
                fault_seed = v.parse::<u64>().unwrap_or_else(|_| {
                    eprintln!("--fault-seed expects an unsigned integer, got '{v}'");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => usage(),
            p if param.is_none() => param = Some(p.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let Some(param) = param else { usage() };
    let faults = FaultConfig::uniform(fault_seed, write_ber, read_disturb, retention_ber);
    let pts = points(&param, scale, faults).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    // Flatten every point × design cell and fan out across the worker
    // pool; results come back in input order, so printing stays identical
    // to the sequential sweep. A twice-panicking cell degrades to an `Err`
    // instead of killing the sweep.
    let n = scale.input();
    let all_cells: Vec<(String, SystemConfig)> = pts
        .iter()
        .flat_map(|p| {
            p.cfgs.iter().map(|(name, cfg)| (format!("{}/{name}", p.label), cfg.clone()))
        })
        .collect();
    let cycles = parallel::par_try_map(&all_cells, |(_, cfg)| run_kernel(kernel, n, cfg).cycles);
    for ((label, _), outcome) in all_cells.iter().zip(&cycles) {
        if let Err(msg) = outcome {
            eprintln!("warning: cell '{label}' degraded: {msg}");
        }
    }
    let mut cell = cycles.into_iter();

    println!("sweep of {param} — {kernel} at {scale} scale, cycles normalized to each point's 1P1L\n");
    print!("{:>16}", "");
    for (name, _) in &pts[0].cfgs {
        print!("  {name:>14}");
    }
    println!();
    for p in pts {
        print!("{:>16}", p.label);
        let mut base: Option<u64> = None;
        for (name, _) in &p.cfgs {
            let outcome = cell.next().expect("one result per cell");
            match outcome {
                Ok(cycles) if name == "1P1L" => {
                    base = Some(cycles);
                    print!("  {cycles:>14}");
                }
                Ok(cycles) => match base {
                    Some(b) if b > 0 => print!("  {:>14.3}", cycles as f64 / b as f64),
                    _ => print!("  {:>14}", "degraded"),
                },
                Err(_) => {
                    if name == "1P1L" {
                        base = None;
                    }
                    print!("  {:>14}", "degraded");
                }
            }
        }
        println!();
    }
}
