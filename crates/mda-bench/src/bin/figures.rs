//! The evaluation harness CLI: regenerates every table and figure of the
//! paper.
//!
//! ```text
//! figures <experiment|all> [--scale tiny|scaled|paper] [--csv DIR]
//!         [--jobs N] [--bench-timings]
//! figures --bench-sim [--smoke] [--scale tiny|scaled|paper] [--reps N]
//!
//! experiments: table1 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17
//!              ablation ext_tiling ext_multicore ext_energy
//!              ext_reliability
//!
//! --csv DIR additionally writes every table-shaped figure as CSV files
//! under DIR (for external plotting).
//!
//! --jobs N runs each experiment's simulation cells on N worker threads
//! (default: the machine's cores, or the MDA_JOBS environment variable).
//! Output is byte-identical regardless of N; --jobs 1 is the sequential
//! harness.
//!
//! --bench-timings additionally writes BENCH_harness.json with per-
//! experiment wall-clock seconds, cell counts and the worker count.
//!
//! --bench-sim measures steady-state simulator throughput (trace mem-ops
//! per wall-clock second) for every design × kernel cell and writes
//! BENCH_sim.json. --smoke shrinks it to tiny scale × 1 rep for CI.
//! ```

use mda_bench::experiments::{
    ablation, ext_energy, ext_multicore, ext_reliability, ext_tiling, fig10, fig11, fig12, fig13, fig14, fig15,
    fig16, fig17, table1,
};
use mda_bench::{parallel, Scale};
use std::time::Instant;

const EXPERIMENTS: [&str; 14] = [
    "table1", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "ablation",
    "ext_tiling", "ext_multicore", "ext_energy", "ext_reliability",
];

fn usage() -> ! {
    eprintln!(
        "usage: figures <{}|all> [--scale tiny|scaled|paper] [--csv DIR] [--jobs N] [--bench-timings]\n\
         \x20      figures --bench-sim [--smoke] [--scale tiny|scaled|paper] [--reps N]",
        EXPERIMENTS.join("|")
    );
    std::process::exit(2);
}

/// Writes `name.csv` under `dir`; a write failure names the path and
/// aborts the run with a nonzero exit (a silently missing CSV is worse
/// than a dead harness).
fn emit_csv(dir: &std::path::Path, name: &str, csv: &str) {
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, csv) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn run_csv(name: &str, scale: Scale, dir: &std::path::Path) {
    match name {
        "fig11" => {
            let f = fig11::run(scale);
            emit_csv(dir, "fig11_hit_rate", &f.hit_rate.to_csv());
            emit_csv(dir, "fig11_fills", &f.fills.to_csv());
        }
        "fig12" => {
            for (llc, fig) in fig12::run(scale) {
                emit_csv(dir, &format!("fig12_llc_{}k", llc / 1024), &fig.to_csv());
            }
        }
        "fig13" => emit_csv(dir, "fig13", &fig13::run(scale).to_csv()),
        "fig14" => {
            let f = fig14::run(scale);
            emit_csv(dir, "fig14_llc_accesses", &f.llc_accesses.to_csv());
            emit_csv(dir, "fig14_memory_bytes", &f.memory_bytes.to_csv());
        }
        "fig16" => emit_csv(dir, "fig16", &fig16::run(scale).to_csv()),
        "fig17" => emit_csv(dir, "fig17", &fig17::run(scale).to_csv()),
        "ablation" => {
            emit_csv(dir, "ablation_layout", &ablation::layout_mismatch(scale).to_csv());
            emit_csv(dir, "ablation_dense", &ablation::dense_fill(scale).to_csv());
            emit_csv(dir, "ablation_subrow", &ablation::sub_row_buffers(scale).to_csv());
            emit_csv(dir, "ablation_2p1l", &ablation::taxonomy_2p1l(scale).to_csv());
        }
        "ext_tiling" => emit_csv(dir, "ext_tiling", &ext_tiling::run(scale).to_csv()),
        "ext_multicore" => emit_csv(dir, "ext_multicore", &ext_multicore::run(scale).to_csv()),
        "ext_energy" => emit_csv(dir, "ext_energy", &ext_energy::run(scale).to_csv()),
        "ext_reliability" => {
            let f = ext_reliability::run(scale);
            emit_csv(dir, "ext_reliability_cycles", &f.cycles.to_csv());
            emit_csv(dir, "ext_reliability_retries", &f.retries.to_csv());
            emit_csv(dir, "ext_reliability_corrected", &f.corrected.to_csv());
        }
        // table1/fig10/fig15 are not kernel×design tables.
        _ => {}
    }
}

fn run_one(name: &str, scale: Scale) -> f64 {
    let t0 = Instant::now();
    let out = match name {
        "table1" => table1::render(scale),
        "fig10" => fig10::render(scale),
        "fig11" => fig11::render(scale),
        "fig12" => fig12::render(scale),
        "fig13" => fig13::run(scale).render(),
        "fig14" => fig14::render(scale),
        "fig15" => fig15::render(scale),
        "fig16" => fig16::run(scale).render(),
        "fig17" => fig17::run(scale).render(),
        "ablation" => ablation::render(scale),
        "ext_tiling" => ext_tiling::run(scale).render(),
        "ext_multicore" => ext_multicore::run(scale).render(),
        "ext_energy" => ext_energy::run(scale).render(),
        "ext_reliability" => ext_reliability::render(scale),
        other => {
            eprintln!("unknown experiment '{other}'");
            usage()
        }
    };
    println!("{out}");
    let seconds = t0.elapsed().as_secs_f64();
    eprintln!("[{name} completed in {seconds:.1}s]\n");
    seconds
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Scaled;
    let mut targets: Vec<String> = Vec::new();
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut bench_entries: Option<Vec<String>> = None;
    let mut bench_sim = false;
    let mut smoke = false;
    let mut only: Option<String> = None;
    let mut reps: u32 = 3;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let Some(v) = it.next() else { usage() };
                scale = match Scale::parse(&v) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("{e}");
                        usage()
                    }
                };
            }
            "--csv" => {
                let Some(v) = it.next() else { usage() };
                csv_dir = Some(std::path::PathBuf::from(v));
            }
            "--jobs" => {
                let Some(v) = it.next() else { usage() };
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => parallel::set_jobs(n),
                    _ => {
                        eprintln!("--jobs expects a positive integer, got '{v}'");
                        usage()
                    }
                }
            }
            "--bench-timings" => bench_entries = Some(Vec::new()),
            "--bench-sim" => bench_sim = true,
            "--smoke" => smoke = true,
            "--only" => {
                let Some(v) = it.next() else { usage() };
                only = Some(v);
            }
            "--reps" => {
                let Some(v) = it.next() else { usage() };
                match v.parse::<u32>() {
                    Ok(n) if n > 0 => reps = n,
                    _ => {
                        eprintln!("--reps expects a positive integer, got '{v}'");
                        usage()
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => targets.push(other.to_string()),
        }
    }
    if bench_sim {
        if smoke {
            scale = Scale::Tiny;
            reps = 1;
        }
        eprintln!("bench-sim: scale {scale}, {reps} rep(s) per cell\n");
        let report = mda_bench::bench_sim::run_filtered(scale, reps, only.as_deref());
        println!("{}", report.render());
        let path = "BENCH_sim.json";
        match std::fs::write(path, report.to_json()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if targets.is_empty() {
        usage();
    }
    if targets.iter().any(|t| t == "all") {
        targets = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    eprintln!("scale: {scale}\n");
    for t in &targets {
        parallel::take_cell_count();
        let seconds = run_one(t, scale);
        let cells = parallel::take_cell_count();
        if let Some(entries) = &mut bench_entries {
            entries.push(format!(
                "  {{\"experiment\": \"{t}\", \"scale\": \"{scale}\", \"seconds\": {seconds:.3}, \
                 \"cells\": {cells}, \"jobs\": {}}}",
                parallel::jobs()
            ));
        }
        if let Some(dir) = &csv_dir {
            run_csv(t, scale, dir);
        }
    }
    if let Some(entries) = bench_entries {
        let path = "BENCH_harness.json";
        let json = format!("[\n{}\n]\n", entries.join(",\n"));
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
