//! Fig. 10: access orientation and size preferences in the target
//! workloads, by data volume (row/column × scalar/vector), for both input
//! sizes.
//!
//! This figure is a property of the compiled (MDA-target) trace, not of
//! any cache design, so it runs on the trace generator alone.

use crate::scale::Scale;
use crate::table::{fmt_pct, TextTable};
use mda_compiler::trace::{access_mix, AccessMix};
use mda_compiler::CodegenOptions;
use mda_workloads::Kernel;

/// One kernel's access mix at one input size.
#[derive(Debug, Clone, PartialEq)]
pub struct MixRow {
    /// Kernel name.
    pub kernel: String,
    /// Input size.
    pub n: u64,
    /// The volume breakdown.
    pub mix: AccessMix,
}

/// Computes the access mix of every kernel at both of the scale's input
/// sizes (the paper's 256×256 and 512×512 panels).
pub fn run(scale: Scale) -> Vec<MixRow> {
    let opts = CodegenOptions::mda();
    // Trace generation dominates here; each (size, kernel) pair is an
    // independent cell, fanned out across the worker pool.
    let inputs: Vec<(u64, Kernel)> = [scale.small_input(), scale.input()]
        .into_iter()
        .flat_map(|n| Kernel::all().map(|k| (n, k)))
        .collect();
    crate::parallel::par_map(&inputs, |(n, k)| {
        let src = k.build(*n);
        MixRow { kernel: k.name().into(), n: *n, mix: access_mix(src.as_ref(), &opts) }
    })
}

/// Renders the figure.
pub fn render(scale: Scale) -> String {
    let rows = run(scale);
    let mut out = String::from("Fig. 10 — access-type distribution by data volume (MDA codegen)\n");
    for n in [scale.small_input(), scale.input()] {
        let mut t = TextTable::new(vec![
            "kernel".into(),
            "row scalar".into(),
            "row vector".into(),
            "col scalar".into(),
            "col vector".into(),
        ]);
        let mut totals = AccessMix::default();
        for r in rows.iter().filter(|r| r.n == n) {
            let (rs, rv, cs, cv) = r.mix.fractions();
            t.push_row(vec![
                r.kernel.clone(),
                fmt_pct(rs),
                fmt_pct(rv),
                fmt_pct(cs),
                fmt_pct(cv),
            ]);
            totals.row_scalar += r.mix.row_scalar;
            totals.row_vector += r.mix.row_vector;
            totals.col_scalar += r.mix.col_scalar;
            totals.col_vector += r.mix.col_vector;
        }
        let (rs, rv, cs, cv) = totals.fractions();
        t.push_row(vec![
            "Average".into(),
            fmt_pct(rs),
            fmt_pct(rv),
            fmt_pct(cs),
            fmt_pct(cv),
        ]);
        out.push_str(&format!("\n{n} × {n}\n{}", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_exercises_column_preference() {
        // The paper's key observation from Fig. 10: all benchmarks use
        // column accesses, around 40% of total volume on average.
        let rows = run(Scale::Tiny);
        for r in &rows {
            assert!(r.mix.col_fraction() > 0.0, "{} has no column volume", r.kernel);
        }
        let avg: f64 =
            rows.iter().map(|r| r.mix.col_fraction()).sum::<f64>() / rows.len() as f64;
        assert!((0.25..=0.75).contains(&avg), "average column fraction {avg}");
    }

    #[test]
    fn render_mentions_both_sizes() {
        let out = render(Scale::Tiny);
        assert!(out.contains("32 × 32"));
        assert!(out.contains("64 × 64"));
    }
}
