//! Fig. 12: execution cycles normalized to the prefetching 1P1L baseline,
//! for the four LLC capacities of the sweep (paper: 1 / 1.5 / 2 / 4 MB with
//! 512×512 inputs).

use crate::experiments::{metric_series, norm_series, run_grid, FigureTable};
use crate::fig11::PLOTTED;
use crate::scale::Scale;
use mda_sim::HierarchyKind;
use mda_workloads::Kernel;

/// Runs the sweep: one normalized-cycles figure per LLC capacity.
pub fn run(scale: Scale) -> Vec<(u64, FigureTable)> {
    scale.llc_sweep().into_iter().map(|llc| (llc, run_one(scale, llc))).collect()
}

/// Runs one LLC point of the sweep.
pub fn run_one(scale: Scale, llc: u64) -> FigureTable {
    let n = scale.input();
    let kernels: Vec<String> = Kernel::all().iter().map(|k| k.name().to_string()).collect();
    let mut fig = FigureTable::new(
        format!("Fig. 12 — normalized total cycles, LLC = {} KB ({n}×{n})", llc / 1024),
        kernels,
    );
    let mut configs = vec![("base".to_string(), scale.system_with_llc(HierarchyKind::Baseline1P1L, llc))];
    configs.extend(PLOTTED.iter().map(|kind| (kind.name().to_string(), scale.system_with_llc(*kind, llc))));
    let reports = run_grid("fig12", n, &configs);
    let baselines = metric_series(&reports[0], |r| r.cycles as f64);
    for (kind, chunk) in PLOTTED.iter().zip(&reports[1..]) {
        let values = norm_series(&metric_series(chunk, |r| r.cycles as f64), &baselines);
        fig.push_series(kind.name(), values);
    }
    fig
}

/// Renders the whole sweep.
pub fn render(scale: Scale) -> String {
    run(scale)
        .into_iter()
        .map(|(_, fig)| fig.render())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mda_designs_beat_the_baseline_at_the_smallest_llc() {
        // The paper's headline: large average reductions at the 1 MB point.
        let fig = run_one(Scale::Tiny, Scale::Tiny.llc_sweep()[0]);
        for design in ["1P2L", "1P2L_SameSet", "2P2L"] {
            let avg = fig.average(design).expect("series present");
            assert!(avg < 0.8, "{design} average {avg} not a clear win");
        }
    }
}
