//! Fig. 14: LLC accesses and LLC↔memory transfer, normalized to the
//! prefetching 1P1L baseline (1 MB-equivalent LLC, large input).
//!
//! The paper reports the MDA designs cutting L3 accesses to ~20–22% of the
//! baseline and memory bytes to ~15–21%: MSHR coalescing merges many misses
//! to the same column into one column access, and column transfers stop
//! fetching 64 bytes per useful word.

use crate::experiments::{metric_series, norm_series, run_grid, FigureTable};
use crate::fig11::PLOTTED;
use crate::scale::Scale;
use mda_sim::HierarchyKind;
use mda_workloads::Kernel;

/// Both panels of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14 {
    /// Normalized LLC demand accesses.
    pub llc_accesses: FigureTable,
    /// Normalized LLC↔memory bytes.
    pub memory_bytes: FigureTable,
}

/// Runs both panels.
pub fn run(scale: Scale) -> Fig14 {
    let n = scale.input();
    let kernels: Vec<String> = Kernel::all().iter().map(|k| k.name().to_string()).collect();
    let mut acc =
        FigureTable::new(format!("Fig. 14a — normalized LLC accesses ({n}×{n})"), kernels.clone());
    let mut bytes = FigureTable::new(
        format!("Fig. 14b — normalized LLC–memory transfer ({n}×{n})"),
        kernels,
    );

    let mut configs = vec![("base".to_string(), scale.system(HierarchyKind::Baseline1P1L))];
    configs.extend(PLOTTED.iter().map(|kind| (kind.name().to_string(), scale.system(*kind))));
    let reports = run_grid("fig14", n, &configs);
    let base_acc = metric_series(&reports[0], |r| r.llc_accesses() as f64);
    let base_bytes = metric_series(&reports[0], |r| r.llc_memory_bytes() as f64);
    for (kind, chunk) in PLOTTED.iter().zip(&reports[1..]) {
        let acc_vals = norm_series(&metric_series(chunk, |r| r.llc_accesses() as f64), &base_acc);
        let byte_vals =
            norm_series(&metric_series(chunk, |r| r.llc_memory_bytes() as f64), &base_bytes);
        acc.push_series(kind.name(), acc_vals);
        bytes.push_series(kind.name(), byte_vals);
    }
    Fig14 { llc_accesses: acc, memory_bytes: bytes }
}

/// Renders both panels.
pub fn render(scale: Scale) -> String {
    let f = run(scale);
    format!("{}\n{}", f.llc_accesses.render(), f.memory_bytes.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_collapses_under_mda_caching() {
        let f = run(Scale::Tiny);
        for design in ["1P2L", "1P2L_SameSet", "2P2L"] {
            let acc = f.llc_accesses.average(design).expect("series");
            let bytes = f.memory_bytes.average(design).expect("series");
            assert!(acc < 0.6, "{design} LLC accesses {acc} not reduced enough");
            assert!(bytes < 0.8, "{design} memory bytes {bytes} not reduced enough");
        }
    }
}
