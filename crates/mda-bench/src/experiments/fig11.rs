//! Fig. 11: L1 hit rates normalized to the prefetching 1P1L baseline,
//! 1 MB-equivalent LLC, large input — plus a companion panel of normalized
//! L1 *fill counts*.
//!
//! The hit-*rate* normalization is definition-sensitive: the MDA designs
//! replace eight scalar accesses by one vector access, so their
//! denominator shrinks 8× while the prefetching baseline's denominator
//! stays inflated by scalar re-accesses to prefetched lines (see
//! EXPERIMENTS.md for the divergence discussion). The fill-count panel is
//! the denominator-free view: how many lines actually had to be brought
//! into the L1, counting the baseline's prefetcher work.

use crate::experiments::{metric_series, norm_series, run_grid, FigureTable};
use crate::scale::Scale;
use mda_sim::HierarchyKind;
use mda_workloads::Kernel;

/// The MDA designs plotted by Figs. 11–14 (the baseline is the normalizer).
pub const PLOTTED: [HierarchyKind; 3] = [
    HierarchyKind::P1L2DifferentSet,
    HierarchyKind::P1L2SameSet,
    HierarchyKind::P2L2Sparse,
];

/// Both panels of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// Normalized L1 hit rates (the paper's metric).
    pub hit_rate: FigureTable,
    /// Normalized L1 fill counts, demand + prefetch (companion metric).
    pub fills: FigureTable,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig11 {
    let n = scale.input();
    let kernels: Vec<String> = Kernel::all().iter().map(|k| k.name().to_string()).collect();
    let mut hit_rate = FigureTable::new(
        format!("Fig. 11 — L1 hit rate normalized to 1P1L+prefetch ({n}×{n})"),
        kernels.clone(),
    );
    let mut fills = FigureTable::new(
        format!("Fig. 11 (companion) — L1 fills normalized to 1P1L+prefetch ({n}×{n})"),
        kernels,
    );
    let l1_fills = |r: &mda_sim::SimReport| r.levels[0].demand_fills + r.levels[0].prefetch_fills;
    // Baseline series first, then the plotted designs: every design ×
    // kernel cell fans out across the worker pool.
    let mut configs = vec![("base".to_string(), scale.system(HierarchyKind::Baseline1P1L))];
    configs.extend(PLOTTED.iter().map(|kind| (kind.name().to_string(), scale.system(*kind))));
    let reports = run_grid("fig11", n, &configs);
    let base_hr = metric_series(&reports[0], |r| r.l1_hit_rate());
    let base_fills = metric_series(&reports[0], |r| l1_fills(r) as f64);
    for (kind, chunk) in PLOTTED.iter().zip(&reports[1..]) {
        let hr_vals = norm_series(&metric_series(chunk, |r| r.l1_hit_rate()), &base_hr);
        let fill_vals = norm_series(&metric_series(chunk, |r| l1_fills(r) as f64), &base_fills);
        hit_rate.push_series(kind.name(), hr_vals);
        fills.push_series(kind.name(), fill_vals);
    }
    Fig11 { hit_rate, fills }
}

/// Renders both panels.
pub fn render(scale: Scale) -> String {
    let f = run(scale);
    format!("{}\n{}", f.hit_rate.render(), f.fills.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates_are_positive_everywhere() {
        let fig = run(Scale::Tiny);
        for (_, vals) in &fig.hit_rate.series {
            assert!(vals.iter().all(|v| *v > 0.0));
        }
    }

    #[test]
    fn mda_designs_cut_l1_fills() {
        let fig = run(Scale::Tiny);
        for design in ["1P2L", "1P2L_SameSet", "2P2L"] {
            let avg = fig.fills.average(design).expect("series");
            assert!(avg < 0.7, "{design}: fill count only fell to {avg:.2}");
        }
    }
}
