//! Design ablations called out in the paper's design discussion
//! (Sec. IV-C):
//!
//! * **Layout mismatch** — running the 1P1L hierarchy on the 2-D-optimized
//!   memory layout "could incur average slowdowns on the order of 2×, due
//!   to the mismatch between data layout and access pattern as well as
//!   extra data traffic caused by padding". Every headline experiment
//!   therefore pairs each hierarchy with its own layout; this ablation
//!   quantifies the mismatch penalty.
//! * **Dense vs. sparse 2P2L fill** — the paper elides dense 2-D blocks
//!   ("given the large transfer unit … we directly explore a variant that
//!   supports sparse occupancy"); this ablation shows why.

use crate::experiments::{metric_series, norm_series, run_grid, FigureTable};
use crate::scale::Scale;
use mda_compiler::CodegenOptions;
use mda_sim::HierarchyKind;
use mda_workloads::Kernel;

/// Runs the layout-mismatch ablation: 1P1L on its native 1-D layout versus
/// 1P1L forced onto the 2-D (MDA-optimized) layout.
pub fn layout_mismatch(scale: Scale) -> FigureTable {
    let n = scale.input();
    let kernels: Vec<String> = Kernel::all().iter().map(|k| k.name().to_string()).collect();
    let mut fig = FigureTable::new(
        format!("Ablation — 1P1L on a 2-D-optimized layout, normalized cycles ({n}×{n})"),
        kernels,
    );
    let mut mismatched_cfg = scale.system(HierarchyKind::Baseline1P1L);
    mismatched_cfg.codegen = CodegenOptions::baseline_on_mda_layout();
    let configs = [
        ("base".to_string(), scale.system(HierarchyKind::Baseline1P1L)),
        ("1P1L-on-2D-layout".to_string(), mismatched_cfg),
    ];
    let reports = run_grid("ablation_layout", n, &configs);
    let baselines = metric_series(&reports[0], |r| r.cycles as f64);
    let values = norm_series(&metric_series(&reports[1], |r| r.cycles as f64), &baselines);
    fig.push_series("1P1L-on-2D-layout", values);
    fig
}

/// Runs the dense-fill ablation: sparse versus dense 2P2L LLC, normalized
/// to the baseline.
pub fn dense_fill(scale: Scale) -> FigureTable {
    let n = scale.input();
    let kernels: Vec<String> = Kernel::all().iter().map(|k| k.name().to_string()).collect();
    let mut fig = FigureTable::new(
        format!("Ablation — sparse vs dense 2P2L fill, normalized cycles ({n}×{n})"),
        kernels,
    );
    let plotted = [HierarchyKind::P2L2Sparse, HierarchyKind::P2L2Dense];
    let mut configs = vec![("base".to_string(), scale.system(HierarchyKind::Baseline1P1L))];
    configs.extend(plotted.iter().map(|kind| (kind.name().to_string(), scale.system(*kind))));
    let reports = run_grid("ablation_dense", n, &configs);
    let baselines = metric_series(&reports[0], |r| r.cycles as f64);
    for (kind, chunk) in plotted.iter().zip(&reports[1..]) {
        let values = norm_series(&metric_series(chunk, |r| r.cycles as f64), &baselines);
        fig.push_series(kind.name(), values);
    }
    fig
}

/// Runs the multiple-sub-row-buffer study of paper Sec. IX-B: the paper
/// "implemented a multiple row-buffer scheme and found it to have a less
/// than 1 % impact" on its single-threaded workloads, because strided
/// column accesses still activate a new row per access. Both the baseline
/// and the 1P2L design are re-run with four sub-buffers per orientation,
/// normalized to their own single-buffer variants.
pub fn sub_row_buffers(scale: Scale) -> FigureTable {
    let n = scale.input();
    let kernels: Vec<String> = Kernel::all().iter().map(|k| k.name().to_string()).collect();
    let mut fig = FigureTable::new(
        format!("Ablation — 4 sub-row buffers per bank, cycles normalized to 1 buffer ({n}×{n})"),
        kernels,
    );
    let kinds = [HierarchyKind::Baseline1P1L, HierarchyKind::P1L2DifferentSet];
    let configs: Vec<(String, mda_sim::SystemConfig)> = kinds
        .iter()
        .flat_map(|kind| {
            let mut multi_cfg = scale.system(*kind);
            multi_cfg.mem.sub_buffers = 4;
            [
                (format!("{}+1buf", kind.name()), scale.system(*kind)),
                (format!("{}+4buf", kind.name()), multi_cfg),
            ]
        })
        .collect();
    let reports = run_grid("ablation_subbuf", n, &configs);
    for (kind, pair) in kinds.iter().zip(reports.chunks(2)) {
        let singles = metric_series(&pair[0], |r| r.cycles as f64);
        let values = norm_series(&metric_series(&pair[1], |r| r.cycles as f64), &singles);
        fig.push_series(format!("{}+4buf", kind.name()), values);
    }
    fig
}

/// Runs the taxonomy-completion ablation: the 2P1L design point the paper
/// elides (Sec. IV-A). A physically 2-D NVM LLC that still serves only
/// rows is compared against the 1P1L baseline and the logically 2-D
/// designs — isolating how much of the MDA benefit comes from the physical
/// array (≈ none) versus from logically 2-D caching (≈ all of it).
pub fn taxonomy_2p1l(scale: Scale) -> FigureTable {
    let n = scale.input();
    let kernels: Vec<String> = Kernel::all().iter().map(|k| k.name().to_string()).collect();
    let mut fig = FigureTable::new(
        format!("Ablation — 2P1L taxonomy point, normalized cycles ({n}×{n})"),
        kernels,
    );
    let plotted = [HierarchyKind::P2L1, HierarchyKind::P2L2Sparse];
    let mut configs = vec![("base".to_string(), scale.system(HierarchyKind::Baseline1P1L))];
    configs.extend(plotted.iter().map(|kind| (kind.name().to_string(), scale.system(*kind))));
    let reports = run_grid("ablation_2p1l", n, &configs);
    let baselines = metric_series(&reports[0], |r| r.cycles as f64);
    for (kind, chunk) in plotted.iter().zip(&reports[1..]) {
        let values = norm_series(&metric_series(chunk, |r| r.cycles as f64), &baselines);
        fig.push_series(kind.name(), values);
    }
    fig
}

/// Renders all ablations.
pub fn render(scale: Scale) -> String {
    format!(
        "{}\n{}\n{}\n{}",
        layout_mismatch(scale).render(),
        dense_fill(scale).render(),
        sub_row_buffers(scale).render(),
        taxonomy_2p1l(scale).render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_mismatch_slows_the_baseline_down() {
        let fig = layout_mismatch(Scale::Tiny);
        let avg = fig.average("1P1L-on-2D-layout").expect("series");
        assert!(avg > 1.1, "layout mismatch should clearly hurt, got {avg}");
    }

    #[test]
    fn sparse_fill_beats_dense_fill() {
        let fig = dense_fill(Scale::Tiny);
        let sparse = fig.average("2P2L").expect("series");
        let dense = fig.average("2P2L_Dense").expect("series");
        assert!(sparse < dense, "sparse {sparse} must beat dense {dense}");
    }

    #[test]
    fn physical_dimensionality_alone_buys_nothing() {
        // The 2P1L point tracks the 1P1L baseline closely (it serves the
        // identical row-only stream) while the logically 2-D 2P2L wins big:
        // the benefit comes from expressing column preference, not from
        // the array technology.
        let fig = taxonomy_2p1l(Scale::Tiny);
        let p2l1 = fig.average("2P1L").expect("series");
        let p2l2 = fig.average("2P2L").expect("series");
        assert!(
            (p2l1 - 1.0).abs() < 0.25,
            "2P1L should track the baseline, got {p2l1}"
        );
        assert!(p2l2 < p2l1 - 0.2, "logical 2-D ({p2l2}) must clearly beat 2P1L ({p2l1})");
    }

    #[test]
    fn sub_row_buffers_never_hurt_and_matter_little_for_mda() {
        // Paper Sec. IX-B reports < 1% impact at 512×512 — a column walk
        // touches hundreds of distinct physical rows, far beyond four
        // buffers. At this test's tiny scale a 64-element column spans few
        // physical rows, so the *baseline* captures some reuse (EXPERIMENTS
        // .md records the at-scale numbers); the MDA design, which opens a
        // column buffer once per line anyway, stays within noise.
        let fig = sub_row_buffers(Scale::Tiny);
        for series in ["1P1L+4buf", "1P2L+4buf"] {
            let avg = fig.average(series).expect("series");
            assert!(avg <= 1.02, "{series}: extra buffers should never hurt, got {avg}");
        }
        let mda = fig.average("1P2L+4buf").expect("series");
        assert!(
            (mda - 1.0).abs() < 0.10,
            "1P2L: sub-row buffers moved cycles by {:.1}%",
            (mda - 1.0) * 100.0
        );
    }
}
