//! One module per table/figure of the paper's evaluation.

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod ext_energy;
pub mod ext_multicore;
pub mod ext_reliability;
pub mod ext_tiling;
pub mod fig17;
pub mod table1;

use crate::parallel::CellResult;
use crate::table::{fmt_ratio, TextTable};
use mda_sim::{simulate, HierarchyKind, SimReport, SystemConfig};
use mda_workloads::Kernel;

/// The design list shared by the figure experiments and the `sweep`
/// binary: the prefetching baseline first, then the MDA designs of
/// Figs. 11–14 ([`fig11::PLOTTED`]).
pub fn designs() -> Vec<HierarchyKind> {
    std::iter::once(HierarchyKind::Baseline1P1L).chain(fig11::PLOTTED).collect()
}

/// A figure rendered as kernels × design-series of normalized values, with
/// the paper's trailing "Average" column.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTable {
    /// Figure caption.
    pub title: String,
    /// Kernel names, one per row of the paper's x-axis.
    pub kernels: Vec<String>,
    /// One series per design: `(design name, value per kernel)`.
    pub series: Vec<(String, Vec<f64>)>,
}

impl FigureTable {
    /// Creates an empty figure table.
    pub fn new(title: impl Into<String>, kernels: Vec<String>) -> FigureTable {
        FigureTable { title: title.into(), kernels, series: Vec::new() }
    }

    /// Appends a design series.
    ///
    /// # Panics
    /// Panics if the series length does not match the kernel count.
    pub fn push_series(&mut self, design: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.kernels.len(), "series length mismatch");
        self.series.push((design.into(), values));
    }

    /// The value for `(design, kernel)`.
    pub fn value(&self, design: &str, kernel: &str) -> Option<f64> {
        let k = self.kernels.iter().position(|x| x == kernel)?;
        let (_, vals) = self.series.iter().find(|(d, _)| d == design)?;
        vals.get(k).copied()
    }

    /// Arithmetic mean of a design's series (the paper reports arithmetic
    /// averages over benchmarks). Degraded cells (NaN) are skipped so one
    /// failed kernel does not wipe out the design's average; an all-NaN
    /// series averages to NaN.
    pub fn average(&self, design: &str) -> Option<f64> {
        let (_, vals) = self.series.iter().find(|(d, _)| d == design)?;
        if vals.is_empty() {
            return None;
        }
        let healthy: Vec<f64> = vals.iter().copied().filter(|v| !v.is_nan()).collect();
        if healthy.is_empty() {
            return Some(f64::NAN);
        }
        Some(healthy.iter().sum::<f64>() / healthy.len() as f64)
    }

    /// Renders the figure as CSV (kernels as rows, designs as columns,
    /// trailing Average row) for external plotting.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;

        // Cells are formatted straight into the output buffer: no per-cell
        // `String` allocation.
        let mut out = String::from("kernel");
        for (d, _) in &self.series {
            out.push(',');
            out.push_str(d);
        }
        out.push('\n');
        let write_cell = |out: &mut String, v: f64| {
            if v.is_nan() {
                out.push_str(",degraded");
            } else {
                let _ = write!(out, ",{v:.6}");
            }
        };
        for (k, kernel) in self.kernels.iter().enumerate() {
            out.push_str(kernel);
            for (_, vals) in &self.series {
                write_cell(&mut out, vals[k]);
            }
            out.push('\n');
        }
        out.push_str("Average");
        for (d, _) in &self.series {
            write_cell(&mut out, self.average(d).unwrap_or(0.0));
        }
        out.push('\n');
        out
    }

    /// Renders the figure as an aligned table, kernels as rows, designs as
    /// columns, with an Average row.
    pub fn render(&self) -> String {
        let mut header = vec!["kernel".to_string()];
        header.extend(self.series.iter().map(|(d, _)| d.clone()));
        let mut t = TextTable::new(header);
        for (k, kernel) in self.kernels.iter().enumerate() {
            let mut row = vec![kernel.clone()];
            row.extend(self.series.iter().map(|(_, v)| fmt_ratio(v[k])));
            t.push_row(row);
        }
        let mut avg = vec!["Average".to_string()];
        avg.extend(
            self.series
                .iter()
                .map(|(d, _)| fmt_ratio(self.average(d).unwrap_or(0.0))),
        );
        t.push_row(avg);
        format!("{}\n{}", self.title, t.render())
    }
}

impl std::fmt::Display for FigureTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Runs `kernel` at input size `n` on `cfg`.
pub fn run_kernel(kernel: Kernel, n: u64, cfg: &SystemConfig) -> SimReport {
    let src = kernel.build(n);
    simulate(src.as_ref(), cfg)
}

/// Expands `(series label, config)` pairs over every kernel at input size
/// `n`, simulates all cells on the worker pool, and returns one outcome
/// chunk per pair, cells in [`Kernel::all`] order. A cell whose simulation
/// panicked (twice, counting the automatic retry) comes back as a labeled
/// `Err`; extract plottable values with [`metric_series`], which renders
/// such cells as NaN ("degraded" in tables and CSVs).
///
/// This is the grid shape shared by most figures: the normalizer series
/// goes first, so `chunks[0]` holds the baselines.
pub fn run_grid(figure: &str, n: u64, configs: &[(String, SystemConfig)]) -> Vec<Vec<CellResult>> {
    let cells: Vec<crate::parallel::Cell> = configs
        .iter()
        .flat_map(|(series, cfg)| {
            Kernel::all().map(|k| crate::parallel::Cell::new(format!("{figure}/{series}/{}", k.name()), k, n, cfg.clone()))
        })
        .collect();
    let mut reports = crate::parallel::run_cells(&cells).into_iter();
    configs.iter().map(|_| reports.by_ref().take(Kernel::all().len()).collect()).collect()
}

/// Extracts `metric` from each cell outcome of a [`run_grid`] chunk,
/// mapping degraded cells to NaN (rendered as "degraded" downstream).
pub fn metric_series(chunk: &[CellResult], metric: impl Fn(&SimReport) -> f64) -> Vec<f64> {
    chunk
        .iter()
        .map(|r| match r {
            Ok(rep) => metric(rep),
            Err(_) => f64::NAN,
        })
        .collect()
}

/// Normalizes `value` against `base`, propagating degradation: NaN in
/// either operand yields NaN (unlike `f64::max`-style clamps, which would
/// silently swallow it), and a non-positive baseline yields 0.
pub fn norm(value: f64, base: f64) -> f64 {
    if value.is_nan() || base.is_nan() {
        f64::NAN
    } else if base <= 0.0 {
        0.0
    } else {
        value / base
    }
}

/// Pairwise [`norm`] of a metric series against its baseline series.
pub fn norm_series(values: &[f64], bases: &[f64]) -> Vec<f64> {
    values.iter().zip(bases).map(|(v, b)| norm(*v, *b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_table_lookup_and_average() {
        let mut f = FigureTable::new("t", vec!["a".into(), "b".into()]);
        f.push_series("1P2L", vec![0.2, 0.4]);
        assert_eq!(f.value("1P2L", "b"), Some(0.4));
        assert_eq!(f.value("2P2L", "b"), None);
        assert_eq!(f.value("1P2L", "zz"), None);
        assert!((f.average("1P2L").unwrap() - 0.3).abs() < 1e-12);
        let out = f.render();
        assert!(out.contains("Average"));
    }

    #[test]
    fn csv_has_header_rows_and_average() {
        let mut f = FigureTable::new("t", vec!["a".into(), "b".into()]);
        f.push_series("1P2L", vec![0.25, 0.75]);
        let csv = f.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kernel,1P2L");
        assert_eq!(lines[1], "a,0.250000");
        assert_eq!(lines[2], "b,0.750000");
        assert_eq!(lines[3], "Average,0.500000");
    }

    #[test]
    #[should_panic(expected = "series length mismatch")]
    fn mismatched_series_panics() {
        let mut f = FigureTable::new("t", vec!["a".into()]);
        f.push_series("x", vec![0.1, 0.2]);
    }

    #[test]
    fn degraded_cells_render_as_degraded_everywhere() {
        let mut f = FigureTable::new("t", vec!["a".into(), "b".into()]);
        f.push_series("1P2L", vec![0.25, f64::NAN]);
        f.push_series("2P2L", vec![f64::NAN, f64::NAN]);
        // The average skips NaN; an all-NaN series averages to NaN.
        assert!((f.average("1P2L").unwrap() - 0.25).abs() < 1e-12);
        assert!(f.average("2P2L").unwrap().is_nan());
        let table = f.render();
        assert!(table.contains("degraded"), "table: {table}");
        assert!(table.contains("0.250"), "healthy cells survive: {table}");
        let csv = f.to_csv();
        assert!(csv.lines().any(|l| l == "b,degraded,degraded"), "csv: {csv}");
        assert!(csv.lines().any(|l| l == "Average,0.250000,degraded"), "csv: {csv}");
    }

    #[test]
    fn norm_propagates_degradation() {
        assert!((norm(3.0, 2.0) - 1.5).abs() < 1e-12);
        assert!(norm(f64::NAN, 2.0).is_nan());
        assert!(norm(3.0, f64::NAN).is_nan());
        assert_eq!(norm(3.0, 0.0), 0.0);
        let out = norm_series(&[2.0, f64::NAN], &[4.0, 4.0]);
        assert_eq!(out[0], 0.5);
        assert!(out[1].is_nan());
    }
}
