//! Fig. 17: benefits compared with, and in the presence of, a 1.6× faster
//! main memory.
//!
//! Two questions from the paper: does the approach keep helping as memory
//! gets faster (yes, similar trends), and does MDA caching on a *slower*
//! MDA memory still beat a conventional hierarchy on a faster conventional
//! memory (yes — 1P2L on base memory beats 1P1L-fast)?

use crate::experiments::{metric_series, norm_series, run_grid, FigureTable};
use crate::scale::Scale;
use mda_sim::{HierarchyKind, SystemConfig};
use mda_workloads::Kernel;

/// Runs the study. Every series is normalized to the *base-speed* 1P1L
/// baseline, so `1P1L-fast` itself appears as a series too, exactly like
/// the paper's plot.
pub fn run(scale: Scale) -> FigureTable {
    let n = scale.input();
    let kernels: Vec<String> = Kernel::all().iter().map(|k| k.name().to_string()).collect();
    let mut fig = FigureTable::new(
        format!("Fig. 17 — sensitivity to a 1.6× faster main memory ({n}×{n})"),
        kernels,
    );
    let variants: Vec<(String, SystemConfig)> = [
        HierarchyKind::Baseline1P1L,
        HierarchyKind::P1L2DifferentSet,
        HierarchyKind::P1L2SameSet,
        HierarchyKind::P2L2Sparse,
    ]
    .into_iter()
    .flat_map(|kind| {
        let base = (kind.name().to_string(), scale.system(kind));
        let fast = (format!("{}-fast", kind.name()), scale.system(kind).with_fast_memory());
        [base, fast]
    })
    .collect();

    // The base-speed 1P1L run is the first variant: it supplies the
    // normalizer and is skipped as a plotted series (all 1.0).
    let reports = run_grid("fig17", n, &variants);
    let baselines = metric_series(&reports[0], |r| r.cycles as f64);
    for ((name, _), chunk) in variants.iter().zip(&reports).skip(1) {
        let values = norm_series(&metric_series(chunk, |r| r.cycles as f64), &baselines);
        fig.push_series(name.clone(), values);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trends_hold_with_faster_memory() {
        let fig = run(Scale::Tiny);
        let base_fast = fig.average("1P1L-fast").expect("series");
        let mda_fast = fig.average("1P2L-fast").expect("series");
        assert!(mda_fast < base_fast, "1P2L-fast should beat 1P1L-fast");
    }

    #[test]
    fn slower_mda_memory_still_competitive_with_fast_conventional() {
        // The paper's strongest claim: 1P2L on the base-speed memory
        // outperforms the baseline on the 1.6× faster memory.
        let fig = run(Scale::Tiny);
        let mda_base = fig.average("1P2L").expect("series");
        let base_fast = fig.average("1P1L-fast").expect("series");
        assert!(
            mda_base < base_fast,
            "1P2L on base memory ({mda_base}) should beat 1P1L-fast ({base_fast})"
        );
    }
}
