//! Fig. 16: impact of highly asymmetric write latency on the 2P2L LLC.
//!
//! On-chip NVM technologies exhibit a wide range of write/read latency
//! ratios; the paper re-runs the 2P2L design with writes taking 20 extra
//! cycles and finds only a small (≈0.4% average) degradation, because LLC
//! writes (fills and writebacks) are largely off the critical path.

use crate::experiments::{metric_series, norm_series, run_grid, FigureTable};
use crate::scale::Scale;
use mda_sim::HierarchyKind;
use mda_workloads::Kernel;

/// Extra write cycles applied in the slow-write variant (paper: 20).
pub const SLOW_WRITE_CYCLES: u64 = 20;

/// Runs the asymmetry study: normalized cycles of 1P2L, 2P2L and
/// 2P2L-Slow_Write against the baseline.
pub fn run(scale: Scale) -> FigureTable {
    let n = scale.input();
    let kernels: Vec<String> = Kernel::all().iter().map(|k| k.name().to_string()).collect();
    let mut fig = FigureTable::new(
        format!("Fig. 16 — 2P2L write asymmetry (+{SLOW_WRITE_CYCLES} cycles), normalized cycles ({n}×{n})"),
        kernels,
    );
    let configs = [
        ("base".to_string(), scale.system(HierarchyKind::Baseline1P1L)),
        ("1P2L".to_string(), scale.system(HierarchyKind::P1L2DifferentSet)),
        ("2P2L".to_string(), scale.system(HierarchyKind::P2L2Sparse)),
        (
            "2P2L-Slow_Write".to_string(),
            scale
                .system(HierarchyKind::P2L2Sparse)
                .with_llc_write_penalty(SLOW_WRITE_CYCLES),
        ),
    ];
    let reports = run_grid("fig16", n, &configs);
    let baselines = metric_series(&reports[0], |r| r.cycles as f64);
    for ((name, _), chunk) in configs.iter().zip(&reports).skip(1) {
        let values = norm_series(&metric_series(chunk, |r| r.cycles as f64), &baselines);
        fig.push_series(name.clone(), values);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_writes_cost_little() {
        let fig = run(Scale::Tiny);
        let fast = fig.average("2P2L").expect("series");
        let slow = fig.average("2P2L-Slow_Write").expect("series");
        assert!(slow >= fast, "extra write latency cannot speed things up");
        assert!(
            slow - fast < 0.10,
            "write asymmetry should cost a few percent at most ({fast} → {slow})"
        );
    }
}
