//! Fig. 13: the cache-resident study — two-level hierarchy with a large L2
//! as the LLC and the small input, normalized total cycles.
//!
//! With the working set resident, the memory-bandwidth advantage mostly
//! disappears and the remaining benefit comes from dual-direction
//! vectorization and L1↔L2 traffic, so the paper sees much smaller (but
//! still positive) reductions than in Fig. 12.

use crate::experiments::{metric_series, norm_series, run_grid, FigureTable};
use crate::scale::Scale;
use mda_sim::HierarchyKind;
use mda_workloads::Kernel;

/// Designs plotted by Fig. 13 (the paper shows 1P1L, 1P2L, 2P2L).
pub const PLOTTED: [HierarchyKind; 2] =
    [HierarchyKind::P1L2DifferentSet, HierarchyKind::P2L2Sparse];

/// Runs the cache-resident comparison.
pub fn run(scale: Scale) -> FigureTable {
    let n = scale.small_input();
    let kernels: Vec<String> = Kernel::all().iter().map(|k| k.name().to_string()).collect();
    let mut fig = FigureTable::new(
        format!(
            "Fig. 13 — normalized cycles, cache-resident ({n}×{n}, 2-level LLC)"
        ),
        kernels,
    );
    let mut configs = vec![("base".to_string(), scale.cache_resident_system(HierarchyKind::Baseline1P1L))];
    configs.extend(PLOTTED.iter().map(|kind| (kind.name().to_string(), scale.cache_resident_system(*kind))));
    let reports = run_grid("fig13", n, &configs);
    let baselines = metric_series(&reports[0], |r| r.cycles as f64);
    for (kind, chunk) in PLOTTED.iter().zip(&reports[1..]) {
        let values = norm_series(&metric_series(chunk, |r| r.cycles as f64), &baselines);
        fig.push_series(kind.name(), values);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig12;

    #[test]
    fn resident_latency_is_still_reduced_on_average() {
        // Paper: "Latency is still reduced, on average" for the
        // cache-resident configuration.
        let resident = run(Scale::Tiny);
        for design in ["1P2L", "2P2L"] {
            let res = resident.average(design).expect("series");
            assert!(res < 1.0, "{design} resident average {res} regressed");
        }
    }

    #[test]
    fn bandwidth_bound_kernel_benefits_less_when_resident() {
        // The mechanism behind the paper's Fig. 13: kernels whose MDA win
        // comes from memory bandwidth (sobel is the purest case — almost
        // all column volume, no op-count reduction beyond vectorization of
        // a cheap stencil) lose most of that win once the working set is
        // LLC-resident. Compute-vectorization-dominated kernels keep
        // their µop advantage in cache, which our issue-bound core model
        // weights more heavily than the paper's (see EXPERIMENTS.md).
        let resident = run(Scale::Tiny);
        let non_resident = fig12::run_one(Scale::Tiny, Scale::Tiny.llc_sweep()[0]);
        let res = resident.value("1P2L", "sobel").expect("sobel series");
        let non = non_resident.value("1P2L", "sobel").expect("sobel series");
        assert!(
            res > non,
            "sobel resident {res} should benefit less than non-resident {non}"
        );
    }
}
