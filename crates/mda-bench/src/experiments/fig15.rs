//! Fig. 15: column-line cache occupancy over time for `sgemm` and `ssyrk`,
//! per cache level.
//!
//! The paper uses this figure to show that column preference is
//! time-varying and kernel-dependent: sgemm keeps a small, steady set of
//! column lines resident while row data cycles through, whereas ssyrk's
//! column occupancy rises during its column-affine update phase and falls
//! when the trailing row-oriented pass takes over.

use crate::experiments::run_kernel;
use crate::scale::Scale;
use crate::table::TextTable;
use mda_sim::{HierarchyKind, OccupancyTimeline};
use mda_workloads::Kernel;

/// Occupancy timeline of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTimeline {
    /// Kernel name.
    pub kernel: String,
    /// Number of cache levels sampled.
    pub levels: usize,
    /// The sampled timeline.
    pub timeline: OccupancyTimeline,
}

/// The kernels the paper plots.
pub const PLOTTED: [Kernel; 2] = [Kernel::Sgemm, Kernel::Ssyrk];

/// Runs the occupancy study on the 1P2L hierarchy.
pub fn run(scale: Scale) -> Vec<KernelTimeline> {
    let n = scale.input();
    crate::parallel::par_map(&PLOTTED, |k| {
        let cfg = scale
            .system(HierarchyKind::P1L2DifferentSet)
            .with_occupancy_sampling(sample_interval(scale));
        let r = run_kernel(*k, n, &cfg);
        KernelTimeline {
            kernel: k.name().into(),
            levels: cfg.num_levels(),
            timeline: r.occupancy,
        }
    })
}

fn sample_interval(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 1 << 8,
        Scale::Scaled => 1 << 13,
        Scale::Paper => 1 << 17,
    }
}

/// Renders the timelines, downsampled to at most `points` rows each.
pub fn render_with_points(scale: Scale, points: usize) -> String {
    let mut out = String::from("Fig. 15 — column-line occupancy over time (1P2L)\n");
    for kt in run(scale) {
        let samples = kt.timeline.samples();
        let stride = (samples.len() / points.max(1)).max(1);
        let mut t = TextTable::new(vec![
            "cycle".into(),
            "L1 col%".into(),
            "L2 col%".into(),
            "L3 col%".into(),
        ]);
        let mut shown: Vec<&mda_sim::OccupancySample> =
            samples.iter().step_by(stride).collect();
        // Always include the final sample: the trailing row-oriented phase
        // (where ssyrk's column occupancy falls off) is short relative to
        // the run and would otherwise be dropped by the downsampling.
        if let Some(last) = samples.last() {
            if shown.last().map(|s| s.cycle) != Some(last.cycle) {
                shown.push(last);
            }
        }
        for s in shown {
            let mut row = vec![format!("{}", s.cycle)];
            for l in 0..3 {
                row.push(format!("{:.2}", s.col_occupancy.get(l).copied().unwrap_or(0.0) * 100.0));
            }
            t.push_row(row);
        }
        out.push_str(&format!("\n{}\n{}", kt.kernel, t.render()));
        // Sparkline view of the full-resolution timeline per level.
        for (level, label) in ["L1", "L2", "L3"].iter().enumerate() {
            let series: Vec<f64> = kt
                .timeline
                .samples()
                .iter()
                .map(|s| s.col_occupancy.get(level).copied().unwrap_or(0.0))
                .collect();
            out.push_str(&crate::chart::labelled_sparkline(label, &series, 48));
            out.push('\n');
        }
    }
    out
}

/// Renders with the default resolution.
pub fn render(scale: Scale) -> String {
    render_with_points(scale, 24)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_kernels_produce_timelines_with_column_residency() {
        let tls = run(Scale::Tiny);
        assert_eq!(tls.len(), 2);
        for kt in &tls {
            assert!(!kt.timeline.is_empty(), "{} produced no samples", kt.kernel);
            assert!(kt.timeline.peak(0) > 0.0, "{} never cached a column line", kt.kernel);
        }
    }

    #[test]
    fn ssyrk_occupancy_rises_then_falls() {
        // The paper's qualitative claim about phase behaviour.
        let tls = run(Scale::Tiny);
        let ssyrk = tls.iter().find(|k| k.kernel == "ssyrk").expect("ssyrk present");
        let samples = ssyrk.timeline.samples();
        let last = samples.last().expect("non-empty").col_occupancy[0];
        let peak = ssyrk.timeline.peak(0);
        assert!(
            peak > last + 0.05,
            "L1 column occupancy should fall once the row-oriented pass takes over \
             (peak {peak}, last {last})"
        );
    }
}
