//! Extension (paper Sec. III): memory-system energy.
//!
//! The paper argues that column-mode transfers reduce row-buffer
//! operations and data movement, "further enhancing efficiencies", but
//! does not quantify it. This experiment prices the simulator's event
//! counts with an STT-class [`EnergyModel`] and reports each design's
//! memory-system energy normalized to the prefetching baseline.

use crate::experiments::{metric_series, norm_series, run_grid, FigureTable};
use crate::fig11::PLOTTED;
use crate::scale::Scale;
use mda_sim::{EnergyModel, HierarchyKind};
use mda_workloads::Kernel;

/// Runs the energy comparison (memory-system energy, normalized).
pub fn run(scale: Scale) -> FigureTable {
    let n = scale.input();
    let model = EnergyModel::stt();
    let kernels: Vec<String> = Kernel::all().iter().map(|k| k.name().to_string()).collect();
    let mut fig = FigureTable::new(
        format!("Extension — memory-system energy normalized to 1P1L+prefetch ({n}×{n})"),
        kernels,
    );
    let mut configs = vec![("base".to_string(), scale.system(HierarchyKind::Baseline1P1L))];
    configs.extend(PLOTTED.iter().map(|kind| (kind.name().to_string(), scale.system(*kind))));
    let reports = run_grid("ext_energy", n, &configs);
    let baselines = metric_series(&reports[0], |r| model.memory_energy_nj(r));
    for (kind, chunk) in PLOTTED.iter().zip(&reports[1..]) {
        let values = norm_series(&metric_series(chunk, |r| model.memory_energy_nj(r)), &baselines);
        fig.push_series(kind.name(), values);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mda_designs_cut_memory_energy_across_the_suite() {
        let fig = run(Scale::Tiny);
        for design in ["1P2L", "1P2L_SameSet", "2P2L"] {
            let avg = fig.average(design).expect("series");
            assert!(avg < 0.6, "{design}: memory energy only fell to {avg:.2}");
        }
    }
}
