//! Extension (paper Sec. IX-B): MDA caching under multi-programmed
//! workloads.
//!
//! The paper evaluates single-threaded runs and remarks that multiple
//! sub-row buffers "are very useful for multiprogrammed workloads" while
//! "single-application, single-thread scenarios are less sensitive", and
//! that parallel workloads are future work. This experiment runs a
//! four-program mix (sobel + htap1 + htap2 + sobel) over private L1/L2s,
//! a shared LLC and the shared MDA memory, and reports:
//!
//! * the makespan of the mix on the baseline vs. the MDA designs
//!   (normalized to the baseline's makespan), and
//! * each design's makespan with 4 sub-row buffers per bank, normalized to
//!   its own single-buffer makespan — quantifying the paper's claim that
//!   sub-row buffers matter more when several programs interleave at the
//!   banks.

use crate::experiments::FigureTable;
use crate::scale::Scale;
use mda_compiler::trace::TraceSource;
use mda_sim::multicore::simulate_multicore;
use mda_sim::HierarchyKind;
use mda_workloads::Kernel;

/// The four-program mix (kept to trace-buffer-friendly kernels).
pub const MIX: [Kernel; 4] = [Kernel::Sobel, Kernel::Htap1, Kernel::Htap2, Kernel::Sobel];

/// The designs compared.
pub const PLOTTED: [HierarchyKind; 3] = [
    HierarchyKind::Baseline1P1L,
    HierarchyKind::P1L2DifferentSet,
    HierarchyKind::P2L2Sparse,
];

fn run_mix(scale: Scale, kind: HierarchyKind, sub_buffers: usize) -> u64 {
    let n = scale.input();
    let sources: Vec<Box<dyn TraceSource>> = MIX.iter().map(|k| k.build(n)).collect();
    let refs: Vec<&dyn TraceSource> = sources.iter().map(|s| s.as_ref()).collect();
    let mut cfg = scale.system(kind);
    cfg.mem.sub_buffers = sub_buffers;
    simulate_multicore(&refs, &cfg).makespan
}

/// Runs the multi-programmed comparison.
pub fn run(scale: Scale) -> FigureTable {
    let n = scale.input();
    let mut fig = FigureTable::new(
        format!(
            "Extension — 4-program mix (sobel+htap1+htap2+sobel), shared LLC ({n}-sized inputs)"
        ),
        vec!["makespan".to_string()],
    );
    // One (design, sub-buffer) point per mix simulation, fanned out
    // together: the normalizer, the plotted designs, then the sub-buffer
    // sensitivity pairs (mirroring the sequential run order, duplicates
    // included — each simulation is deterministic).
    let sensitivity = [HierarchyKind::Baseline1P1L, HierarchyKind::P1L2DifferentSet];
    let points: Vec<(HierarchyKind, usize)> = std::iter::once((HierarchyKind::Baseline1P1L, 1))
        .chain(PLOTTED.iter().map(|kind| (*kind, 1)))
        .chain(sensitivity.iter().flat_map(|kind| [(*kind, 1), (*kind, 4)]))
        .collect();
    let makespans = crate::parallel::par_map(&points, |(kind, sub)| run_mix(scale, *kind, *sub));
    let base = makespans[0];
    for (kind, makespan) in PLOTTED.iter().zip(&makespans[1..]) {
        fig.push_series(kind.name(), vec![*makespan as f64 / base.max(1) as f64]);
    }
    // Sub-row-buffer sensitivity, each design normalized to itself.
    for (kind, pair) in sensitivity.iter().zip(makespans[1 + PLOTTED.len()..].chunks(2)) {
        fig.push_series(
            format!("{}+4buf/self", kind.name()),
            vec![pair[1] as f64 / pair[0].max(1) as f64],
        );
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mda_designs_win_under_multiprogramming_too() {
        let fig = run(Scale::Tiny);
        let p1l2 = fig.value("1P2L", "makespan").expect("series");
        let p2l2 = fig.value("2P2L", "makespan").expect("series");
        assert!(p1l2 < 0.8, "1P2L multiprogrammed makespan {p1l2}");
        assert!(p2l2 < 0.8, "2P2L multiprogrammed makespan {p2l2}");
    }

    #[test]
    fn sub_row_buffers_help_multiprogrammed_baseline_at_least_as_much_as_solo() {
        // Paper Sec. IX-B: "such schemes are very useful for
        // multiprogrammed workloads[;] single-application … scenarios are
        // less sensitive". Compare the baseline's 4-buffer gain on the mix
        // against its gain on the same kernels run solo.
        let scale = Scale::Tiny;
        let mixed_gain = {
            let single = run_mix(scale, HierarchyKind::Baseline1P1L, 1) as f64;
            let multi = run_mix(scale, HierarchyKind::Baseline1P1L, 4) as f64;
            single / multi
        };
        // Solo gain averaged over the mix's kernels.
        let solo_gain = {
            let mut total = 0.0;
            for k in MIX {
                let src = k.build(scale.input());
                let mut cfg = scale.system(HierarchyKind::Baseline1P1L);
                cfg.mem.sub_buffers = 1;
                let single = mda_sim::simulate(src.as_ref(), &cfg).cycles as f64;
                cfg.mem.sub_buffers = 4;
                let multi = mda_sim::simulate(src.as_ref(), &cfg).cycles as f64;
                total += single / multi;
            }
            total / MIX.len() as f64
        };
        assert!(
            mixed_gain >= solo_gain - 0.05,
            "multiprogrammed gain {mixed_gain:.3} should be at least the solo gain {solo_gain:.3}"
        );
    }
}
