//! Table I: the experimental setup.

use crate::scale::Scale;
use crate::table::TextTable;
use mda_sim::{HierarchyKind, SystemConfig};

/// Renders the experimental-setup table for `scale` (the paper's Table I
/// when `Scale::Paper`).
pub fn render(scale: Scale) -> String {
    let cfg = scale.system(HierarchyKind::Baseline1P1L);
    let mut t = TextTable::new(vec!["parameter".into(), "value".into()]);
    push_config_rows(&mut t, &cfg);
    format!("Table I — experimental setup ({} scale)\n{}", scale.name(), t.render())
}

fn push_config_rows(t: &mut TextTable, cfg: &SystemConfig) {
    let kb = |b: u64| format!("{} KB", b / 1024);
    t.push_row(vec![
        "CPU".into(),
        format!(
            "OoO window {} µops, {}-wide issue, {} load ports (3 GHz)",
            cfg.core.window, cfg.core.issue_width, cfg.core.load_ports
        ),
    ]);
    t.push_row(vec![
        "L1 D-cache".into(),
        format!(
            "{}, {}-way, {}-cycle tag / {}-cycle data, parallel",
            kb(cfg.l1.size_bytes),
            cfg.l1.assoc,
            cfg.l1.tag_latency,
            cfg.l1.data_latency
        ),
    ]);
    t.push_row(vec![
        "L2 cache".into(),
        format!(
            "{}, {}-way, {}-cycle tag / {}-cycle data, sequential",
            kb(cfg.l2.size_bytes),
            cfg.l2.assoc,
            cfg.l2.tag_latency,
            cfg.l2.data_latency
        ),
    ]);
    if let Some(l3) = cfg.l3 {
        t.push_row(vec![
            "L3 cache".into(),
            format!(
                "{}, {}-way, {}-cycle tag / {}-cycle data, sequential",
                kb(l3.size_bytes),
                l3.assoc,
                l3.tag_latency,
                l3.data_latency
            ),
        ]);
    }
    t.push_row(vec![
        "Main memory".into(),
        format!(
            "STT crosspoint MDA, {} channels × {} ranks × {} banks, open page",
            cfg.mem.channels, cfg.mem.ranks, cfg.mem.banks
        ),
    ]);
    t.push_row(vec![
        "Memory controller".into(),
        format!(
            "FRFCFS-WQF (write queue {} / high {} / low {})",
            cfg.mem.write_queue_capacity, cfg.mem.write_queue_high, cfg.mem.write_queue_low
        ),
    ]);
    t.push_row(vec![
        "STT timing (cpu cycles)".into(),
        format!(
            "tRCD {} / tCAS {} / tRP {} / tWR {} / burst {}",
            cfg.mem.timing.t_rcd,
            cfg.mem.timing.t_cas,
            cfg.mem.timing.t_rp,
            cfg.mem.timing.t_write,
            cfg.mem.timing.burst
        ),
    ]);
    t.push_row(vec![
        "Inputs".into(),
        format!(
            "{n}×{n} matrices (htap: 2048×{n}); cache-resident study {m}×{m}",
            n = cfg.default_input,
            m = cfg.default_input / 2
        ),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_matches_table_one() {
        let out = render(Scale::Paper);
        assert!(out.contains("32 KB"));
        assert!(out.contains("256 KB"));
        assert!(out.contains("1024 KB"));
        assert!(out.contains("FRFCFS-WQF"));
        assert!(out.contains("512×512"));
    }

    #[test]
    fn every_scale_renders() {
        for s in [Scale::Tiny, Scale::Scaled, Scale::Paper] {
            assert!(!render(s).is_empty());
        }
    }
}
