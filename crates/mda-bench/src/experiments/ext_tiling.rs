//! Extension (paper Sec. X, future work): hardware/software collaborative
//! tiling — "the compiler can tile a loop nest such that the tile size (in
//! each dimension) matches the 2-D block size used by the 2P2L cache … We
//! expect such hardware-software collaborative tiling to generate better
//! results than software tiling or hardware tiling (2P2L) alone."
//!
//! This experiment runs `sgemm` in four configurations against the
//! prefetching baseline: the 1P2L and 2P2L hierarchies, each with and
//! without 8×8×8 iteration-space tiling, so "software-only", "hardware-
//! only" and "collaborative" tiling can be compared directly.

use crate::experiments::FigureTable;
use crate::scale::Scale;
use mda_compiler::{tile_program, Program, TraceSource};
use mda_sim::{simulate, HierarchyKind, SystemConfig};
use mda_workloads::sgemm;

/// Tile sizes matched to the 8×8-word MDA block.
pub const BLOCK: i64 = 8;

/// Builds the 8×8×8-blocked sgemm.
///
/// # Panics
/// Panics if `n` is not a multiple of the block size (rectangular tiling
/// only).
pub fn sgemm_blocked(n: u64) -> Program {
    tile_program(&sgemm(n), |_, nest| {
        // Tile every rectangular loop of the (j, i, k) nest.
        Some((0..nest.depth()).map(|v| (v, BLOCK)).collect())
    })
    .expect("sgemm is rectangular and divisible by the block size")
}

/// Runs the comparison. Values are cycles normalized to the untiled
/// prefetching baseline; series order is software-only → hardware-only →
/// collaborative.
pub fn run(scale: Scale) -> FigureTable {
    let n = scale.input();
    let plain = sgemm(n);
    let blocked = sgemm_blocked(n);

    // The baseline rides along as variant 0 so all five simulations share
    // one fan-out.
    let variants: [(&str, &Program, SystemConfig); 5] = [
        ("base", &plain, scale.system(HierarchyKind::Baseline1P1L)),
        ("1P2L", &plain, scale.system(HierarchyKind::P1L2DifferentSet)),
        ("1P2L+tiling", &blocked, scale.system(HierarchyKind::P1L2DifferentSet)),
        ("2P2L", &plain, scale.system(HierarchyKind::P2L2Sparse)),
        ("2P2L+tiling", &blocked, scale.system(HierarchyKind::P2L2Sparse)),
    ];
    let cycles =
        crate::parallel::par_map(&variants, |(_, program, cfg)| simulate(*program as &dyn TraceSource, cfg).cycles);
    let base = cycles[0];
    let mut fig = FigureTable::new(
        format!("Extension — collaborative tiling on sgemm, normalized cycles ({n}×{n})"),
        vec!["sgemm".to_string()],
    );
    for ((name, _, _), c) in variants.iter().zip(&cycles).skip(1) {
        fig.push_series(*name, vec![*c as f64 / base.max(1) as f64]);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_compiler::trace::count_ops;
    use mda_compiler::CodegenOptions;

    #[test]
    fn blocked_sgemm_keeps_volume_close_and_footprint_identical() {
        let plain = count_ops(&sgemm(32), &CodegenOptions::mda());
        let blocked = count_ops(&sgemm_blocked(32), &CodegenOptions::mda());
        // Blocking shrinks the register-promotion scope of the C
        // accumulator (one read+write per k-block instead of per (i, j)),
        // so the access volume grows slightly — but only slightly.
        assert!(blocked.bytes >= plain.bytes);
        assert!(blocked.bytes <= plain.bytes + plain.bytes / 5, "{} vs {}", blocked.bytes, plain.bytes);
    }

    #[test]
    fn collaborative_tiling_beats_hardware_tiling_alone() {
        let fig = run(Scale::Tiny);
        let hw = fig.value("2P2L", "sgemm").expect("series");
        let collab = fig.value("2P2L+tiling", "sgemm").expect("series");
        assert!(
            collab < hw,
            "collaborative ({collab:.3}) should beat hardware-only ({hw:.3})"
        );
    }

    #[test]
    fn tiling_also_helps_the_1p2l_hierarchy() {
        let fig = run(Scale::Tiny);
        let sw = fig.value("1P2L+tiling", "sgemm").expect("series");
        let plain = fig.value("1P2L", "sgemm").expect("series");
        assert!(sw < plain * 1.05, "tiling should not hurt 1P2L ({plain:.3} → {sw:.3})");
    }
}
