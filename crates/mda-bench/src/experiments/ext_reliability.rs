//! Extension: reliability under fault injection — the cost of ECC,
//! write-verify-retry and tile remapping across the error-rate range.
//!
//! The paper's crosspoint STT-MRAM arrays are write-error-prone, but the
//! evaluation assumes fault-free devices. This experiment sweeps the raw
//! write bit-error rate over several orders of magnitude with proportional
//! read-disturb and retention rates, and reports for each design:
//!
//! * total cycles normalized to that design's own fault-free run (the
//!   performance tax of verify-retry traffic and remap lookups),
//! * write retries per thousand line writes, and
//! * ECC-corrected words per million words accessed.
//!
//! The fault model is seeded deterministically, so tables are reproducible
//! across runs and worker counts.

use crate::experiments::{metric_series, norm_series, FigureTable};
use crate::parallel::{run_cells, Cell};
use crate::scale::Scale;
use mda_sim::{FaultConfig, HierarchyKind};
use mda_workloads::Kernel;

/// Raw write bit-error rates swept, from fault-free to aggressive.
pub const BERS: [f64; 4] = [0.0, 1e-5, 1e-4, 1e-3];

/// Seed for the deterministic fault model (arbitrary but fixed).
pub const FAULT_SEED: u64 = 0x4D44_4143;

/// Designs compared: the conventional baseline and the two headline MDA
/// designs.
pub const PLOTTED: [HierarchyKind; 3] = [
    HierarchyKind::Baseline1P1L,
    HierarchyKind::P1L2DifferentSet,
    HierarchyKind::P2L2Sparse,
];

/// The fault configuration for one sweep point: read-disturb and retention
/// rates scale with the write BER (writes dominate raw error rates in
/// crosspoint STT devices).
pub fn fault_config(write_ber: f64) -> FaultConfig {
    FaultConfig::uniform(FAULT_SEED, write_ber, write_ber / 8.0, write_ber / 16.0)
}

/// Row label for one error-rate point.
fn ber_label(ber: f64) -> String {
    if ber == 0.0 {
        "ber=0".to_string()
    } else {
        format!("ber={ber:e}")
    }
}

/// All three panels of the reliability study.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityFigure {
    /// Cycles normalized to each design's own fault-free run.
    pub cycles: FigureTable,
    /// Write retries per 1 000 line writes.
    pub retries: FigureTable,
    /// ECC-corrected words per 1 000 000 words accessed.
    pub corrected: FigureTable,
}

/// Runs the sweep on `sgemm` (the most write-heavy kernel of the suite).
pub fn run(scale: Scale) -> ReliabilityFigure {
    let n = scale.input();
    let rows: Vec<String> = BERS.iter().map(|b| ber_label(*b)).collect();
    let mut cycles = FigureTable::new(
        format!("Extension — cycles vs write BER, normalized to each design's fault-free run ({n}×{n}, sgemm)"),
        rows.clone(),
    );
    let mut retries = FigureTable::new(
        format!("Extension — write retries per 1k line writes ({n}×{n}, sgemm)"),
        rows.clone(),
    );
    let mut corrected = FigureTable::new(
        format!("Extension — ECC-corrected words per 1M words accessed ({n}×{n}, sgemm)"),
        rows,
    );

    let cells: Vec<Cell> = PLOTTED
        .iter()
        .flat_map(|kind| {
            BERS.iter().map(|ber| {
                Cell::new(
                    format!("ext_reliability/{}/{}", kind.name(), ber_label(*ber)),
                    Kernel::Sgemm,
                    n,
                    scale.system(*kind).with_faults(fault_config(*ber)),
                )
            })
        })
        .collect();
    let outcomes = run_cells(&cells);

    for (kind, chunk) in PLOTTED.iter().zip(outcomes.chunks(BERS.len())) {
        // chunk[0] is the design's own ber=0 run: the cycle normalizer.
        let raw_cycles = metric_series(chunk, |r| r.cycles as f64);
        let baselines = vec![raw_cycles[0]; chunk.len()];
        cycles.push_series(kind.name(), norm_series(&raw_cycles, &baselines));
        retries.push_series(
            kind.name(),
            metric_series(chunk, |r| {
                r.mem.write_retries as f64 * 1e3 / r.mem.writes.max(1) as f64
            }),
        );
        corrected.push_series(
            kind.name(),
            metric_series(chunk, |r| {
                r.mem.ecc_corrected_words as f64 * 1e6 / r.mem.words_accessed().max(1) as f64
            }),
        );
    }
    ReliabilityFigure { cycles, retries, corrected }
}

/// Renders all three panels.
pub fn render(scale: Scale) -> String {
    let f = run(scale);
    format!("{}\n{}\n{}", f.cycles.render(), f.retries.render(), f.corrected.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_row_is_exactly_one_with_zero_retries() {
        let f = run(Scale::Tiny);
        for kind in PLOTTED {
            let d = kind.name();
            assert_eq!(f.cycles.value(d, "ber=0"), Some(1.0), "{d} normalizer");
            assert_eq!(f.retries.value(d, "ber=0"), Some(0.0), "{d} retries");
            assert_eq!(f.corrected.value(d, "ber=0"), Some(0.0), "{d} corrections");
        }
    }

    #[test]
    fn aggressive_error_rates_cost_retries_and_cycles() {
        let f = run(Scale::Tiny);
        let worst = ber_label(BERS[BERS.len() - 1]);
        for kind in PLOTTED {
            let d = kind.name();
            let retries = f.retries.value(d, &worst).expect("series");
            assert!(retries > 0.0, "{d}: no retries at the highest BER");
            let cycles = f.cycles.value(d, &worst).expect("series");
            assert!(cycles >= 1.0, "{d}: faults cannot speed execution up ({cycles})");
            let corrected = f.corrected.value(d, &worst).expect("series");
            assert!(corrected > 0.0, "{d}: ECC never fired at the highest BER");
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(run(Scale::Tiny), run(Scale::Tiny));
    }
}
