//! Simulator-throughput benchmark (`figures --bench-sim`).
//!
//! Measures **steady-state accesses per second** — how many trace memory
//! operations the simulator retires per wall-clock second — for every
//! (design × kernel) cell, and writes the results as `BENCH_sim.json`.
//! This seeds the perf trajectory the ROADMAP asks for: every future PR
//! can rerun the benchmark and show its delta against the committed
//! numbers.
//!
//! Methodology: each cell runs [`mda_sim::simulate`] end to end (trace
//! generation + the full demand path) `reps` times and keeps the fastest
//! repetition, so one scheduler hiccup cannot poison a cell. Cells run
//! **sequentially** regardless of `--jobs`: throughput measurement needs
//! an unloaded machine, and co-running cells would steal each other's
//! cycles. The figure-of-merit is `mem_ops / seconds` of the fastest rep.

use crate::experiments::run_kernel;
use crate::Scale;
use mda_sim::HierarchyKind;
use mda_workloads::Kernel;
use std::time::Instant;

/// One measured (design × kernel) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// Design label (e.g. `2P2L`).
    pub design: String,
    /// Kernel name (e.g. `sgemm`).
    pub kernel: String,
    /// Trace memory operations retired per repetition.
    pub mem_ops: u64,
    /// Wall-clock seconds of the fastest repetition.
    pub seconds: f64,
    /// `mem_ops / seconds`.
    pub accesses_per_sec: f64,
}

/// A full benchmark run: every design × kernel cell at one scale.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Scale the cells ran at.
    pub scale: Scale,
    /// Repetitions per cell (fastest kept).
    pub reps: u32,
    /// Measured cells, designs outer, kernels inner.
    pub cells: Vec<BenchCell>,
}

impl BenchReport {
    /// The cell for `(design, kernel)`, if measured.
    pub fn cell(&self, design: &str, kernel: &str) -> Option<&BenchCell> {
        self.cells.iter().find(|c| c.design == design && c.kernel == kernel)
    }

    /// Renders the report as a JSON document (no external crates; the
    /// format is stable: one object with a `cells` array).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(out, "  \"reps\": {},", self.reps);
        let _ = writeln!(out, "  \"metric\": \"steady-state trace mem-ops per wall-clock second\",");
        let _ = writeln!(out, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"design\": \"{}\", \"kernel\": \"{}\", \"mem_ops\": {}, \
                 \"seconds\": {:.6}, \"accesses_per_sec\": {:.1}}}{}",
                c.design, c.kernel, c.mem_ops, c.seconds, c.accesses_per_sec, comma
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Renders an aligned text summary (design rows × kernel columns, in
    /// millions of accesses per second).
    pub fn render(&self) -> String {
        let kernels: Vec<&str> = Kernel::all().iter().map(|k| k.name()).collect();
        let mut header = vec!["design".to_string()];
        header.extend(kernels.iter().map(|k| k.to_string()));
        let mut t = crate::table::TextTable::new(header);
        for kind in HierarchyKind::all() {
            let mut row = vec![kind.name().to_string()];
            for k in &kernels {
                let v = self
                    .cell(kind.name(), k)
                    .map(|c| format!("{:.2}", c.accesses_per_sec / 1e6))
                    .unwrap_or_else(|| "-".to_string());
                row.push(v);
            }
            t.push_row(row);
        }
        format!("Simulator throughput (M accesses/s), scale {}\n{}", self.scale, t.render())
    }
}

/// Runs the throughput benchmark: every design × kernel at `scale`,
/// `reps` repetitions per cell (fastest kept). Cells run sequentially.
pub fn run(scale: Scale, reps: u32) -> BenchReport {
    run_filtered(scale, reps, None)
}

/// [`run`] restricted to cells whose `design/kernel` label contains
/// `filter` (used for quick single-cell deltas while optimizing).
pub fn run_filtered(scale: Scale, reps: u32, filter: Option<&str>) -> BenchReport {
    assert!(reps > 0, "need at least one repetition");
    let n = scale.input();
    let mut cells = Vec::new();
    for kind in HierarchyKind::all() {
        let cfg = scale.system(kind);
        for kernel in Kernel::all() {
            if let Some(f) = filter {
                if !format!("{}/{}", kind.name(), kernel.name()).contains(f) {
                    continue;
                }
            }
            let mut best = f64::INFINITY;
            let mut mem_ops = 0;
            for _ in 0..reps {
                let t0 = Instant::now();
                let report = run_kernel(kernel, n, &cfg);
                let secs = t0.elapsed().as_secs_f64();
                mem_ops = report.ops.mem_ops;
                if secs < best {
                    best = secs;
                }
            }
            eprintln!(
                "[bench-sim] {}/{}: {} mem-ops in {:.3}s ({:.2} M acc/s)",
                kind.name(),
                kernel.name(),
                mem_ops,
                best,
                mem_ops as f64 / best / 1e6
            );
            cells.push(BenchCell {
                design: kind.name().to_string(),
                kernel: kernel.name().to_string(),
                mem_ops,
                seconds: best,
                accesses_per_sec: mem_ops as f64 / best,
            });
        }
    }
    BenchReport { scale, reps, cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_complete() {
        let report = BenchReport {
            scale: Scale::Tiny,
            reps: 1,
            cells: vec![BenchCell {
                design: "2P2L".into(),
                kernel: "sgemm".into(),
                mem_ops: 1000,
                seconds: 0.5,
                accesses_per_sec: 2000.0,
            }],
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"accesses_per_sec\": 2000.0"));
        assert!(json.contains("\"cells\": ["));
        assert_eq!(json.matches("\"design\"").count(), 1);
        assert!(report.cell("2P2L", "sgemm").is_some());
        assert!(report.cell("2P2L", "htap").is_none());
    }

    #[test]
    fn render_lists_every_design_row() {
        let report = run_smoke_like();
        let text = report.render();
        for kind in HierarchyKind::all() {
            assert!(text.contains(kind.name()), "missing {}: {text}", kind.name());
        }
    }

    /// A minimal in-process run: one design, smallest kernel set is fixed,
    /// so build a report by hand instead of running 42 simulations in unit
    /// tests.
    fn run_smoke_like() -> BenchReport {
        let cells = HierarchyKind::all()
            .iter()
            .map(|kind| BenchCell {
                design: kind.name().to_string(),
                kernel: "sgemm".to_string(),
                mem_ops: 10,
                seconds: 1.0,
                accesses_per_sec: 10.0,
            })
            .collect();
        BenchReport { scale: Scale::Tiny, reps: 1, cells }
    }
}
