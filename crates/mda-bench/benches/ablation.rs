//! Criterion bench for the design ablations (layout mismatch, dense fill).

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::{experiments::ablation, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("layout-mismatch/tiny", |b| {
        b.iter(|| std::hint::black_box(ablation::layout_mismatch(Scale::Tiny)))
    });
    g.bench_function("dense-fill/tiny", |b| {
        b.iter(|| std::hint::black_box(ablation::dense_fill(Scale::Tiny)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
