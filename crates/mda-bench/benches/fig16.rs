//! Criterion bench for Fig. 16: 2P2L write-asymmetry sensitivity.

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::{experiments::fig16, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    g.bench_function("tiny", |b| b.iter(|| std::hint::black_box(fig16::run(Scale::Tiny))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
