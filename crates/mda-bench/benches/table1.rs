//! Criterion bench for Table I rendering (configuration assembly).

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::{experiments::table1, Scale};

fn bench(c: &mut Criterion) {
    c.bench_function("table1/render", |b| {
        b.iter(|| std::hint::black_box(table1::render(Scale::Paper)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
