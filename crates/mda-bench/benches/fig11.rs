//! Criterion bench for Fig. 11: normalized L1 hit rates.

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::{experiments::fig11, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("tiny", |b| b.iter(|| std::hint::black_box(fig11::run(Scale::Tiny))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
