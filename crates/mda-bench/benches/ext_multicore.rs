//! Criterion bench for the multi-programmed extension experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::{experiments::ext_multicore, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_multicore");
    g.sample_size(10);
    g.bench_function("tiny", |b| {
        b.iter(|| std::hint::black_box(ext_multicore::run(Scale::Tiny)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
