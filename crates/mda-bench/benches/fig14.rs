//! Criterion bench for Fig. 14: normalized LLC accesses and memory traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::{experiments::fig14, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("tiny", |b| b.iter(|| std::hint::black_box(fig14::run(Scale::Tiny))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
