//! Criterion bench for Fig. 15: column-occupancy timelines.

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::{experiments::fig15, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("tiny", |b| b.iter(|| std::hint::black_box(fig15::run(Scale::Tiny))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
