//! Criterion bench for Fig. 17: faster-main-memory sensitivity.

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::{experiments::fig17, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17");
    g.sample_size(10);
    g.bench_function("tiny", |b| b.iter(|| std::hint::black_box(fig17::run(Scale::Tiny))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
