//! Criterion bench for Fig. 10: access-mix extraction from the compiled
//! traces of all seven kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::{experiments::fig10, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("access-mix/tiny", |b| {
        b.iter(|| std::hint::black_box(fig10::run(Scale::Tiny)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
