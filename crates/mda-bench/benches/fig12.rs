//! Criterion bench for Fig. 12: the LLC-capacity sweep of normalized
//! execution cycles (benched at its smallest LLC point to stay fast).

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::{experiments::fig12, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    let llc = Scale::Tiny.llc_sweep()[0];
    g.bench_function("tiny/smallest-llc", |b| {
        b.iter(|| std::hint::black_box(fig12::run_one(Scale::Tiny, llc)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
