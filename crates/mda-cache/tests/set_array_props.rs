//! Property tests: `SetArray` against a reference LRU model.

use mda_cache::set_array::SetArray;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference model: per set, an ordered list from LRU front to MRU back.
#[derive(Debug, Default, Clone)]
struct RefSet {
    entries: VecDeque<(u64, u8)>,
}

impl RefSet {
    fn get(&mut self, key: u64) -> Option<u8> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let e = self.entries.remove(pos).expect("position valid");
        self.entries.push_back(e);
        Some(e.1)
    }

    fn insert(&mut self, key: u64, meta: u8, assoc: usize) -> Option<(u64, u8)> {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
            self.entries.push_back((key, meta));
            return None;
        }
        let victim = if self.entries.len() >= assoc { self.entries.pop_front() } else { None };
        self.entries.push_back((key, meta));
        victim
    }

    fn remove(&mut self, key: u64) -> Option<u8> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        self.entries.remove(pos).map(|(_, m)| m)
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Get(u64),
    Insert(u64, u8),
    Remove(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..12).prop_map(Op::Get),
        (0u64..12, any::<u8>()).prop_map(|(k, m)| Op::Insert(k, m)),
        (0u64..12).prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The array behaves exactly like the reference LRU model on one set.
    #[test]
    fn matches_reference_lru(ops in proptest::collection::vec(op_strategy(), 1..200), assoc in 1usize..5) {
        let mut array: SetArray<u64, u8> = SetArray::new(1, assoc);
        let mut model = RefSet::default();
        for op in ops {
            match op {
                Op::Get(k) => {
                    let got = array.get_mut(0, k).map(|m| *m);
                    prop_assert_eq!(got, model.get(k));
                }
                Op::Insert(k, m) => {
                    let evicted = array.insert(0, k, m);
                    prop_assert_eq!(evicted, model.insert(k, m, assoc));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(array.remove(0, k), model.remove(k));
                }
            }
            prop_assert_eq!(array.len(), model.entries.len());
            prop_assert!(array.len() <= assoc);
        }
    }

    /// Sets never interfere with each other.
    #[test]
    fn sets_are_disjoint(keys in proptest::collection::vec(0u64..64, 1..64)) {
        let mut array: SetArray<u64, usize> = SetArray::new(4, 16);
        for (i, k) in keys.iter().enumerate() {
            array.insert((k % 4) as usize, *k, i);
        }
        for set in 0..4 {
            for (k, _) in array.iter_set(set) {
                prop_assert_eq!((k % 4) as usize, set);
            }
        }
    }
}
