//! Property tests for the 1P2L duplicate-word policy (paper Fig. 9).
//!
//! The paper's correctness argument is: "modifications can only happen when
//! there is only one copy of the word in the cache … and all modifications
//! (if any) are propagated back before bringing in other copies". These
//! properties drive random access/fill sequences through the cache the same
//! way the hierarchy does, and check exactly those invariants.

use mda_cache::level::CacheLevelExt;
use mda_cache::{Access, Cache1P2L, Cache2P2L, CacheConfig, CacheLevel, SetMapping, Writeback};
use mda_mem::{LineKey, Orientation, WordAddr};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// One step of a random cache workout.
#[derive(Debug, Clone, Copy)]
enum Step {
    ScalarRead { tile: u64, r: u8, c: u8, orient: Orientation },
    ScalarWrite { tile: u64, r: u8, c: u8, orient: Orientation },
    VectorRead { tile: u64, idx: u8, orient: Orientation },
    VectorWrite { tile: u64, idx: u8, orient: Orientation },
}

fn orient_strategy() -> impl Strategy<Value = Orientation> {
    prop_oneof![Just(Orientation::Row), Just(Orientation::Col)]
}

fn step_strategy(tiles: u64) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..tiles, 0u8..8, 0u8..8, orient_strategy())
            .prop_map(|(tile, r, c, orient)| Step::ScalarRead { tile, r, c, orient }),
        (0..tiles, 0u8..8, 0u8..8, orient_strategy())
            .prop_map(|(tile, r, c, orient)| Step::ScalarWrite { tile, r, c, orient }),
        (0..tiles, 0u8..8, orient_strategy())
            .prop_map(|(tile, idx, orient)| Step::VectorRead { tile, idx, orient }),
        (0..tiles, 0u8..8, orient_strategy())
            .prop_map(|(tile, idx, orient)| Step::VectorWrite { tile, idx, orient }),
    ]
}

fn tiny_cache(mapping: SetMapping) -> Cache1P2L {
    let mut cfg = CacheConfig::l1_32k();
    cfg.size_bytes = 2048; // 32 line frames: plenty of conflict pressure
    cfg.assoc = 4;
    Cache1P2L::new(cfg, mapping)
}

/// Applies one step through the demand protocol the hierarchy uses,
/// returning every writeback the cache emitted. Works for any level: the
/// demand line (`fills[0]`) is write-allocated, companion fills (2P2L
/// dense) arrive clean.
fn apply<L: CacheLevel>(cache: &mut L, step: Step) -> Vec<Writeback> {
    let acc = match step {
        Step::ScalarRead { tile, r, c, orient } => {
            Access::scalar_read(WordAddr::from_tile_coords(tile, r, c), orient, 0)
        }
        Step::ScalarWrite { tile, r, c, orient } => {
            Access::scalar_write(WordAddr::from_tile_coords(tile, r, c), orient, 0)
        }
        Step::VectorRead { tile, idx, orient } => {
            Access::vector_read(LineKey::new(tile, orient, idx), 0)
        }
        Step::VectorWrite { tile, idx, orient } => {
            Access::vector_write(LineKey::new(tile, orient, idx), 0)
        }
    };
    let probe = cache.probe(&acc);
    let mut wbs: Vec<Writeback> = probe.writebacks.to_vec();
    if !probe.hit {
        let line = probe.fills[0];
        let dirty = if acc.is_write {
            match acc.width {
                mda_cache::AccessWidth::Vector => 0xFF,
                mda_cache::AccessWidth::Scalar => 1 << line.offset_of(acc.word).unwrap(),
            }
        } else {
            0
        };
        for (i, fill) in probe.fills.iter().enumerate() {
            wbs.extend(cache.fill_collect(*fill, if i == 0 { dirty } else { 0 }));
        }
    }
    wbs
}

/// Words dirty in the cache right now, with multiplicity.
fn dirty_copy_counts(cache: &Cache1P2L) -> HashMap<WordAddr, usize> {
    let mut counts: HashMap<WordAddr, usize> = HashMap::new();
    cache.for_each_line(&mut |line, dirty| {
        for off in 0..8u8 {
            if dirty & (1 << off) != 0 {
                *counts.entry(line.word_at(off)).or_default() += 1;
            }
        }
    });
    counts
}

/// Number of resident copies of each word.
fn copy_counts(cache: &Cache1P2L) -> HashMap<WordAddr, usize> {
    let mut counts: HashMap<WordAddr, usize> = HashMap::new();
    cache.for_each_line(&mut |line, _| {
        for w in line.words() {
            *counts.entry(w).or_default() += 1;
        }
    });
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// At most one dirty copy of a word exists, ever, under both mappings.
    #[test]
    fn modified_words_have_a_sole_copy(
        steps in proptest::collection::vec(step_strategy(4), 1..120),
        same_set in any::<bool>(),
    ) {
        let mapping = if same_set { SetMapping::SameSet } else { SetMapping::DifferentSet };
        let mut cache = tiny_cache(mapping);
        for step in steps {
            apply(&mut cache, step);
            let dirty = dirty_copy_counts(&cache);
            for (word, n) in &dirty {
                prop_assert!(*n <= 1, "word {word} has {n} dirty copies");
            }
            // Stronger: a dirty word has no clean duplicate either — the
            // write evicted them (Fig. 9 "write to duplicate").
            let copies = copy_counts(&cache);
            for (word, _) in dirty {
                prop_assert_eq!(
                    copies.get(&word).copied().unwrap_or(0), 1,
                    "dirty word {} is duplicated", word
                );
            }
        }
    }

    /// No write is ever lost: after a full flush, every word that was
    /// written was either written back during the run or by the flush.
    #[test]
    fn no_lost_writes(
        steps in proptest::collection::vec(step_strategy(4), 1..120),
    ) {
        let mut cache = tiny_cache(SetMapping::DifferentSet);
        let mut written: HashSet<WordAddr> = HashSet::new();
        let mut written_back: HashSet<WordAddr> = HashSet::new();
        for step in steps {
            match step {
                Step::ScalarWrite { tile, r, c, .. } => {
                    written.insert(WordAddr::from_tile_coords(tile, r, c));
                }
                Step::VectorWrite { tile, idx, orient } => {
                    written.extend(LineKey::new(tile, orient, idx).words());
                }
                _ => {}
            }
            for wb in apply(&mut cache, step) {
                for off in 0..8u8 {
                    if wb.dirty & (1 << off) != 0 {
                        written_back.insert(wb.line.word_at(off));
                    }
                }
            }
        }
        for wb in cache.flush_collect() {
            for off in 0..8u8 {
                if wb.dirty & (1 << off) != 0 {
                    written_back.insert(wb.line.word_at(off));
                }
            }
        }
        for w in &written {
            prop_assert!(written_back.contains(w), "write to {w} was dropped");
        }
    }

    /// Occupancy accounting matches the resident-line enumeration.
    #[test]
    fn occupancy_matches_enumeration(
        steps in proptest::collection::vec(step_strategy(8), 1..80),
    ) {
        let mut cache = tiny_cache(SetMapping::DifferentSet);
        for step in steps {
            apply(&mut cache, step);
        }
        let (rows, cols, _) = cache.occupancy();
        let lines = cache.lines();
        let enum_rows = lines.iter().filter(|(k, _)| k.orient == Orientation::Row).count();
        let enum_cols = lines.iter().filter(|(k, _)| k.orient == Orientation::Col).count();
        prop_assert_eq!(rows, enum_rows);
        prop_assert_eq!(cols, enum_cols);
    }

    /// The 2P2L block cache survives random workouts under both fill
    /// policies. The real teeth are the `debug_assert_dirty_implies_valid`
    /// hooks inside `Cache2P2L` (mirroring the model checker's
    /// `DirtyInvalidLine` invariant), which fire on every probe/fill/absorb
    /// in this debug-built test; externally we re-check that occupancy
    /// accounting matches the line enumeration after every step.
    #[test]
    fn block_cache_survives_random_workouts(
        steps in proptest::collection::vec(step_strategy(4), 1..120),
        sparse in any::<bool>(),
    ) {
        let mut cfg = CacheConfig::l3(16 * 1024);
        cfg.assoc = 8;
        let mut cache = Cache2P2L::with_fill_policy(cfg, sparse);
        for step in steps {
            apply(&mut cache, step);
            let (rows, cols, _) = cache.occupancy();
            let lines = cache.lines();
            let enum_rows = lines.iter().filter(|(k, _)| k.orient == Orientation::Row).count();
            let enum_cols = lines.iter().filter(|(k, _)| k.orient == Orientation::Col).count();
            prop_assert_eq!(rows, enum_rows);
            prop_assert_eq!(cols, enum_cols);
        }
    }

    /// A scalar read immediately after any history hits if and only if the
    /// word is resident (alignment is ignored for scalar reads).
    #[test]
    fn scalar_read_hit_iff_word_resident(
        steps in proptest::collection::vec(step_strategy(4), 1..80),
        tile in 0u64..4, r in 0u8..8, c in 0u8..8,
    ) {
        let mut cache = tiny_cache(SetMapping::DifferentSet);
        for step in steps {
            apply(&mut cache, step);
        }
        let word = WordAddr::from_tile_coords(tile, r, c);
        let resident = cache.resident_words().contains(&word);
        let probe = cache.probe(&Access::scalar_read(word, Orientation::Row, 0));
        prop_assert_eq!(probe.hit, resident);
    }
}
