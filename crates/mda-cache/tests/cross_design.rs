//! Cross-design integration tests at the cache-crate level: the same
//! access sequence driven through all organizations must preserve the
//! architectural contract even where their mechanisms differ.

use mda_cache::level::CacheLevelExt;
use mda_cache::{
    Access, Cache1P1L, Cache1P2L, Cache2P2L, CacheConfig, CacheLevel, SetMapping,
};
use mda_mem::{LineKey, Orientation, WordAddr};

fn cfg(bytes: u64) -> CacheConfig {
    let mut c = CacheConfig::l1_32k();
    c.size_bytes = bytes;
    c
}

fn all_designs() -> Vec<(&'static str, Box<dyn CacheLevel>)> {
    let mut tile_cfg = CacheConfig::l3(16 * 1024);
    tile_cfg.assoc = 8;
    vec![
        ("1P1L", Box::new(Cache1P1L::new(cfg(8192)))),
        ("1P2L-diff", Box::new(Cache1P2L::new(cfg(8192), SetMapping::DifferentSet))),
        ("1P2L-same", Box::new(Cache1P2L::new(cfg(8192), SetMapping::SameSet))),
        ("2P2L", Box::new(Cache2P2L::new(tile_cfg))),
        ("2P2L-dense", Box::new(Cache2P2L::with_fill_policy(tile_cfg, false))),
    ]
}

/// Drives a demand access the way the hierarchy does.
fn demand(cache: &mut dyn CacheLevel, acc: &Access) {
    let probe = cache.probe(acc);
    if !probe.hit {
        let dirty = if acc.is_write {
            match acc.width {
                mda_cache::AccessWidth::Vector => 0xFF,
                mda_cache::AccessWidth::Scalar => {
                    1 << probe.fills[0].offset_of(acc.word).unwrap()
                }
            }
        } else {
            0
        };
        for (i, line) in probe.fills.iter().enumerate() {
            cache.fill_collect(*line, if i == 0 { dirty } else { 0 });
        }
    }
}

#[test]
fn scalar_read_after_scalar_write_hits_on_every_design() {
    for (name, mut cache) in all_designs() {
        let w = WordAddr::from_tile_coords(3, 2, 5);
        demand(cache.as_mut(), &Access::scalar_write(w, Orientation::Row, 0));
        let p = cache.probe(&Access::scalar_read(w, Orientation::Col, 0));
        assert!(p.hit, "{name}: written word must be readable in either orientation");
    }
}

#[test]
fn written_word_is_dirty_exactly_once_everywhere() {
    for (name, mut cache) in all_designs() {
        let w = WordAddr::from_tile_coords(1, 4, 6);
        demand(cache.as_mut(), &Access::scalar_write(w, Orientation::Col, 0));
        let dirty = cache.dirty_words();
        assert!(dirty.contains(&w), "{name}: written word not dirty");
        assert_eq!(
            dirty.iter().filter(|x| **x == w).count(),
            1,
            "{name}: duplicate dirty copies"
        );
    }
}

#[test]
fn flush_after_writes_reports_every_written_word() {
    for (name, mut cache) in all_designs() {
        let mut expected = Vec::new();
        for t in 0..3u64 {
            let line = LineKey::new(t, Orientation::Row, 1);
            demand(cache.as_mut(), &Access::vector_write(line, 0));
            expected.extend(line.words());
        }
        let mut flushed = Vec::new();
        for wb in cache.flush_collect() {
            for off in 0..8u8 {
                if wb.dirty & (1 << off) != 0 {
                    flushed.push(wb.line.word_at(off));
                }
            }
        }
        for w in &expected {
            assert!(flushed.contains(w), "{name}: lost write to {w}");
        }
    }
}

#[test]
fn vector_row_read_hits_after_row_fill_everywhere() {
    for (name, mut cache) in all_designs() {
        let line = LineKey::new(2, Orientation::Row, 3);
        demand(cache.as_mut(), &Access::vector_read(line, 0));
        assert!(cache.contains_line(&line), "{name}");
        let p = cache.probe(&Access::vector_read(line, 0));
        assert!(p.hit, "{name}: refetch of a resident line");
    }
}

#[test]
fn stats_classify_accesses_identically() {
    // All designs see the same access mix classification (it depends only
    // on the access stream, not on hits/misses).
    for (name, mut cache) in all_designs() {
        if name == "1P1L" {
            continue; // cannot serve column vectors
        }
        demand(cache.as_mut(), &Access::scalar_read(WordAddr(0), Orientation::Row, 0));
        demand(
            cache.as_mut(),
            &Access::vector_read(LineKey::new(0, Orientation::Col, 0), 0),
        );
        let s = cache.stats();
        assert_eq!(s.row_scalar, 1, "{name}");
        assert_eq!(s.col_vector, 1, "{name}");
        assert_eq!(s.accesses, 2, "{name}");
    }
}

#[test]
fn resident_words_reflect_fills() {
    for (name, mut cache) in all_designs() {
        let line = LineKey::new(5, Orientation::Row, 2);
        demand(cache.as_mut(), &Access::vector_read(line, 0));
        let resident = cache.resident_words();
        for w in line.words() {
            assert!(resident.contains(&w), "{name}: filled word missing");
        }
    }
}
