//! Per-cache-level statistics.

use crate::level::{Access, AccessWidth};
use mda_mem::Orientation;

/// Counters accumulated by one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses presented to the level.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Scalar accesses with row preference.
    pub row_scalar: u64,
    /// Vector accesses with row preference.
    pub row_vector: u64,
    /// Scalar accesses with column preference.
    pub col_scalar: u64,
    /// Vector accesses with column preference.
    pub col_vector: u64,
    /// Hits served by a line of the *non-preferred* orientation
    /// (mis-oriented hits, scalar only; 2P2L covered vector hits too).
    pub misoriented_hits: u64,
    /// Lines installed by demand fills.
    pub demand_fills: u64,
    /// Lines installed by prefetch fills.
    pub prefetch_fills: u64,
    /// Dirty lines written back out of this level (evictions + policy).
    pub writebacks_out: u64,
    /// Lines evicted by the duplicate-word policy.
    pub dup_evictions: u64,
    /// Writebacks forced by the duplicate-word policy.
    pub dup_writebacks: u64,
    /// Duplicate word-copies created (row/col intersections co-resident).
    pub duplications: u64,
    /// Additional sequential tag-array accesses (beyond the first).
    pub extra_tag_accesses: u64,
    /// Misses coalesced into an already-outstanding MSHR entry.
    pub mshr_coalesced: u64,
    /// Stalls because all MSHRs were busy.
    pub mshr_stalls: u64,
    /// Bytes requested from the level below (fills).
    pub bytes_from_below: u64,
    /// Bytes written back to the level below.
    pub bytes_to_below: u64,
}

impl CacheStats {
    /// Demand hit rate in `[0, 1]`; zero when the level is idle.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Total bytes exchanged with the level below.
    pub fn traffic_below(&self) -> u64 {
        self.bytes_from_below + self.bytes_to_below
    }

    /// Classifies and counts one demand access.
    pub fn note_access(&mut self, acc: &Access, hit: bool) {
        self.accesses += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        match (acc.orient, acc.width) {
            (Orientation::Row, AccessWidth::Scalar) => self.row_scalar += 1,
            (Orientation::Row, AccessWidth::Vector) => self.row_vector += 1,
            (Orientation::Col, AccessWidth::Scalar) => self.col_scalar += 1,
            (Orientation::Col, AccessWidth::Vector) => self.col_vector += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_mem::WordAddr;

    #[test]
    fn hit_rate_of_idle_cache_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn note_access_classifies_by_orientation_and_width() {
        let mut s = CacheStats::default();
        let w = WordAddr::from_tile_coords(0, 0, 0);
        s.note_access(&Access::scalar_read(w, Orientation::Row, 0), true);
        s.note_access(&Access::scalar_read(w, Orientation::Col, 0), false);
        s.note_access(
            &Access::vector_read(mda_mem::LineKey::new(0, Orientation::Col, 0), 0),
            true,
        );
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.row_scalar, 1);
        assert_eq!(s.col_scalar, 1);
        assert_eq!(s.col_vector, 1);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
