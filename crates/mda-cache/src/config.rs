//! Cache-level configuration.

use mda_mem::{ConfigError, LINE_BYTES};

/// Set-index mapping for logically 2-D caches (paper Sec. IV-C, Design 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetMapping {
    /// Rows and columns of a 2-D block map to *different* sets (tag kept at
    /// tile granularity). The preferred orientation is probed first; a
    /// scalar miss pays one extra sequential tag access to probe the other
    /// orientation, a vector miss/write pays up to eight intersecting-line
    /// checks.
    DifferentSet,
    /// All sixteen lines of a 2-D block map to the *same* set, allowing a
    /// simultaneous row/column lookup with a single set read (no extra
    /// sequential tag latency) at the cost of heavier set conflicts.
    SameSet,
}

impl std::fmt::Display for SetMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetMapping::DifferentSet => write!(f, "different-set"),
            SetMapping::SameSet => write!(f, "same-set"),
        }
    }
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Tag-array access latency in cycles.
    pub tag_latency: u64,
    /// Data-array access latency in cycles.
    pub data_latency: u64,
    /// Whether tag and data accesses are sequential (LLC-style) or parallel
    /// (L1-style, paper Table I).
    pub sequential_tag_data: bool,
    /// Miss-status-holding registers (outstanding misses).
    pub mshrs: usize,
    /// Extra cycles charged to operations that *write* the data array —
    /// models on-chip NVM read/write asymmetry for 2P2L (paper Fig. 16);
    /// zero for SRAM levels.
    pub write_penalty: u64,
}

impl CacheConfig {
    /// Paper Table I: 32 KB, 4-way, 2-cycle tag + 2-cycle data, parallel.
    pub fn l1_32k() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 4,
            tag_latency: 2,
            data_latency: 2,
            sequential_tag_data: false,
            mshrs: 16,
            write_penalty: 0,
        }
    }

    /// Paper Table I: 256 KB, 8-way, 6-cycle tag + 9-cycle data, sequential.
    pub fn l2_256k() -> CacheConfig {
        CacheConfig {
            size_bytes: 256 * 1024,
            assoc: 8,
            tag_latency: 6,
            data_latency: 9,
            sequential_tag_data: true,
            mshrs: 32,
            write_penalty: 0,
        }
    }

    /// Paper Table I: L3 of `size_bytes`, 8-way, 8-cycle tag + 12-cycle
    /// data, sequential. Used with 1 MB / 1.5 MB / 2 MB / 4 MB.
    pub fn l3(size_bytes: u64) -> CacheConfig {
        CacheConfig {
            size_bytes,
            assoc: 8,
            tag_latency: 8,
            data_latency: 12,
            sequential_tag_data: true,
            mshrs: 64,
            write_penalty: 0,
        }
    }

    /// Number of 64-byte line frames the capacity holds.
    pub fn line_frames(&self) -> usize {
        (self.size_bytes / LINE_BYTES) as usize
    }

    /// Number of sets when organized in 64-byte lines.
    pub fn line_sets(&self) -> usize {
        self.line_frames() / self.assoc
    }

    /// Number of 512-byte tile frames the capacity holds (2P2L).
    pub fn tile_frames(&self) -> usize {
        (self.size_bytes / mda_mem::TILE_BYTES) as usize
    }

    /// Number of sets when organized in 512-byte tiles (2P2L).
    pub fn tile_sets(&self) -> usize {
        self.tile_frames() / self.assoc
    }

    /// Latency of a hit: tag and data in parallel for L1-style levels,
    /// sequential otherwise.
    pub fn hit_latency(&self) -> u64 {
        if self.sequential_tag_data {
            self.tag_latency + self.data_latency
        } else {
            self.tag_latency.max(self.data_latency)
        }
    }

    /// Validates the geometry.
    ///
    /// Any associativity is legal (the reuse-distance model builds
    /// fully-associative levels of arbitrary way counts, and the 1.5 MB
    /// LLC yields a non-power-of-two set count), but the capacity must
    /// hold a whole number of sets.
    ///
    /// # Errors
    /// Returns a typed [`ConfigError`] when the capacity or associativity
    /// is zero, when the capacity is not a multiple of the line-size ×
    /// associativity, or when the cache has no MSHRs.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.assoc == 0 {
            return Err(ConfigError::Zero { field: "assoc" });
        }
        if self.size_bytes == 0 {
            return Err(ConfigError::Zero { field: "size_bytes" });
        }
        if !self.size_bytes.is_multiple_of(LINE_BYTES * self.assoc as u64) {
            return Err(ConfigError::NotAMultiple {
                field: "size_bytes",
                value: self.size_bytes,
                of: LINE_BYTES * self.assoc as u64,
            });
        }
        if self.line_sets() == 0 {
            return Err(ConfigError::Zero { field: "line_sets" });
        }
        if self.mshrs == 0 {
            return Err(ConfigError::Zero { field: "mshrs" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_presets_are_valid() {
        for cfg in [
            CacheConfig::l1_32k(),
            CacheConfig::l2_256k(),
            CacheConfig::l3(1024 * 1024),
            CacheConfig::l3(1536 * 1024),
            CacheConfig::l3(2 * 1024 * 1024),
            CacheConfig::l3(4 * 1024 * 1024),
        ] {
            assert_eq!(cfg.validate(), Ok(()));
        }
    }

    #[test]
    fn l1_geometry_matches_paper() {
        let l1 = CacheConfig::l1_32k();
        assert_eq!(l1.line_frames(), 512);
        assert_eq!(l1.line_sets(), 128);
        assert_eq!(l1.hit_latency(), 2, "parallel tag/data access");
    }

    #[test]
    fn llc_hit_latency_is_sequential() {
        let l3 = CacheConfig::l3(1024 * 1024);
        assert_eq!(l3.hit_latency(), 20);
        assert_eq!(l3.tile_frames(), 2048);
        assert_eq!(l3.tile_sets(), 256);
    }

    #[test]
    fn invalid_geometry_rejected() {
        let mut c = CacheConfig::l1_32k();
        c.size_bytes = 1000;
        assert!(matches!(c.validate(), Err(ConfigError::NotAMultiple { .. })));
        let mut c = CacheConfig::l1_32k();
        c.assoc = 0;
        assert_eq!(c.validate(), Err(ConfigError::Zero { field: "assoc" }));
        let mut c = CacheConfig::l1_32k();
        c.size_bytes = 0;
        assert_eq!(c.validate(), Err(ConfigError::Zero { field: "size_bytes" }));
        let mut c = CacheConfig::l1_32k();
        c.mshrs = 0;
        assert_eq!(c.validate(), Err(ConfigError::Zero { field: "mshrs" }));
    }

    #[test]
    fn unusual_but_legal_geometries_validate() {
        // The reuse-distance validation builds fully-associative caches of
        // arbitrary frame counts (e.g. 48 or 96 ways, one set).
        for frames in [1usize, 4, 48, 96] {
            let c = CacheConfig {
                size_bytes: frames as u64 * LINE_BYTES,
                assoc: frames,
                tag_latency: 1,
                data_latency: 1,
                sequential_tag_data: false,
                mshrs: 1,
                write_penalty: 0,
            };
            assert_eq!(c.validate(), Ok(()), "{frames}-way fully-associative");
            assert_eq!(c.line_sets(), 1);
        }
        // The 1.5 MB LLC has 3072 sets — not a power of two, still legal.
        assert_eq!(CacheConfig::l3(1536 * 1024).validate(), Ok(()));
    }
}
