//! The duplicate-word coherence policy of paper Fig. 9, as a pure state
//! machine.
//!
//! In a 1P2L cache a word can be co-present in an intersecting row line and
//! column line. The policy keeps all copies coherent by allowing
//! duplication **only while every copy is clean**:
//!
//! * a write to a word evicts every *other* copy (writing a dirty one back
//!   first), so modification happens only to a sole copy;
//! * before a fill brings in a new copy of a word whose existing copy is
//!   dirty, that modification is propagated back (writeback, copy becomes
//!   clean).
//!
//! [`Cache1P2L`](crate::Cache1P2L) drives this machine per affected line;
//! the standalone formulation here makes the invariants property-testable.

/// Validity/dirtiness of one cached copy of a word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WordState {
    /// Not present.
    Invalid,
    /// Present, matches memory (valid = 1, dirty = 0).
    Clean,
    /// Present, modified (valid = 1, dirty = 1).
    Modified,
}

/// Events observed by a cached copy of a word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DupEvent {
    /// A read served by *this* copy.
    Read,
    /// A write served by *this* copy.
    Write,
    /// A read is about to create/use *another* copy of this word.
    ReadToDuplicate,
    /// A write is about to modify *another* copy of this word.
    WriteToDuplicate,
    /// This copy's line is being evicted.
    Eviction,
}

/// Side effects the cache must perform for a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DupAction {
    /// No side effect.
    None,
    /// Propagate the modified data to the level below.
    Writeback,
    /// Invalidate this copy's line.
    Evict,
    /// Propagate then invalidate.
    WritebackAndEvict,
}

/// The Fig. 9 transition function: `(state, event) → (state', action)`.
pub fn transition(state: WordState, event: DupEvent) -> (WordState, DupAction) {
    use DupAction::*;
    use DupEvent::*;
    use WordState::*;
    match (state, event) {
        (Invalid, Read) => (Clean, None),
        (Invalid, Write) => (Modified, None),
        (Invalid, _) => (Invalid, None),

        (Clean, Read) | (Clean, ReadToDuplicate) => (Clean, None),
        (Clean, Write) => (Modified, None),
        // A write to another copy: this clean copy is evicted so the write
        // happens to a sole copy.
        (Clean, WriteToDuplicate) => (Invalid, Evict),
        (Clean, Eviction) => (Invalid, None),

        (Modified, Read) | (Modified, Write) => (Modified, None),
        // A read bringing in another copy: propagate our modification first
        // so the duplicate is filled with up-to-date data.
        (Modified, ReadToDuplicate) => (Clean, Writeback),
        // A write to another copy: propagate then evict.
        (Modified, WriteToDuplicate) => (Invalid, WritebackAndEvict),
        (Modified, Eviction) => (Invalid, Writeback),
    }
}

#[cfg(test)]
mod tests {
    use super::DupAction::*;
    use super::DupEvent::*;
    use super::WordState::*;
    use super::*;

    #[test]
    fn writes_only_ever_touch_sole_copies() {
        // Any co-present copy receiving WriteToDuplicate ends Invalid.
        for s in [Clean, Modified] {
            let (next, _) = transition(s, WriteToDuplicate);
            assert_eq!(next, Invalid);
        }
    }

    #[test]
    fn dirty_data_is_never_dropped() {
        // Every transition out of Modified that loses the copy writes back.
        for e in [WriteToDuplicate, Eviction] {
            let (_, action) = transition(Modified, e);
            assert!(matches!(action, Writeback | WritebackAndEvict));
        }
    }

    #[test]
    fn duplication_allowed_only_while_clean() {
        // A read duplicating a clean word needs no action.
        assert_eq!(transition(Clean, ReadToDuplicate), (Clean, None));
        // A read duplicating a modified word forces propagation first.
        assert_eq!(transition(Modified, ReadToDuplicate), (Clean, Writeback));
    }

    #[test]
    fn fig9_core_transitions() {
        assert_eq!(transition(Invalid, Read), (Clean, None));
        assert_eq!(transition(Invalid, Write), (Modified, None));
        assert_eq!(transition(Clean, Write), (Modified, None));
        assert_eq!(transition(Clean, Eviction), (Invalid, None));
        assert_eq!(transition(Modified, Eviction), (Invalid, Writeback));
    }

    #[test]
    fn invalid_copies_ignore_duplicate_events() {
        assert_eq!(transition(Invalid, ReadToDuplicate), (Invalid, None));
        assert_eq!(transition(Invalid, WriteToDuplicate), (Invalid, None));
        assert_eq!(transition(Invalid, Eviction), (Invalid, None));
    }
}
