//! The 2P1L taxonomy point: physically 2-D, logically 1-D.
//!
//! The paper's taxonomy (Sec. IV-A) names this design but elides its
//! discussion for brevity. We implement it for completeness, as an
//! ablation: the cache is built from an on-chip MDA (crosspoint NVM)
//! array — so it allocates 512-byte 2-D blocks and pays the NVM write
//! penalty like a 2P2L cache — but it only ever *serves rows*. Comparing
//! it against 1P1L and 2P2L isolates how much of the MDA benefit comes
//! from the physical array versus from logically 2-D caching: the answer
//! the ablation demonstrates is that physical dimensionality alone buys
//! nothing (it only adds NVM write latency and block-granular conflicts);
//! the win comes from expressing and serving column preference.

use crate::config::CacheConfig;
use crate::level::{Access, AccessWidth, CacheLevel, Probe, Writeback};
use crate::set_array::SetArray;
use crate::stats::CacheStats;
use mda_mem::{LineKey, Orientation, TileId, TILE_LINES};

/// Per-block metadata: presence and dirtiness per row line only.
#[derive(Debug, Clone, Copy, Default)]
struct TileMeta {
    row_valid: u8,
    row_dirty: u8,
}

/// The physically 2-D, logically 1-D cache.
#[derive(Debug, Clone)]
pub struct Cache2P1L {
    config: CacheConfig,
    array: SetArray<TileId, TileMeta>,
    stats: CacheStats,
}

impl Cache2P1L {
    /// Builds a 2P1L level from `config`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or smaller than one 512-byte
    /// block per set.
    pub fn new(config: CacheConfig) -> Cache2P1L {
        if let Err(msg) = config.validate() {
            // mda-lint: allow(lib-unwrap): documented `# Panics` contract rejecting invalid configs
            panic!("invalid CacheConfig: {msg}");
        }
        assert!(config.tile_sets() > 0, "capacity too small for 512-byte blocks");
        let array = SetArray::new(config.tile_sets(), config.assoc);
        Cache2P1L { config, array, stats: CacheStats::default() }
    }

    fn set_of(&self, tile: TileId) -> usize {
        self.array.set_index(tile)
    }

    /// The row line an access maps to (column vectors are impossible on a
    /// logically 1-D organization).
    fn target_line(acc: &Access) -> LineKey {
        match (acc.width, acc.orient) {
            // mda-lint: allow(lib-unwrap): documented API contract; the compiler never emits column vectors for 2P1L
            (AccessWidth::Vector, Orientation::Col) => panic!(
                "column vector access reached a 2P1L cache; the compiler \
                 must lower these to scalars for logically 1-D hierarchies"
            ),
            (AccessWidth::Vector, Orientation::Row) => acc.preferred_line(),
            (AccessWidth::Scalar, _) => LineKey::containing(acc.word, Orientation::Row),
        }
    }

    /// Appends the dirty rows of an evicted block to `out`, returning how
    /// many writebacks were produced (for the traffic counter).
    fn push_writebacks(tile: TileId, meta: &TileMeta, out: &mut Vec<Writeback>) -> u64 {
        let mut n = 0;
        for idx in 0..TILE_LINES as u8 {
            if meta.row_dirty & (1 << idx) != 0 {
                out.push(Writeback { line: LineKey::new(tile, Orientation::Row, idx), dirty: 0xFF });
                n += 1;
            }
        }
        n
    }
}

impl CacheLevel for Cache2P1L {
    fn probe_into(&mut self, acc: &Access, out: &mut Probe) {
        out.reset();
        let line = Self::target_line(acc);
        let set = self.set_of(line.tile);
        let hit = match self.array.get_mut(set, line.tile) {
            Some(meta) if meta.row_valid & (1 << line.idx) != 0 => {
                if acc.is_write {
                    meta.row_dirty |= 1 << line.idx;
                }
                true
            }
            _ => false,
        };
        self.stats.note_access(acc, hit);
        if !hit {
            out.hit = false;
            out.fills.push(line);
        }
    }

    fn fill(&mut self, line: LineKey, dirty: u8, out: &mut Vec<Writeback>) {
        debug_assert_eq!(line.orient, Orientation::Row, "2P1L stores row lines only");
        let set = self.set_of(line.tile);
        if let Some(meta) = self.array.get_mut(set, line.tile) {
            meta.row_valid |= 1 << line.idx;
            if dirty != 0 {
                meta.row_dirty |= 1 << line.idx;
            }
            return;
        }
        self.stats.demand_fills += 1;
        let meta = TileMeta {
            row_valid: 1 << line.idx,
            row_dirty: if dirty != 0 { 1 << line.idx } else { 0 },
        };
        if let Some((victim, vm)) = self.array.insert(set, line.tile, meta) {
            self.stats.writebacks_out += Self::push_writebacks(victim, &vm, out);
        }
    }

    fn absorb_writeback(&mut self, wb: &Writeback, _cascades: &mut Vec<Writeback>) -> bool {
        if wb.line.orient != Orientation::Row {
            return false;
        }
        let set = self.set_of(wb.line.tile);
        match self.array.get_mut(set, wb.line.tile) {
            Some(meta) => {
                meta.row_valid |= 1 << wb.line.idx;
                meta.row_dirty |= 1 << wb.line.idx;
                true
            }
            None => false,
        }
    }

    fn contains_line(&self, line: &LineKey) -> bool {
        line.orient == Orientation::Row
            && self
                .array
                .peek(self.set_of(line.tile), line.tile)
                .is_some_and(|m| m.row_valid & (1 << line.idx) != 0)
    }

    fn occupancy(&self) -> (usize, usize, usize) {
        let rows = self.array.iter().map(|(_, m)| m.row_valid.count_ones() as usize).sum();
        (rows, 0, self.config.line_frames())
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn flush(&mut self, out: &mut Vec<Writeback>) {
        let Cache2P1L { array, stats, .. } = self;
        array.drain_all(|_set, tile, meta| {
            stats.writebacks_out += Self::push_writebacks(tile, &meta, out);
        });
    }

    fn for_each_line(&self, f: &mut dyn FnMut(LineKey, u8)) {
        for (tile, meta) in self.array.iter() {
            for idx in 0..TILE_LINES as u8 {
                if meta.row_valid & (1 << idx) != 0 {
                    let dirty = if meta.row_dirty & (1 << idx) != 0 { 0xFF } else { 0 };
                    f(LineKey::new(*tile, Orientation::Row, idx), dirty);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::CacheLevelExt;
    use mda_mem::WordAddr;

    fn cache() -> Cache2P1L {
        let mut cfg = CacheConfig::l3(16 * 1024);
        cfg.assoc = 8;
        Cache2P1L::new(cfg)
    }

    #[test]
    fn row_fill_then_hit() {
        let mut c = cache();
        let line = LineKey::new(3, Orientation::Row, 2);
        let p = c.probe(&Access::vector_read(line, 0));
        assert!(!p.hit);
        assert_eq!(p.fills, vec![line], "sparse row fill only");
        c.fill_collect(line, 0);
        assert!(c.probe(&Access::vector_read(line, 0)).hit);
    }

    #[test]
    fn column_scalar_is_served_through_row_lines() {
        let mut c = cache();
        let w = WordAddr::from_tile_coords(1, 4, 6);
        let p = c.probe(&Access::scalar_read(w, Orientation::Col, 0));
        assert_eq!(p.fills, vec![LineKey::new(1, Orientation::Row, 4)]);
    }

    #[test]
    #[should_panic(expected = "column vector access")]
    fn column_vectors_are_rejected() {
        let mut c = cache();
        let _ = c.probe(&Access::vector_read(LineKey::new(0, Orientation::Col, 0), 0));
    }

    #[test]
    fn eviction_is_block_granular() {
        let mut c = cache();
        // Two rows of tile 0 resident, one dirty.
        c.fill_collect(LineKey::new(0, Orientation::Row, 0), 0xFF);
        c.fill_collect(LineKey::new(0, Orientation::Row, 5), 0);
        // Displace tile 0 (set 0 holds tiles ≡ 0 mod 4, 8 ways).
        let mut wbs = Vec::new();
        for k in 1..=8u64 {
            wbs.extend(c.fill_collect(LineKey::new(4 * k, Orientation::Row, 0), 0));
        }
        assert_eq!(wbs.len(), 1, "only the dirty row written back");
        assert!(!c.contains_line(&LineKey::new(0, Orientation::Row, 5)));
    }

    #[test]
    fn occupancy_counts_rows_only() {
        let mut c = cache();
        c.fill_collect(LineKey::new(0, Orientation::Row, 0), 0);
        c.fill_collect(LineKey::new(0, Orientation::Row, 1), 0);
        assert_eq!(c.occupancy(), (2, 0, 256));
    }
}
