//! Per-stream stride prefetcher for the 1P1L baseline.
//!
//! The paper evaluates its baseline *with* data prefetching enabled and the
//! MDA designs without (Sec. VII, first paragraph). This is a classic
//! PC-indexed stride prefetcher: each static memory instruction (stream id)
//! trains a stride in line-address space; once confident, it emits
//! `degree` prefetch candidates ahead of the demand address. A column walk
//! over a row-major array trains a stride equal to the array pitch, so the
//! prefetcher does hide column-access latency — but each prefetch still
//! moves a full 64-byte row line of which one word is useful, which is
//! exactly the bandwidth wastage MDA caching removes (paper Sec. IX-A).

use std::collections::HashMap;

/// Training state for one static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StreamEntry {
    last_line: i64,
    stride: i64,
    confidence: u8,
}

/// A PC-indexed stride prefetcher operating on 64-byte line addresses.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: HashMap<u32, StreamEntry>,
    degree: usize,
    confidence_threshold: u8,
}

impl StridePrefetcher {
    /// Creates a prefetcher issuing `degree` lines ahead once a stream's
    /// stride has repeated twice.
    ///
    /// # Panics
    /// Panics if `degree` is zero (use no prefetcher instead).
    pub fn new(degree: usize) -> StridePrefetcher {
        assert!(degree > 0, "prefetch degree must be non-zero");
        StridePrefetcher { table: HashMap::new(), degree, confidence_threshold: 1 }
    }

    /// Prefetch degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Observes a demand access by `stream` to the 64-byte-aligned
    /// `line_addr`, returning the line addresses to prefetch (empty until
    /// the stride is confident).
    pub fn observe(&mut self, stream: u32, line_addr: u64) -> Vec<u64> {
        let line = (line_addr / mda_mem::LINE_BYTES) as i64;
        let entry = self.table.entry(stream).or_insert(StreamEntry {
            last_line: line,
            stride: 0,
            confidence: 0,
        });

        let observed = line - entry.last_line;
        if observed == 0 {
            // Same line again: nothing to learn, nothing to fetch.
            return Vec::new();
        }
        if observed == entry.stride {
            entry.confidence = (entry.confidence + 1).min(3);
        } else {
            entry.stride = observed;
            entry.confidence = 0;
        }
        entry.last_line = line;

        if entry.confidence < self.confidence_threshold {
            return Vec::new();
        }
        let stride = entry.stride;
        (1..=self.degree as i64)
            .filter_map(|k| {
                let target = line + k * stride;
                (target >= 0).then(|| target as u64 * mda_mem::LINE_BYTES)
            })
            .collect()
    }

    /// Clears all training state.
    pub fn reset(&mut self) {
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_mem::LINE_BYTES;

    #[test]
    fn unit_stride_stream_trains_and_prefetches() {
        let mut p = StridePrefetcher::new(2);
        assert!(p.observe(1, 0).is_empty());
        assert!(p.observe(1, LINE_BYTES).is_empty(), "first repeat: confidence 1");
        let pf = p.observe(1, 2 * LINE_BYTES);
        assert_eq!(pf, vec![3 * LINE_BYTES, 4 * LINE_BYTES]);
    }

    #[test]
    fn column_walk_trains_pitch_stride() {
        // A column walk over a 2 KiB-pitch array: stride = 32 lines.
        let pitch = 32 * LINE_BYTES;
        let mut p = StridePrefetcher::new(1);
        p.observe(9, 0);
        p.observe(9, pitch);
        let pf = p.observe(9, 2 * pitch);
        assert_eq!(pf, vec![3 * pitch]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(1);
        p.observe(1, 0);
        p.observe(1, LINE_BYTES);
        p.observe(1, 2 * LINE_BYTES); // confident now
        assert!(p.observe(1, 10 * LINE_BYTES).is_empty(), "stride broke");
        assert!(p.observe(1, 11 * LINE_BYTES).is_empty(), "rebuilding confidence");
        assert!(!p.observe(1, 12 * LINE_BYTES).is_empty());
    }

    #[test]
    fn streams_are_independent() {
        let mut p = StridePrefetcher::new(1);
        for i in 0..3 {
            p.observe(1, i * LINE_BYTES);
        }
        // Stream 2 is untrained even though stream 1 is confident.
        assert!(p.observe(2, 0).is_empty());
    }

    #[test]
    fn repeated_same_line_accesses_emit_nothing() {
        let mut p = StridePrefetcher::new(4);
        for _ in 0..10 {
            assert!(p.observe(3, 64).is_empty());
        }
    }

    #[test]
    fn negative_stride_prefetches_clamp_at_zero() {
        let mut p = StridePrefetcher::new(4);
        p.observe(1, 10 * LINE_BYTES);
        p.observe(1, 8 * LINE_BYTES);
        p.observe(1, 6 * LINE_BYTES);
        let pf = p.observe(1, 4 * LINE_BYTES);
        // Stride −2 lines: candidates 2, 0, −2, −4 → clamped to in-range.
        assert_eq!(pf, vec![2 * LINE_BYTES, 0]);
    }
}
