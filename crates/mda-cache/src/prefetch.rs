// mda-lint: hot-path
//! Per-stream stride prefetcher for the 1P1L baseline.
//!
//! The paper evaluates its baseline *with* data prefetching enabled and the
//! MDA designs without (Sec. VII, first paragraph). This is a classic
//! PC-indexed stride prefetcher: each static memory instruction (stream id)
//! trains a stride in line-address space; once confident, it emits
//! `degree` prefetch candidates ahead of the demand address. A column walk
//! over a row-major array trains a stride equal to the array pitch, so the
//! prefetcher does hide column-access latency — but each prefetch still
//! moves a full 64-byte row line of which one word is useful, which is
//! exactly the bandwidth wastage MDA caching removes (paper Sec. IX-A).
//!
//! The training table is a **fixed-size direct-mapped array** indexed by
//! the low bits of the stream id, with the full id kept as a tag (a real
//! prefetcher's RPT, and allocation-free on the demand path — the former
//! `HashMap` rehashed on growth and hashed every lookup). Stream ids are
//! assigned densely from zero by the compiler, so the 512-entry table is
//! collision-free for every workload in the suite; a colliding id would
//! simply retrain the slot, exactly like a cold stream.

/// Direct-mapped table size (power of two; indexed by `stream & 511`).
const TABLE_SLOTS: usize = 512;

/// Training state for one static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StreamEntry {
    last_line: i64,
    stride: i64,
    confidence: u8,
}

/// A PC-indexed stride prefetcher operating on 64-byte line addresses.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    /// `(stream tag, training state)` per slot.
    table: Box<[Option<(u32, StreamEntry)>]>,
    degree: usize,
    confidence_threshold: u8,
}

/// Prefetch candidates produced by one [`StridePrefetcher::observe`] call:
/// an allocation-free iterator over `degree` line addresses ahead of the
/// demand line, skipping candidates below address zero.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchTargets {
    line: i64,
    stride: i64,
    k: i64,
    degree: i64,
}

impl PrefetchTargets {
    fn none() -> PrefetchTargets {
        PrefetchTargets { line: 0, stride: 0, k: 1, degree: 0 }
    }

    /// Whether the observation produced no prefetch candidates.
    pub fn is_empty(&self) -> bool {
        let mut probe = *self;
        probe.next().is_none()
    }
}

impl Iterator for PrefetchTargets {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.k <= self.degree {
            let target = self.line + self.k * self.stride;
            self.k += 1;
            if target >= 0 {
                return Some(target as u64 * mda_mem::LINE_BYTES);
            }
        }
        None
    }
}

impl StridePrefetcher {
    /// Creates a prefetcher issuing `degree` lines ahead once a stream's
    /// stride has repeated twice.
    ///
    /// # Panics
    /// Panics if `degree` is zero (use no prefetcher instead).
    pub fn new(degree: usize) -> StridePrefetcher {
        assert!(degree > 0, "prefetch degree must be non-zero");
        StridePrefetcher {
            table: vec![None; TABLE_SLOTS].into_boxed_slice(),
            degree,
            confidence_threshold: 1,
        }
    }

    /// Prefetch degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Observes a demand access by `stream` to the 64-byte-aligned
    /// `line_addr`, returning the line addresses to prefetch (empty until
    /// the stride is confident).
    pub fn observe(&mut self, stream: u32, line_addr: u64) -> PrefetchTargets {
        let line = (line_addr / mda_mem::LINE_BYTES) as i64;
        let slot = &mut self.table[stream as usize & (TABLE_SLOTS - 1)];
        let entry = match slot {
            Some((tag, entry)) if *tag == stream => entry,
            _ => {
                // Cold stream (or a colliding id taking over the slot):
                // start training from this line.
                let filled = slot
                    .insert((stream, StreamEntry { last_line: line, stride: 0, confidence: 0 }));
                &mut filled.1
            }
        };

        let observed = line - entry.last_line;
        if observed == 0 {
            // Same line again: nothing to learn, nothing to fetch.
            return PrefetchTargets::none();
        }
        if observed == entry.stride {
            entry.confidence = (entry.confidence + 1).min(3);
        } else {
            entry.stride = observed;
            entry.confidence = 0;
        }
        entry.last_line = line;

        if entry.confidence < self.confidence_threshold {
            return PrefetchTargets::none();
        }
        PrefetchTargets { line, stride: entry.stride, k: 1, degree: self.degree as i64 }
    }

    /// Clears all training state.
    pub fn reset(&mut self) {
        self.table.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_mem::LINE_BYTES;

    #[test]
    fn unit_stride_stream_trains_and_prefetches() {
        let mut p = StridePrefetcher::new(2);
        assert!(p.observe(1, 0).is_empty());
        assert!(p.observe(1, LINE_BYTES).is_empty(), "first repeat: confidence 1");
        let pf: Vec<u64> = p.observe(1, 2 * LINE_BYTES).collect();
        assert_eq!(pf, vec![3 * LINE_BYTES, 4 * LINE_BYTES]);
    }

    #[test]
    fn column_walk_trains_pitch_stride() {
        // A column walk over a 2 KiB-pitch array: stride = 32 lines.
        let pitch = 32 * LINE_BYTES;
        let mut p = StridePrefetcher::new(1);
        p.observe(9, 0);
        p.observe(9, pitch);
        let pf: Vec<u64> = p.observe(9, 2 * pitch).collect();
        assert_eq!(pf, vec![3 * pitch]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(1);
        p.observe(1, 0);
        p.observe(1, LINE_BYTES);
        p.observe(1, 2 * LINE_BYTES); // confident now
        assert!(p.observe(1, 10 * LINE_BYTES).is_empty(), "stride broke");
        assert!(p.observe(1, 11 * LINE_BYTES).is_empty(), "rebuilding confidence");
        assert!(!p.observe(1, 12 * LINE_BYTES).is_empty());
    }

    #[test]
    fn streams_are_independent() {
        let mut p = StridePrefetcher::new(1);
        for i in 0..3 {
            p.observe(1, i * LINE_BYTES);
        }
        // Stream 2 is untrained even though stream 1 is confident.
        assert!(p.observe(2, 0).is_empty());
    }

    #[test]
    fn repeated_same_line_accesses_emit_nothing() {
        let mut p = StridePrefetcher::new(4);
        for _ in 0..10 {
            assert!(p.observe(3, 64).is_empty());
        }
    }

    #[test]
    fn negative_stride_prefetches_clamp_at_zero() {
        let mut p = StridePrefetcher::new(4);
        p.observe(1, 10 * LINE_BYTES);
        p.observe(1, 8 * LINE_BYTES);
        p.observe(1, 6 * LINE_BYTES);
        let pf: Vec<u64> = p.observe(1, 4 * LINE_BYTES).collect();
        // Stride −2 lines: candidates 2, 0, −2, −4 → clamped to in-range.
        assert_eq!(pf, vec![2 * LINE_BYTES, 0]);
    }

    #[test]
    fn colliding_stream_ids_retrain_the_slot() {
        let mut p = StridePrefetcher::new(1);
        // Stream 1 becomes confident...
        for i in 0..3 {
            p.observe(1, i * LINE_BYTES);
        }
        // ...then stream 1 + 512 (same slot) takes over cold.
        assert!(p.observe(1 + TABLE_SLOTS as u32, 0).is_empty());
        // Stream 1 must now retrain from scratch like any cold stream.
        assert!(p.observe(1, 3 * LINE_BYTES).is_empty());
        assert!(p.observe(1, 4 * LINE_BYTES).is_empty());
        assert!(!p.observe(1, 5 * LINE_BYTES).is_empty());
    }

    #[test]
    fn reset_clears_training() {
        let mut p = StridePrefetcher::new(1);
        for i in 0..3 {
            p.observe(1, i * LINE_BYTES);
        }
        p.reset();
        assert!(p.observe(1, 3 * LINE_BYTES).is_empty(), "cold after reset");
    }
}
