//! Design 1: physically 1-D, logically 2-D cache (paper Sec. IV-C).
//!
//! Row and column lines are both stored as dense word sequences in ordinary
//! SRAM; an orientation bit per line distinguishes them (here it lives in
//! the [`LineKey`]). Two index mappings are supported:
//!
//! * **Different-Set** — rows/columns of a 2-D block spread over different
//!   sets (tag kept at tile granularity). The preferred orientation is
//!   probed first; probing the other orientation, and checking the up-to-8
//!   intersecting lines on vector misses and writes, costs extra sequential
//!   tag accesses which this model reports in [`Probe::extra_tag_accesses`].
//! * **Same-Set** — all sixteen lines of a block map to one set, so both
//!   orientations are seen in a single set read (no extra tag latency) at
//!   the price of set-conflict pressure.
//!
//! Duplicate words (intersecting row/column lines co-resident) are managed
//! by the Fig. 9 policy in [`crate::policy`]: duplication is allowed only
//! while clean; writes evict other copies; fills write dirty intersections
//! back first. Per-word dirty bits (one per word, paper Sec. IV-C) keep
//! false sharing from inflating writeback traffic.

use crate::config::{CacheConfig, SetMapping};
use crate::level::{Access, AccessWidth, CacheLevel, Probe, Writeback};
use crate::set_array::SetArray;
use crate::stats::CacheStats;
use mda_mem::{LineKey, TILE_LINES};

/// Per-line metadata: one dirty bit per word.
#[derive(Debug, Clone, Copy, Default)]
struct LineMeta {
    dirty: u8,
}

/// The logically 2-D, physically 1-D cache.
#[derive(Debug, Clone)]
pub struct Cache1P2L {
    config: CacheConfig,
    mapping: SetMapping,
    array: SetArray<LineKey, LineMeta>,
    row_lines: usize,
    col_lines: usize,
    stats: CacheStats,
}

impl Cache1P2L {
    /// Builds a 1P2L level from `config` with the given index `mapping`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: CacheConfig, mapping: SetMapping) -> Cache1P2L {
        if let Err(msg) = config.validate() {
            panic!("invalid CacheConfig: {msg}");
        }
        let array = SetArray::new(config.line_sets(), config.assoc);
        Cache1P2L { config, mapping, array, row_lines: 0, col_lines: 0, stats: CacheStats::default() }
    }

    /// The index mapping in use.
    pub fn mapping(&self) -> SetMapping {
        self.mapping
    }

    fn set_of(&self, line: &LineKey) -> usize {
        let sets = self.array.num_sets() as u64;
        match self.mapping {
            SetMapping::DifferentSet => ((line.tile * 8 + u64::from(line.idx)) % sets) as usize,
            SetMapping::SameSet => (line.tile % sets) as usize,
        }
    }

    /// Extra sequential tag accesses for probing the non-preferred
    /// orientation: Different-Set reads a second set; Same-Set sees both
    /// orientations in one set read.
    fn cross_check_cost(&self, lines: u32) -> u32 {
        match self.mapping {
            SetMapping::DifferentSet => lines,
            SetMapping::SameSet => 0,
        }
    }

    fn present(&self, line: &LineKey) -> bool {
        self.array.peek(self.set_of(line), *line).is_some()
    }

    fn note_line_removed(&mut self, line: &LineKey) {
        match line.orient {
            mda_mem::Orientation::Row => self.row_lines -= 1,
            mda_mem::Orientation::Col => self.col_lines -= 1,
        }
    }

    fn note_line_added(&mut self, line: &LineKey) {
        match line.orient {
            mda_mem::Orientation::Row => self.row_lines += 1,
            mda_mem::Orientation::Col => self.col_lines += 1,
        }
    }

    /// Removes `line`, emitting a writeback if it holds dirty words.
    fn evict_line(&mut self, line: LineKey, out: &mut Vec<Writeback>) {
        let set = self.set_of(&line);
        if let Some(meta) = self.array.remove(set, line) {
            self.note_line_removed(&line);
            self.stats.dup_evictions += 1;
            if meta.dirty != 0 {
                self.stats.dup_writebacks += 1;
                self.stats.writebacks_out += 1;
                out.push(Writeback { line, dirty: meta.dirty });
            }
        }
    }

    /// Cleans `line` in place (Fig. 9: Modified → Clean on
    /// read-to-duplicate), emitting the writeback of its dirty words.
    fn clean_line(&mut self, line: LineKey, out: &mut Vec<Writeback>) {
        let set = self.set_of(&line);
        if let Some(meta) = self.array.get_mut(set, line) {
            if meta.dirty != 0 {
                let dirty = meta.dirty;
                meta.dirty = 0;
                self.stats.dup_writebacks += 1;
                self.stats.writebacks_out += 1;
                out.push(Writeback { line, dirty });
            }
        }
    }

    /// Resolves duplication before `line` is (re)filled with `dirty` words
    /// pre-modified: intersecting other-orientation lines are cleaned when
    /// the new copy is a read duplicate, and evicted when the corresponding
    /// word is being modified.
    fn resolve_intersections(&mut self, line: &LineKey, dirty: u8, out: &mut Vec<Writeback>) {
        for off in 0..TILE_LINES as u8 {
            let word = line.word_at(off);
            let other = line.intersecting_at(word);
            if !self.present(&other) {
                continue;
            }
            if dirty & (1 << off) != 0 {
                // Write to duplicate: other copies are evicted.
                self.evict_line(other, out);
            } else {
                // Read to duplicate: a dirty other copy is propagated first.
                let other_off = other.offset_of(word).expect("intersection is on the line");
                let other_dirty = self
                    .array
                    .peek(self.set_of(&other), other)
                    .map(|m| m.dirty & (1 << other_off) != 0)
                    .unwrap_or(false);
                if other_dirty {
                    self.clean_line(other, out);
                }
                self.stats.duplications += 1;
            }
        }
    }

    /// Applies a demand write to a resident line, enforcing the duplicate
    /// policy on every written word.
    fn write_resident(&mut self, line: LineKey, mask: u8, out: &mut Vec<Writeback>) {
        // Evict other copies of the written words first.
        for off in 0..TILE_LINES as u8 {
            if mask & (1 << off) == 0 {
                continue;
            }
            let other = line.intersecting_at(line.word_at(off));
            if self.present(&other) {
                self.evict_line(other, out);
            }
        }
        let set = self.set_of(&line);
        if let Some(meta) = self.array.get_mut(set, line) {
            meta.dirty |= mask;
        }
    }
}

impl CacheLevel for Cache1P2L {
    fn probe(&mut self, acc: &Access) -> Probe {
        let preferred = acc.preferred_line();
        let mut probe = Probe::hit();

        match acc.width {
            AccessWidth::Vector => {
                if acc.is_write {
                    let hit = self.present(&preferred);
                    self.stats.note_access(acc, hit);
                    if hit {
                        // Both orientations must be checked on writes.
                        probe.extra_tag_accesses += self.cross_check_cost(TILE_LINES as u32);
                        let mut wbs = Vec::new();
                        self.write_resident(preferred, 0xFF, &mut wbs);
                        probe.writebacks = wbs;
                    } else {
                        probe.hit = false;
                        probe.fills = vec![preferred];
                        probe.extra_tag_accesses += self.cross_check_cost(TILE_LINES as u32);
                    }
                } else {
                    // Vector hits require the correctly aligned line; one
                    // `get_mut` both probes and refreshes recency (misses
                    // leave the LRU clock untouched).
                    let set = self.set_of(&preferred);
                    let hit = self.array.get_mut(set, preferred).is_some();
                    self.stats.note_access(acc, hit);
                    if !hit {
                        // Miss: the up-to-eight intersecting lines of the
                        // other orientation are checked for dirty data to
                        // propagate.
                        probe.hit = false;
                        probe.fills = vec![preferred];
                        probe.extra_tag_accesses += self.cross_check_cost(TILE_LINES as u32);
                    }
                }
            }
            AccessWidth::Scalar => {
                if acc.is_write {
                    let off = preferred.offset_of(acc.word).expect("word within preferred line");
                    let other = preferred.intersecting_at(acc.word);
                    // Writes always check both orientations.
                    probe.extra_tag_accesses += self.cross_check_cost(1);
                    if self.present(&preferred) {
                        let mut wbs = Vec::new();
                        self.write_resident(preferred, 1 << off, &mut wbs);
                        probe.writebacks = wbs;
                        self.stats.note_access(acc, true);
                    } else if self.present(&other) {
                        // Mis-oriented write hit: the word's sole copy lives
                        // in the other orientation; modify it there.
                        let other_off =
                            other.offset_of(acc.word).expect("intersection is on the line");
                        let mut wbs = Vec::new();
                        self.write_resident(other, 1 << other_off, &mut wbs);
                        probe.writebacks = wbs;
                        self.stats.misoriented_hits += 1;
                        self.stats.note_access(acc, true);
                    } else {
                        probe.hit = false;
                        probe.fills = vec![preferred];
                        self.stats.note_access(acc, false);
                    }
                } else {
                    // Reads probe the preferred orientation with a single
                    // scan that also refreshes recency on a hit.
                    let pref_set = self.set_of(&preferred);
                    if self.array.get_mut(pref_set, preferred).is_some() {
                        self.stats.note_access(acc, true);
                    } else {
                        // Hit in the non-preferred orientation after a
                        // preferred miss costs one extra sequential tag
                        // access (Different-Set).
                        probe.extra_tag_accesses += self.cross_check_cost(1);
                        let other = preferred.intersecting_at(acc.word);
                        let other_set = self.set_of(&other);
                        if self.array.get_mut(other_set, other).is_some() {
                            self.stats.misoriented_hits += 1;
                            self.stats.note_access(acc, true);
                        } else {
                            probe.hit = false;
                            probe.fills = vec![preferred];
                            self.stats.note_access(acc, false);
                        }
                    }
                }
            }
        }

        self.stats.extra_tag_accesses += u64::from(probe.extra_tag_accesses);
        probe
    }

    fn fill(&mut self, line: LineKey, dirty: u8) -> Vec<Writeback> {
        let mut out = Vec::new();
        let set = self.set_of(&line);
        if let Some(meta) = self.array.get_mut(set, line) {
            // Already resident (e.g. race with a coalesced fill): merge.
            meta.dirty |= dirty;
            if dirty != 0 {
                self.resolve_intersections(&line, dirty, &mut out);
            }
            return out;
        }

        self.resolve_intersections(&line, dirty, &mut out);
        self.stats.demand_fills += 1;
        if let Some((victim, meta)) = self.array.insert(set, line, LineMeta { dirty }) {
            self.note_line_removed(&victim);
            if meta.dirty != 0 {
                self.stats.writebacks_out += 1;
                out.push(Writeback { line: victim, dirty: meta.dirty });
            }
        }
        self.note_line_added(&line);
        out
    }

    fn absorb_writeback(&mut self, wb: &Writeback) -> Option<Vec<Writeback>> {
        if !self.present(&wb.line) {
            return None;
        }
        // The incoming dirty words modify this copy: other copies of those
        // words must go (write-to-duplicate), and any dirty ones must be
        // propagated further down by the caller.
        let mut wbs = Vec::new();
        self.write_resident(wb.line, wb.dirty, &mut wbs);
        debug_assert!(wbs.iter().all(|w| w.line.overlaps(&wb.line)));
        Some(wbs)
    }

    fn contains_line(&self, line: &LineKey) -> bool {
        self.present(line)
    }

    fn occupancy(&self) -> (usize, usize, usize) {
        (self.row_lines, self.col_lines, self.config.line_frames())
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn flush(&mut self) -> Vec<Writeback> {
        let mut wbs = Vec::new();
        for set in 0..self.array.num_sets() {
            let resident: Vec<LineKey> = self.array.iter_set(set).map(|(k, _)| *k).collect();
            for key in resident {
                if let Some(meta) = self.array.remove(set, key) {
                    self.note_line_removed(&key);
                    if meta.dirty != 0 {
                        self.stats.writebacks_out += 1;
                        wbs.push(Writeback { line: key, dirty: meta.dirty });
                    }
                }
            }
        }
        wbs
    }

    fn for_each_line(&self, f: &mut dyn FnMut(LineKey, u8)) {
        for (key, meta) in self.array.iter() {
            f(*key, meta.dirty);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_mem::{Orientation, WordAddr};

    fn cache(mapping: SetMapping) -> Cache1P2L {
        let mut cfg = CacheConfig::l1_32k();
        cfg.size_bytes = 4096; // 16 sets × 4 ways
        Cache1P2L::new(cfg, mapping)
    }

    #[test]
    fn column_vector_miss_fills_column_line() {
        let mut c = cache(SetMapping::DifferentSet);
        let line = LineKey::new(2, Orientation::Col, 5);
        let p = c.probe(&Access::vector_read(line, 0));
        assert!(!p.hit);
        assert_eq!(p.fills, vec![line]);
        c.fill(line, 0);
        assert!(c.probe(&Access::vector_read(line, 0)).hit);
        assert_eq!(c.occupancy(), (0, 1, 64));
    }

    #[test]
    fn scalar_hit_ignores_alignment() {
        let mut c = cache(SetMapping::DifferentSet);
        let row = LineKey::new(0, Orientation::Row, 3);
        c.fill(row, 0);
        // A column-preferring scalar read of a word in that row line hits.
        let acc = Access::scalar_read(row.word_at(6), Orientation::Col, 0);
        let p = c.probe(&acc);
        assert!(p.hit);
        assert_eq!(p.extra_tag_accesses, 1, "different-set pays one extra check");
        assert_eq!(c.stats().misoriented_hits, 1);
    }

    #[test]
    fn same_set_mapping_has_no_extra_tag_cost() {
        let mut c = cache(SetMapping::SameSet);
        let row = LineKey::new(0, Orientation::Row, 3);
        c.fill(row, 0);
        let acc = Access::scalar_read(row.word_at(6), Orientation::Col, 0);
        let p = c.probe(&acc);
        assert!(p.hit);
        assert_eq!(p.extra_tag_accesses, 0);
    }

    #[test]
    fn vector_hit_requires_alignment() {
        let mut c = cache(SetMapping::DifferentSet);
        // Fill all 8 row lines of tile 0 — every word present.
        for r in 0..8 {
            c.fill(LineKey::new(0, Orientation::Row, r), 0);
        }
        // A column vector access still misses (mis-aligned).
        let p = c.probe(&Access::vector_read(LineKey::new(0, Orientation::Col, 2), 0));
        assert!(!p.hit, "vector hits require the correctly aligned block");
    }

    #[test]
    fn clean_duplicates_may_coexist() {
        let mut c = cache(SetMapping::DifferentSet);
        let row = LineKey::new(0, Orientation::Row, 2);
        let col = LineKey::new(0, Orientation::Col, 6);
        c.fill(row, 0);
        let wbs = c.fill(col, 0);
        assert!(wbs.is_empty(), "clean duplication needs no writeback");
        assert!(c.contains_line(&row) && c.contains_line(&col));
        assert_eq!(c.stats().duplications, 1);
    }

    #[test]
    fn write_evicts_clean_duplicate() {
        let mut c = cache(SetMapping::DifferentSet);
        let row = LineKey::new(0, Orientation::Row, 2);
        let col = LineKey::new(0, Orientation::Col, 6);
        c.fill(row, 0);
        c.fill(col, 0);
        // Write the shared word through the row copy.
        let shared = WordAddr::from_tile_coords(0, 2, 6);
        let p = c.probe(&Access::scalar_write(shared, Orientation::Row, 0));
        assert!(p.hit);
        assert!(p.writebacks.is_empty(), "clean duplicate is dropped silently");
        assert!(!c.contains_line(&col), "duplicate evicted so the write is sole-copy");
        assert!(c.contains_line(&row));
        assert_eq!(c.stats().dup_evictions, 1);
    }

    #[test]
    fn write_to_dirty_duplicate_forces_writeback() {
        let mut c = cache(SetMapping::DifferentSet);
        let row = LineKey::new(0, Orientation::Row, 2);
        let col = LineKey::new(0, Orientation::Col, 6);
        c.fill(col, 0);
        // Dirty the column copy.
        let shared = WordAddr::from_tile_coords(0, 2, 6);
        assert!(c.probe(&Access::scalar_write(shared, Orientation::Col, 0)).hit);
        // Bring in the row line (read duplicate): dirty word propagates back.
        let wbs = c.fill(row, 0);
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].line, col);
        assert!(c.contains_line(&col), "read-to-duplicate cleans, not evicts");
        // Now write through the row copy: the (clean) column copy is evicted.
        let p = c.probe(&Access::scalar_write(shared, Orientation::Row, 0));
        assert!(p.hit);
        assert!(!c.contains_line(&col));
    }

    #[test]
    fn fill_with_modified_words_evicts_dirty_intersections() {
        let mut c = cache(SetMapping::DifferentSet);
        let col = LineKey::new(0, Orientation::Col, 6);
        c.fill(col, 0);
        let shared = WordAddr::from_tile_coords(0, 2, 6);
        c.probe(&Access::scalar_write(shared, Orientation::Col, 0));
        // Write-allocate fill of the intersecting row line, word 6 dirty.
        let wbs = c.fill(LineKey::new(0, Orientation::Row, 2), 1 << 6);
        assert_eq!(wbs.len(), 1, "dirty duplicate written back");
        assert_eq!(wbs[0].line, col);
        assert!(!c.contains_line(&col), "write-to-duplicate evicts");
    }

    #[test]
    fn vector_write_hit_evicts_all_intersecting_lines() {
        let mut c = cache(SetMapping::SameSet);
        let row = LineKey::new(0, Orientation::Row, 2);
        c.fill(row, 0);
        for cidx in [1u8, 4, 7] {
            c.fill(LineKey::new(0, Orientation::Col, cidx), 0);
        }
        let p = c.probe(&Access::vector_write(row, 0));
        assert!(p.hit);
        for cidx in [1u8, 4, 7] {
            assert!(!c.contains_line(&LineKey::new(0, Orientation::Col, cidx)));
        }
    }

    #[test]
    fn different_set_vector_miss_charges_eight_checks() {
        let mut c = cache(SetMapping::DifferentSet);
        let p = c.probe(&Access::vector_read(LineKey::new(0, Orientation::Row, 0), 0));
        assert_eq!(p.extra_tag_accesses, 8);
        let mut c = cache(SetMapping::SameSet);
        let p = c.probe(&Access::vector_read(LineKey::new(0, Orientation::Row, 0), 0));
        assert_eq!(p.extra_tag_accesses, 0);
    }

    #[test]
    fn eviction_writes_back_only_dirty_words() {
        let mut c = cache(SetMapping::DifferentSet);
        let line = LineKey::new(0, Orientation::Row, 0);
        c.fill(line, 0);
        c.probe(&Access::scalar_write(line.word_at(1), Orientation::Row, 0));
        let wbs = c.flush();
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].dirty, 0b10);
        assert_eq!(wbs[0].words(), 1, "per-word dirty bits avoid false sharing");
    }

    #[test]
    fn misoriented_scalar_write_modifies_other_copy() {
        let mut c = cache(SetMapping::DifferentSet);
        let col = LineKey::new(0, Orientation::Col, 6);
        c.fill(col, 0);
        let shared = WordAddr::from_tile_coords(0, 2, 6);
        // Row-preferring write, but only the column copy exists → hit there.
        let p = c.probe(&Access::scalar_write(shared, Orientation::Row, 0));
        assert!(p.hit);
        assert_eq!(c.stats().misoriented_hits, 1);
        let wbs = c.flush();
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].line, col);
    }

    #[test]
    fn occupancy_tracks_both_orientations() {
        let mut c = cache(SetMapping::DifferentSet);
        c.fill(LineKey::new(0, Orientation::Row, 0), 0);
        c.fill(LineKey::new(1, Orientation::Col, 0), 0);
        c.fill(LineKey::new(2, Orientation::Col, 1), 0);
        assert_eq!(c.occupancy(), (1, 2, 64));
        c.flush();
        assert_eq!(c.occupancy(), (0, 0, 64));
    }
}
