//! Design 1: physically 1-D, logically 2-D cache (paper Sec. IV-C).
//!
//! Row and column lines are both stored as dense word sequences in ordinary
//! SRAM; an orientation bit per line distinguishes them (here it lives in
//! the [`LineKey`]). Two index mappings are supported:
//!
//! * **Different-Set** — rows/columns of a 2-D block spread over different
//!   sets (tag kept at tile granularity). The preferred orientation is
//!   probed first; probing the other orientation, and checking the up-to-8
//!   intersecting lines on vector misses and writes, costs extra sequential
//!   tag accesses which this model reports in [`Probe::extra_tag_accesses`].
//! * **Same-Set** — all sixteen lines of a block map to one set, so both
//!   orientations are seen in a single set read (no extra tag latency) at
//!   the price of set-conflict pressure.
//!
//! Duplicate words (intersecting row/column lines co-resident) are managed
//! by the Fig. 9 policy in [`crate::policy`]: duplication is allowed only
//! while clean; writes evict other copies; fills write dirty intersections
//! back first. Per-word dirty bits (one per word, paper Sec. IV-C) keep
//! false sharing from inflating writeback traffic.

use crate::config::{CacheConfig, SetMapping};
use crate::level::{Access, AccessWidth, CacheLevel, Probe, Writeback, WritebackSink};
use crate::set_array::SetArray;
use crate::stats::CacheStats;
use mda_mem::{LineKey, TILE_LINES};

/// Per-line metadata: one dirty bit per word.
#[derive(Debug, Clone, Copy, Default)]
struct LineMeta {
    dirty: u8,
}

/// Number of slots in the [`TileFilter`] (power of two).
const FILTER_SLOTS: usize = 4096;

/// Counting filter over resident lines, one lane per orientation, indexed
/// by the masked tile id. A zero count proves no line of that orientation
/// of that tile is resident, which lets the duplicate-policy paths skip
/// their up-to-eight intersection probes; a collision merely fails to skip
/// probes that would have found nothing, so the filter never changes an
/// outcome.
#[derive(Debug, Clone)]
struct TileFilter {
    counts: [Vec<u32>; 2],
}

impl TileFilter {
    fn new() -> TileFilter {
        TileFilter { counts: [vec![0; FILTER_SLOTS], vec![0; FILTER_SLOTS]] }
    }

    #[inline]
    fn slot(tile: u64) -> usize {
        tile as usize & (FILTER_SLOTS - 1)
    }

    #[inline]
    fn add(&mut self, line: &LineKey) {
        self.counts[line.orient as usize][Self::slot(line.tile)] += 1;
    }

    #[inline]
    fn remove(&mut self, line: &LineKey) {
        self.counts[line.orient as usize][Self::slot(line.tile)] -= 1;
    }

    /// Whether a line of `orient` from `tile` *may* be resident. `false`
    /// is definitive; `true` may be a collision.
    #[inline]
    fn may_contain(&self, orient: mda_mem::Orientation, tile: u64) -> bool {
        self.counts[orient as usize][Self::slot(tile)] != 0
    }

    fn clear(&mut self) {
        for lane in &mut self.counts {
            lane.iter_mut().for_each(|c| *c = 0);
        }
    }
}

/// The logically 2-D, physically 1-D cache.
#[derive(Debug, Clone)]
pub struct Cache1P2L {
    config: CacheConfig,
    mapping: SetMapping,
    array: SetArray<LineKey, LineMeta>,
    filter: TileFilter,
    row_lines: usize,
    col_lines: usize,
    stats: CacheStats,
}

impl Cache1P2L {
    /// Builds a 1P2L level from `config` with the given index `mapping`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: CacheConfig, mapping: SetMapping) -> Cache1P2L {
        if let Err(msg) = config.validate() {
            // mda-lint: allow(lib-unwrap): documented `# Panics` contract rejecting invalid configs
            panic!("invalid CacheConfig: {msg}");
        }
        let array = SetArray::new(config.line_sets(), config.assoc);
        Cache1P2L {
            config,
            mapping,
            array,
            filter: TileFilter::new(),
            row_lines: 0,
            col_lines: 0,
            stats: CacheStats::default(),
        }
    }

    /// The index mapping in use.
    pub fn mapping(&self) -> SetMapping {
        self.mapping
    }

    fn set_of(&self, line: &LineKey) -> usize {
        match self.mapping {
            SetMapping::DifferentSet => self.array.set_index(line.tile * 8 + u64::from(line.idx)),
            SetMapping::SameSet => self.array.set_index(line.tile),
        }
    }

    /// Extra sequential tag accesses for probing the non-preferred
    /// orientation: Different-Set reads a second set; Same-Set sees both
    /// orientations in one set read.
    fn cross_check_cost(&self, lines: u32) -> u32 {
        match self.mapping {
            SetMapping::DifferentSet => lines,
            SetMapping::SameSet => 0,
        }
    }

    fn present(&self, line: &LineKey) -> bool {
        self.filter.may_contain(line.orient, line.tile)
            && self.array.peek(self.set_of(line), *line).is_some()
    }

    /// `get_mut` gated by the tile filter: a zero count proves the miss
    /// without scanning the set (and a missed `get_mut` has no side
    /// effects, so skipping it changes nothing).
    fn lookup_mut(&mut self, line: &LineKey) -> Option<&mut LineMeta> {
        if !self.filter.may_contain(line.orient, line.tile) {
            return None;
        }
        let set = self.set_of(line);
        self.array.get_mut(set, *line)
    }

    fn note_line_removed(&mut self, line: &LineKey) {
        self.filter.remove(line);
        match line.orient {
            mda_mem::Orientation::Row => self.row_lines -= 1,
            mda_mem::Orientation::Col => self.col_lines -= 1,
        }
    }

    fn note_line_added(&mut self, line: &LineKey) {
        self.filter.add(line);
        match line.orient {
            mda_mem::Orientation::Row => self.row_lines += 1,
            mda_mem::Orientation::Col => self.col_lines += 1,
        }
    }

    /// Removes `line`, emitting a writeback if it holds dirty words.
    fn evict_line(&mut self, line: LineKey, out: &mut impl WritebackSink) {
        let set = self.set_of(&line);
        if let Some(meta) = self.array.remove(set, line) {
            self.note_line_removed(&line);
            self.stats.dup_evictions += 1;
            if meta.dirty != 0 {
                self.stats.dup_writebacks += 1;
                self.stats.writebacks_out += 1;
                out.push_wb(Writeback { line, dirty: meta.dirty });
            }
        }
    }

    /// Cleans `line` in place (Fig. 9: Modified → Clean on
    /// read-to-duplicate), emitting the writeback of its dirty words.
    fn clean_line(&mut self, line: LineKey, out: &mut impl WritebackSink) {
        let set = self.set_of(&line);
        if let Some(meta) = self.array.get_mut(set, line) {
            if meta.dirty != 0 {
                let dirty = meta.dirty;
                meta.dirty = 0;
                self.stats.dup_writebacks += 1;
                self.stats.writebacks_out += 1;
                out.push_wb(Writeback { line, dirty });
            }
        }
    }

    /// Resolves duplication before `line` is (re)filled with `dirty` words
    /// pre-modified: intersecting other-orientation lines are cleaned when
    /// the new copy is a read duplicate, and evicted when the corresponding
    /// word is being modified.
    fn resolve_intersections(&mut self, line: &LineKey, dirty: u8, out: &mut impl WritebackSink) {
        // No other-orientation line of this tile resident → nothing can
        // intersect; skip the eight probes.
        if !self.filter.may_contain(line.orient.other(), line.tile) {
            return;
        }
        for off in 0..TILE_LINES as u8 {
            let word = line.word_at(off);
            let other = line.intersecting_at(word);
            if !self.present(&other) {
                continue;
            }
            if dirty & (1 << off) != 0 {
                // Write to duplicate: other copies are evicted.
                self.evict_line(other, out);
            } else {
                // Read to duplicate: a dirty other copy is propagated first.
                // mda-lint: allow(lib-unwrap): geometric invariant; intersecting_at returns a line containing the word
                let other_off = other.offset_of(word).expect("intersection is on the line");
                let other_dirty = self
                    .array
                    .peek(self.set_of(&other), other)
                    .map(|m| m.dirty & (1 << other_off) != 0)
                    .unwrap_or(false);
                if other_dirty {
                    self.clean_line(other, out);
                }
                self.stats.duplications += 1;
            }
        }
    }

    /// Debug-build mirror of the model checker's `DirtyNotSole` invariant:
    /// a dirty word must be that word's only resident copy — duplication is
    /// legal only while every shared word is clean (Fig. 9). Scans the whole
    /// array, so it compiles to nothing in release builds.
    #[cfg(debug_assertions)]
    fn debug_assert_dirty_words_sole(&self) {
        for (key, meta) in self.array.iter() {
            let mut dirty = meta.dirty;
            while dirty != 0 {
                let off = dirty.trailing_zeros() as u8;
                dirty &= dirty - 1;
                let other = key.intersecting_at(key.word_at(off));
                debug_assert!(
                    !self.present(&other),
                    "dirty word duplicated: {key} word {off} also resident in {other}"
                );
            }
        }
    }

    #[cfg(not(debug_assertions))]
    fn debug_assert_dirty_words_sole(&self) {}

    /// Applies a demand write to a resident line, enforcing the duplicate
    /// policy on every written word.
    fn write_resident(&mut self, line: LineKey, mask: u8, out: &mut impl WritebackSink) {
        // Evict other copies of the written words first (skipped outright
        // when the filter proves no intersecting line is resident).
        if self.filter.may_contain(line.orient.other(), line.tile) {
            for off in 0..TILE_LINES as u8 {
                if mask & (1 << off) == 0 {
                    continue;
                }
                let other = line.intersecting_at(line.word_at(off));
                if self.present(&other) {
                    self.evict_line(other, out);
                }
            }
        }
        let set = self.set_of(&line);
        if let Some(meta) = self.array.get_mut(set, line) {
            meta.dirty |= mask;
        }
    }
}

impl CacheLevel for Cache1P2L {
    fn probe_into(&mut self, acc: &Access, out: &mut Probe) {
        out.reset();
        let preferred = acc.preferred_line();

        match acc.width {
            AccessWidth::Vector => {
                if acc.is_write {
                    let hit = self.present(&preferred);
                    self.stats.note_access(acc, hit);
                    if hit {
                        // Both orientations must be checked on writes.
                        out.extra_tag_accesses += self.cross_check_cost(TILE_LINES as u32);
                        self.write_resident(preferred, 0xFF, &mut out.writebacks);
                    } else {
                        out.hit = false;
                        out.fills.push(preferred);
                        out.extra_tag_accesses += self.cross_check_cost(TILE_LINES as u32);
                    }
                } else {
                    // Vector hits require the correctly aligned line; one
                    // `get_mut` both probes and refreshes recency (misses
                    // leave the LRU clock untouched).
                    let hit = self.lookup_mut(&preferred).is_some();
                    self.stats.note_access(acc, hit);
                    if !hit {
                        // Miss: the up-to-eight intersecting lines of the
                        // other orientation are checked for dirty data to
                        // propagate.
                        out.hit = false;
                        out.fills.push(preferred);
                        out.extra_tag_accesses += self.cross_check_cost(TILE_LINES as u32);
                    }
                }
            }
            AccessWidth::Scalar => {
                if acc.is_write {
                    // mda-lint: allow(lib-unwrap): geometric invariant; preferred line contains acc.word by construction
                    let off = preferred.offset_of(acc.word).expect("word within preferred line");
                    let other = preferred.intersecting_at(acc.word);
                    // Writes always check both orientations.
                    out.extra_tag_accesses += self.cross_check_cost(1);
                    if self.present(&preferred) {
                        self.write_resident(preferred, 1 << off, &mut out.writebacks);
                        self.stats.note_access(acc, true);
                    } else if self.present(&other) {
                        // Mis-oriented write hit: the word's sole copy lives
                        // in the other orientation; modify it there.
                        let other_off =
                            // mda-lint: allow(lib-unwrap): geometric invariant; intersecting_at returns a line containing the word
                            other.offset_of(acc.word).expect("intersection is on the line");
                        self.write_resident(other, 1 << other_off, &mut out.writebacks);
                        self.stats.misoriented_hits += 1;
                        self.stats.note_access(acc, true);
                    } else {
                        out.hit = false;
                        out.fills.push(preferred);
                        self.stats.note_access(acc, false);
                    }
                } else {
                    // Reads probe the preferred orientation with a single
                    // scan that also refreshes recency on a hit.
                    if self.lookup_mut(&preferred).is_some() {
                        self.stats.note_access(acc, true);
                    } else {
                        // Hit in the non-preferred orientation after a
                        // preferred miss costs one extra sequential tag
                        // access (Different-Set).
                        out.extra_tag_accesses += self.cross_check_cost(1);
                        let other = preferred.intersecting_at(acc.word);
                        if self.lookup_mut(&other).is_some() {
                            self.stats.misoriented_hits += 1;
                            self.stats.note_access(acc, true);
                        } else {
                            out.hit = false;
                            out.fills.push(preferred);
                            self.stats.note_access(acc, false);
                        }
                    }
                }
            }
        }

        self.stats.extra_tag_accesses += u64::from(out.extra_tag_accesses);
        self.debug_assert_dirty_words_sole();
    }

    fn fill(&mut self, line: LineKey, dirty: u8, out: &mut Vec<Writeback>) {
        if let Some(meta) = self.lookup_mut(&line) {
            // Already resident (e.g. race with a coalesced fill): merge.
            meta.dirty |= dirty;
            if dirty != 0 {
                self.resolve_intersections(&line, dirty, out);
            }
            return;
        }
        let set = self.set_of(&line);

        self.resolve_intersections(&line, dirty, out);
        self.stats.demand_fills += 1;
        if let Some((victim, meta)) = self.array.insert(set, line, LineMeta { dirty }) {
            self.note_line_removed(&victim);
            if meta.dirty != 0 {
                self.stats.writebacks_out += 1;
                out.push(Writeback { line: victim, dirty: meta.dirty });
            }
        }
        self.note_line_added(&line);
        self.debug_assert_dirty_words_sole();
    }

    fn absorb_writeback(&mut self, wb: &Writeback, cascades: &mut Vec<Writeback>) -> bool {
        if !self.present(&wb.line) {
            return false;
        }
        // The incoming dirty words modify this copy: other copies of those
        // words must go (write-to-duplicate), and any dirty ones must be
        // propagated further down by the caller.
        let before = cascades.len();
        self.write_resident(wb.line, wb.dirty, cascades);
        debug_assert!(cascades[before..].iter().all(|w| w.line.overlaps(&wb.line)));
        self.debug_assert_dirty_words_sole();
        true
    }

    fn contains_line(&self, line: &LineKey) -> bool {
        self.present(line)
    }

    fn occupancy(&self) -> (usize, usize, usize) {
        (self.row_lines, self.col_lines, self.config.line_frames())
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn flush(&mut self, out: &mut Vec<Writeback>) {
        let Cache1P2L { array, row_lines, col_lines, stats, filter, .. } = self;
        array.drain_all(|_set, key, meta| {
            match key.orient {
                mda_mem::Orientation::Row => *row_lines -= 1,
                mda_mem::Orientation::Col => *col_lines -= 1,
            }
            if meta.dirty != 0 {
                stats.writebacks_out += 1;
                out.push(Writeback { line: key, dirty: meta.dirty });
            }
        });
        filter.clear();
    }

    fn for_each_line(&self, f: &mut dyn FnMut(LineKey, u8)) {
        for (key, meta) in self.array.iter() {
            f(*key, meta.dirty);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::CacheLevelExt;
    use mda_mem::{Orientation, WordAddr};

    fn cache(mapping: SetMapping) -> Cache1P2L {
        let mut cfg = CacheConfig::l1_32k();
        cfg.size_bytes = 4096; // 16 sets × 4 ways
        Cache1P2L::new(cfg, mapping)
    }

    #[test]
    fn column_vector_miss_fills_column_line() {
        let mut c = cache(SetMapping::DifferentSet);
        let line = LineKey::new(2, Orientation::Col, 5);
        let p = c.probe(&Access::vector_read(line, 0));
        assert!(!p.hit);
        assert_eq!(p.fills, vec![line]);
        c.fill_collect(line, 0);
        assert!(c.probe(&Access::vector_read(line, 0)).hit);
        assert_eq!(c.occupancy(), (0, 1, 64));
    }

    #[test]
    fn scalar_hit_ignores_alignment() {
        let mut c = cache(SetMapping::DifferentSet);
        let row = LineKey::new(0, Orientation::Row, 3);
        c.fill_collect(row, 0);
        // A column-preferring scalar read of a word in that row line hits.
        let acc = Access::scalar_read(row.word_at(6), Orientation::Col, 0);
        let p = c.probe(&acc);
        assert!(p.hit);
        assert_eq!(p.extra_tag_accesses, 1, "different-set pays one extra check");
        assert_eq!(c.stats().misoriented_hits, 1);
    }

    #[test]
    fn same_set_mapping_has_no_extra_tag_cost() {
        let mut c = cache(SetMapping::SameSet);
        let row = LineKey::new(0, Orientation::Row, 3);
        c.fill_collect(row, 0);
        let acc = Access::scalar_read(row.word_at(6), Orientation::Col, 0);
        let p = c.probe(&acc);
        assert!(p.hit);
        assert_eq!(p.extra_tag_accesses, 0);
    }

    #[test]
    fn vector_hit_requires_alignment() {
        let mut c = cache(SetMapping::DifferentSet);
        // Fill all 8 row lines of tile 0 — every word present.
        for r in 0..8 {
            c.fill_collect(LineKey::new(0, Orientation::Row, r), 0);
        }
        // A column vector access still misses (mis-aligned).
        let p = c.probe(&Access::vector_read(LineKey::new(0, Orientation::Col, 2), 0));
        assert!(!p.hit, "vector hits require the correctly aligned block");
    }

    #[test]
    fn clean_duplicates_may_coexist() {
        let mut c = cache(SetMapping::DifferentSet);
        let row = LineKey::new(0, Orientation::Row, 2);
        let col = LineKey::new(0, Orientation::Col, 6);
        c.fill_collect(row, 0);
        let wbs = c.fill_collect(col, 0);
        assert!(wbs.is_empty(), "clean duplication needs no writeback");
        assert!(c.contains_line(&row) && c.contains_line(&col));
        assert_eq!(c.stats().duplications, 1);
    }

    #[test]
    fn write_evicts_clean_duplicate() {
        let mut c = cache(SetMapping::DifferentSet);
        let row = LineKey::new(0, Orientation::Row, 2);
        let col = LineKey::new(0, Orientation::Col, 6);
        c.fill_collect(row, 0);
        c.fill_collect(col, 0);
        // Write the shared word through the row copy.
        let shared = WordAddr::from_tile_coords(0, 2, 6);
        let p = c.probe(&Access::scalar_write(shared, Orientation::Row, 0));
        assert!(p.hit);
        assert!(p.writebacks.is_empty(), "clean duplicate is dropped silently");
        assert!(!c.contains_line(&col), "duplicate evicted so the write is sole-copy");
        assert!(c.contains_line(&row));
        assert_eq!(c.stats().dup_evictions, 1);
    }

    #[test]
    fn write_to_dirty_duplicate_forces_writeback() {
        let mut c = cache(SetMapping::DifferentSet);
        let row = LineKey::new(0, Orientation::Row, 2);
        let col = LineKey::new(0, Orientation::Col, 6);
        c.fill_collect(col, 0);
        // Dirty the column copy.
        let shared = WordAddr::from_tile_coords(0, 2, 6);
        assert!(c.probe(&Access::scalar_write(shared, Orientation::Col, 0)).hit);
        // Bring in the row line (read duplicate): dirty word propagates back.
        let wbs = c.fill_collect(row, 0);
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].line, col);
        assert!(c.contains_line(&col), "read-to-duplicate cleans, not evicts");
        // Now write through the row copy: the (clean) column copy is evicted.
        let p = c.probe(&Access::scalar_write(shared, Orientation::Row, 0));
        assert!(p.hit);
        assert!(!c.contains_line(&col));
    }

    #[test]
    fn fill_with_modified_words_evicts_dirty_intersections() {
        let mut c = cache(SetMapping::DifferentSet);
        let col = LineKey::new(0, Orientation::Col, 6);
        c.fill_collect(col, 0);
        let shared = WordAddr::from_tile_coords(0, 2, 6);
        c.probe(&Access::scalar_write(shared, Orientation::Col, 0));
        // Write-allocate fill of the intersecting row line, word 6 dirty.
        let wbs = c.fill_collect(LineKey::new(0, Orientation::Row, 2), 1 << 6);
        assert_eq!(wbs.len(), 1, "dirty duplicate written back");
        assert_eq!(wbs[0].line, col);
        assert!(!c.contains_line(&col), "write-to-duplicate evicts");
    }

    #[test]
    fn vector_write_hit_evicts_all_intersecting_lines() {
        let mut c = cache(SetMapping::SameSet);
        let row = LineKey::new(0, Orientation::Row, 2);
        c.fill_collect(row, 0);
        for cidx in [1u8, 4, 7] {
            c.fill_collect(LineKey::new(0, Orientation::Col, cidx), 0);
        }
        let p = c.probe(&Access::vector_write(row, 0));
        assert!(p.hit);
        for cidx in [1u8, 4, 7] {
            assert!(!c.contains_line(&LineKey::new(0, Orientation::Col, cidx)));
        }
    }

    #[test]
    fn different_set_vector_miss_charges_eight_checks() {
        let mut c = cache(SetMapping::DifferentSet);
        let p = c.probe(&Access::vector_read(LineKey::new(0, Orientation::Row, 0), 0));
        assert_eq!(p.extra_tag_accesses, 8);
        let mut c = cache(SetMapping::SameSet);
        let p = c.probe(&Access::vector_read(LineKey::new(0, Orientation::Row, 0), 0));
        assert_eq!(p.extra_tag_accesses, 0);
    }

    #[test]
    fn eviction_writes_back_only_dirty_words() {
        let mut c = cache(SetMapping::DifferentSet);
        let line = LineKey::new(0, Orientation::Row, 0);
        c.fill_collect(line, 0);
        c.probe(&Access::scalar_write(line.word_at(1), Orientation::Row, 0));
        let wbs = c.flush_collect();
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].dirty, 0b10);
        assert_eq!(wbs[0].words(), 1, "per-word dirty bits avoid false sharing");
    }

    #[test]
    fn misoriented_scalar_write_modifies_other_copy() {
        let mut c = cache(SetMapping::DifferentSet);
        let col = LineKey::new(0, Orientation::Col, 6);
        c.fill_collect(col, 0);
        let shared = WordAddr::from_tile_coords(0, 2, 6);
        // Row-preferring write, but only the column copy exists → hit there.
        let p = c.probe(&Access::scalar_write(shared, Orientation::Row, 0));
        assert!(p.hit);
        assert_eq!(c.stats().misoriented_hits, 1);
        let wbs = c.flush_collect();
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].line, col);
    }

    #[test]
    fn occupancy_tracks_both_orientations() {
        let mut c = cache(SetMapping::DifferentSet);
        c.fill_collect(LineKey::new(0, Orientation::Row, 0), 0);
        c.fill_collect(LineKey::new(1, Orientation::Col, 0), 0);
        c.fill_collect(LineKey::new(2, Orientation::Col, 1), 0);
        assert_eq!(c.occupancy(), (1, 2, 64));
        c.flush_collect();
        assert_eq!(c.occupancy(), (0, 0, 64));
    }
}
