// mda-lint: hot-path
//! Statically-dispatched sum of the four cache organizations.
//!
//! The simulator's hierarchy used to hold `Box<dyn CacheLevel>`, paying a
//! vtable indirection on every probe/fill/writeback of the demand path.
//! [`LevelKind`] enumerates the four concrete organizations instead: each
//! trait call is a `match` that monomorphizes into direct calls the
//! optimizer can inline. The `CacheLevel` trait itself stays object-safe
//! for tests and tools that still want dynamic dispatch.

use crate::cache_1p1l::Cache1P1L;
use crate::cache_1p2l::Cache1P2L;
use crate::cache_2p1l::Cache2P1L;
use crate::cache_2p2l::Cache2P2L;
use crate::config::CacheConfig;
use crate::level::{Access, CacheLevel, Probe, Writeback};
use crate::stats::CacheStats;
use mda_mem::LineKey;

/// One cache level of any of the four taxonomy organizations.
#[derive(Debug, Clone)]
pub enum LevelKind {
    /// Conventional baseline (physically and logically 1-D).
    L1P1L(Cache1P1L),
    /// Logically 2-D SRAM (Different-Set or Same-Set mapping).
    L1P2L(Cache1P2L),
    /// Physically 2-D, rows only (taxonomy ablation).
    L2P1L(Cache2P1L),
    /// Physically and logically 2-D (512-byte blocks).
    L2P2L(Cache2P2L),
}

impl From<Cache1P1L> for LevelKind {
    fn from(c: Cache1P1L) -> LevelKind {
        LevelKind::L1P1L(c)
    }
}

impl From<Cache1P2L> for LevelKind {
    fn from(c: Cache1P2L) -> LevelKind {
        LevelKind::L1P2L(c)
    }
}

impl From<Cache2P1L> for LevelKind {
    fn from(c: Cache2P1L) -> LevelKind {
        LevelKind::L2P1L(c)
    }
}

impl From<Cache2P2L> for LevelKind {
    fn from(c: Cache2P2L) -> LevelKind {
        LevelKind::L2P2L(c)
    }
}

/// Dispatches `$self.$method(...)` to whichever organization is inside.
macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            LevelKind::L1P1L($inner) => $body,
            LevelKind::L1P2L($inner) => $body,
            LevelKind::L2P1L($inner) => $body,
            LevelKind::L2P2L($inner) => $body,
        }
    };
}

impl CacheLevel for LevelKind {
    fn probe_into(&mut self, acc: &Access, out: &mut Probe) {
        dispatch!(self, c => c.probe_into(acc, out))
    }

    fn fill(&mut self, line: LineKey, dirty: u8, out: &mut Vec<Writeback>) {
        dispatch!(self, c => c.fill(line, dirty, out))
    }

    fn absorb_writeback(&mut self, wb: &Writeback, cascades: &mut Vec<Writeback>) -> bool {
        dispatch!(self, c => c.absorb_writeback(wb, cascades))
    }

    fn contains_line(&self, line: &LineKey) -> bool {
        dispatch!(self, c => c.contains_line(line))
    }

    fn occupancy(&self) -> (usize, usize, usize) {
        dispatch!(self, c => c.occupancy())
    }

    fn stats(&self) -> &CacheStats {
        dispatch!(self, c => c.stats())
    }

    fn stats_mut(&mut self) -> &mut CacheStats {
        dispatch!(self, c => c.stats_mut())
    }

    fn config(&self) -> &CacheConfig {
        dispatch!(self, c => c.config())
    }

    fn flush(&mut self, out: &mut Vec<Writeback>) {
        dispatch!(self, c => c.flush(out))
    }

    fn for_each_line(&self, f: &mut dyn FnMut(LineKey, u8)) {
        dispatch!(self, c => c.for_each_line(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SetMapping;
    use crate::level::CacheLevelExt;
    use mda_mem::Orientation;

    fn one_of_each() -> Vec<LevelKind> {
        let mut cfg = CacheConfig::l1_32k();
        cfg.size_bytes = 4096;
        let big = CacheConfig::l3(16 * 1024);
        vec![
            Cache1P1L::new(cfg).into(),
            Cache1P2L::new(cfg, SetMapping::DifferentSet).into(),
            Cache2P1L::new(big).into(),
            Cache2P2L::new(big).into(),
        ]
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        for mut level in one_of_each() {
            let line = LineKey::new(0, Orientation::Row, 1);
            let p = level.probe(&Access::vector_read(line, 0));
            assert!(!p.hit);
            assert_eq!(p.fills[0], line);
            assert!(level.fill_collect(line, 0xFF).is_empty());
            assert!(level.contains_line(&line));
            assert_eq!(level.stats().misses, 1);
            let wbs = level.flush_collect();
            assert_eq!(wbs.len(), 1, "dirty fill writes back on flush");
            assert!(!level.contains_line(&line));
        }
    }

    #[test]
    fn enum_is_usable_behind_dyn_too() {
        // The trait stays object-safe: a LevelKind can itself be boxed.
        let mut cfg = CacheConfig::l1_32k();
        cfg.size_bytes = 4096;
        let boxed: Box<dyn CacheLevel> = Box::new(LevelKind::from(Cache1P1L::new(cfg)));
        assert_eq!(boxed.occupancy().0, 0);
    }
}
