//! Design 2's LLC: the physically and logically 2-D cache (paper Sec. IV-C).
//!
//! Built from an on-chip MDA (STT crosspoint) array, the 2P2L cache
//! allocates **512-byte 2-D blocks** (8 rows × 8 columns × 8 B). Because a
//! block physically holds the whole tile, there is no data duplication and
//! no orientation metadata; instead each block carries a presence bit per
//! row line and per column line (16 bits per 512 B — the same overhead as
//! the valid + orientation bits of a 1P2L cache, paper Sec. IV-B-b).
//!
//! Two fill policies are modelled:
//!
//! * **sparse** (the paper's evaluated variant): only the demanded line is
//!   transferred into the allocated block; writebacks elide never-filled
//!   lines. Mis-oriented accesses may be served when the covering lines of
//!   the other orientation happen to be present ("partial hits").
//! * **dense** (ablation): the demand miss pulls all eight lines of the
//!   demand orientation, paying the paper's "large unit transfer cost".

use crate::config::CacheConfig;
use crate::inline_vec::InlineVec;
use crate::level::{Access, AccessWidth, CacheLevel, Probe, Writeback, PROBE_MAX};
use crate::set_array::SetArray;
use crate::stats::CacheStats;
use mda_mem::{LineKey, Orientation, TileId, TILE_LINES};

/// Per-block metadata: presence and dirtiness per row/column line.
#[derive(Debug, Clone, Copy, Default)]
struct TileMeta {
    row_valid: u8,
    col_valid: u8,
    row_dirty: u8,
    col_dirty: u8,
}

impl TileMeta {
    fn valid(&self, orient: Orientation, idx: u8) -> bool {
        match orient {
            Orientation::Row => self.row_valid & (1 << idx) != 0,
            Orientation::Col => self.col_valid & (1 << idx) != 0,
        }
    }

    fn set_valid(&mut self, orient: Orientation, idx: u8) {
        match orient {
            Orientation::Row => self.row_valid |= 1 << idx,
            Orientation::Col => self.col_valid |= 1 << idx,
        }
    }

    fn set_dirty(&mut self, orient: Orientation, idx: u8) {
        match orient {
            Orientation::Row => self.row_dirty |= 1 << idx,
            Orientation::Col => self.col_dirty |= 1 << idx,
        }
    }

    /// Whether the word at tile coordinates `(r, c)` is covered by any
    /// present line.
    fn word_present(&self, r: u8, c: u8) -> bool {
        self.row_valid & (1 << r) != 0 || self.col_valid & (1 << c) != 0
    }

    /// Debug-build mirror of the model checker's `DirtyInvalidLine`
    /// invariant: a dirty bit may only be set on a present line.
    fn debug_assert_dirty_implies_valid(&self) {
        debug_assert!(
            self.row_dirty & !self.row_valid == 0 && self.col_dirty & !self.col_valid == 0,
            "dirty bit on an absent line: {self:?}"
        );
    }
}

/// The physically 2-D cache.
#[derive(Debug, Clone)]
pub struct Cache2P2L {
    config: CacheConfig,
    array: SetArray<TileId, TileMeta>,
    sparse: bool,
    stats: CacheStats,
}

impl Cache2P2L {
    /// Builds a sparse-fill 2P2L level (the paper's evaluated variant).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or smaller than one block per
    /// set.
    pub fn new(config: CacheConfig) -> Cache2P2L {
        Cache2P2L::with_fill_policy(config, true)
    }

    /// Builds a 2P2L level with an explicit fill policy (`sparse = false`
    /// gives the dense ablation variant).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or smaller than one block per
    /// set.
    pub fn with_fill_policy(config: CacheConfig, sparse: bool) -> Cache2P2L {
        if let Err(msg) = config.validate() {
            // mda-lint: allow(lib-unwrap): documented `# Panics` contract rejecting invalid configs
            panic!("invalid CacheConfig: {msg}");
        }
        assert!(config.tile_sets() > 0, "capacity too small for 512-byte blocks");
        let array = SetArray::new(config.tile_sets(), config.assoc);
        Cache2P2L { config, array, sparse, stats: CacheStats::default() }
    }

    /// Whether the sparse fill policy is active.
    pub fn is_sparse(&self) -> bool {
        self.sparse
    }

    fn set_of(&self, tile: TileId) -> usize {
        self.array.set_index(tile)
    }

    /// Appends the fill lines demanded on a miss of `line`: just the demand
    /// line when sparse; the demand line followed by the rest of its
    /// orientation when dense (at most eight lines, so the probe's inline
    /// buffer always suffices).
    fn fill_lines(&self, line: LineKey, meta: Option<&TileMeta>, fills: &mut InlineVec<LineKey, PROBE_MAX>) {
        fills.push(line);
        if self.sparse {
            return;
        }
        for idx in 0..TILE_LINES as u8 {
            if idx == line.idx {
                continue;
            }
            let already = meta.map(|m| m.valid(line.orient, idx)).unwrap_or(false);
            if !already {
                fills.push(LineKey::new(line.tile, line.orient, idx));
            }
        }
    }

    /// Appends the dirty lines of an evicted block to `out`, returning how
    /// many writebacks were produced (for the traffic counter).
    fn push_writebacks(tile: TileId, meta: &TileMeta, out: &mut Vec<Writeback>) -> u64 {
        let mut n = 0;
        for idx in 0..TILE_LINES as u8 {
            if meta.row_dirty & (1 << idx) != 0 {
                out.push(Writeback { line: LineKey::new(tile, Orientation::Row, idx), dirty: 0xFF });
                n += 1;
            }
            if meta.col_dirty & (1 << idx) != 0 {
                out.push(Writeback { line: LineKey::new(tile, Orientation::Col, idx), dirty: 0xFF });
                n += 1;
            }
        }
        n
    }

    /// Marks the written words dirty through whichever resident lines cover
    /// them.
    fn mark_dirty(meta: &mut TileMeta, acc: &Access) {
        for w in acc.words() {
            let (r, c) = (w.row_in_tile(), w.col_in_tile());
            // Prefer dirtying along the access orientation when that line is
            // resident; otherwise dirty the covering line.
            let via = if meta.valid(acc.orient, match acc.orient {
                Orientation::Row => r,
                Orientation::Col => c,
            }) {
                acc.orient
            } else if meta.row_valid & (1 << r) != 0 {
                Orientation::Row
            } else {
                debug_assert!(meta.col_valid & (1 << c) != 0, "write to absent word");
                Orientation::Col
            };
            match via {
                Orientation::Row => meta.set_dirty(Orientation::Row, r),
                Orientation::Col => meta.set_dirty(Orientation::Col, c),
            }
        }
    }
}

impl CacheLevel for Cache2P2L {
    fn probe_into(&mut self, acc: &Access, out: &mut Probe) {
        out.reset();
        let set = self.set_of(acc.word.tile());
        let preferred = acc.preferred_line();

        // One set scan classifies the access, refreshes recency, and (on a
        // write hit) marks dirty bits through the same borrow; the metadata
        // is tiny and `Copy`, so the miss path keeps a snapshot for
        // `fill_lines` instead of re-scanning the set.
        let mut resident = None;
        let (hit, covered) = match self.array.get_mut(set, acc.word.tile()) {
            None => (false, false),
            Some(meta) => {
                let classified = match acc.width {
                    AccessWidth::Scalar => {
                        let present =
                            meta.word_present(acc.word.row_in_tile(), acc.word.col_in_tile());
                        let aligned = meta.valid(preferred.orient, preferred.idx);
                        (present, present && !aligned)
                    }
                    AccessWidth::Vector => {
                        if meta.valid(preferred.orient, preferred.idx) {
                            (true, false)
                        } else {
                            // Partial hit: every word covered by intersecting
                            // lines of the other orientation.
                            let covered = match preferred.orient {
                                Orientation::Row => meta.col_valid == 0xFF,
                                Orientation::Col => meta.row_valid == 0xFF,
                            };
                            (covered, covered)
                        }
                    }
                };
                if classified.0 && acc.is_write {
                    Self::mark_dirty(meta, acc);
                }
                meta.debug_assert_dirty_implies_valid();
                resident = Some(*meta);
                classified
            }
        };

        self.stats.note_access(acc, hit);
        if covered {
            self.stats.misoriented_hits += 1;
        }
        if !hit {
            out.hit = false;
            self.fill_lines(preferred, resident.as_ref(), &mut out.fills);
        }
    }

    fn fill(&mut self, line: LineKey, dirty: u8, out: &mut Vec<Writeback>) {
        let set = self.set_of(line.tile);
        if let Some(meta) = self.array.get_mut(set, line.tile) {
            meta.set_valid(line.orient, line.idx);
            if dirty != 0 {
                meta.set_dirty(line.orient, line.idx);
            }
            meta.debug_assert_dirty_implies_valid();
            return;
        }
        self.stats.demand_fills += 1;
        let mut meta = TileMeta::default();
        meta.set_valid(line.orient, line.idx);
        if dirty != 0 {
            meta.set_dirty(line.orient, line.idx);
        }
        meta.debug_assert_dirty_implies_valid();
        if let Some((victim, vm)) = self.array.insert(set, line.tile, meta) {
            self.stats.writebacks_out += Self::push_writebacks(victim, &vm, out);
        }
    }

    fn absorb_writeback(&mut self, wb: &Writeback, _cascades: &mut Vec<Writeback>) -> bool {
        let set = self.set_of(wb.line.tile);
        match self.array.get_mut(set, wb.line.tile) {
            Some(meta) => {
                meta.set_valid(wb.line.orient, wb.line.idx);
                meta.set_dirty(wb.line.orient, wb.line.idx);
                meta.debug_assert_dirty_implies_valid();
                true
            }
            None => false,
        }
    }

    fn contains_line(&self, line: &LineKey) -> bool {
        self.array
            .peek(self.set_of(line.tile), line.tile)
            .is_some_and(|m| m.valid(line.orient, line.idx))
    }

    fn occupancy(&self) -> (usize, usize, usize) {
        let mut rows = 0;
        let mut cols = 0;
        for (_, meta) in self.array.iter() {
            rows += meta.row_valid.count_ones() as usize;
            cols += meta.col_valid.count_ones() as usize;
        }
        (rows, cols, self.config.line_frames())
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn flush(&mut self, out: &mut Vec<Writeback>) {
        let Cache2P2L { array, stats, .. } = self;
        array.drain_all(|_set, tile, meta| {
            stats.writebacks_out += Self::push_writebacks(tile, &meta, out);
        });
    }

    fn for_each_line(&self, f: &mut dyn FnMut(LineKey, u8)) {
        for (tile, meta) in self.array.iter() {
            for idx in 0..TILE_LINES as u8 {
                if meta.row_valid & (1 << idx) != 0 {
                    let dirty = if meta.row_dirty & (1 << idx) != 0 { 0xFF } else { 0 };
                    f(LineKey::new(*tile, Orientation::Row, idx), dirty);
                }
                if meta.col_valid & (1 << idx) != 0 {
                    let dirty = if meta.col_dirty & (1 << idx) != 0 { 0xFF } else { 0 };
                    f(LineKey::new(*tile, Orientation::Col, idx), dirty);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::CacheLevelExt;
    use mda_mem::WordAddr;

    fn cache() -> Cache2P2L {
        // 16 KiB, 8-way → 4 tile sets of 8 blocks.
        let mut cfg = CacheConfig::l3(16 * 1024);
        cfg.assoc = 8;
        Cache2P2L::new(cfg)
    }

    #[test]
    fn sparse_miss_fetches_only_demand_line() {
        let mut c = cache();
        let line = LineKey::new(3, Orientation::Col, 2);
        let p = c.probe(&Access::vector_read(line, 0));
        assert!(!p.hit);
        assert_eq!(p.fills, vec![line]);
        c.fill_collect(line, 0);
        assert!(c.probe(&Access::vector_read(line, 0)).hit);
        assert_eq!(c.occupancy(), (0, 1, 256));
    }

    #[test]
    fn dense_miss_fetches_whole_block_orientation() {
        let mut cfg = CacheConfig::l3(16 * 1024);
        cfg.assoc = 8;
        let mut c = Cache2P2L::with_fill_policy(cfg, false);
        let line = LineKey::new(3, Orientation::Row, 2);
        let p = c.probe(&Access::vector_read(line, 0));
        assert_eq!(p.fills.len(), 8);
        assert_eq!(p.fills[0], line, "demand line first (critical line first)");
    }

    #[test]
    fn no_duplication_inside_a_block() {
        let mut c = cache();
        c.fill_collect(LineKey::new(0, Orientation::Row, 2), 0);
        c.fill_collect(LineKey::new(0, Orientation::Col, 6), 0);
        // The shared word is covered by both; writing it through the row
        // does not need any duplicate eviction (same physical storage).
        let shared = WordAddr::from_tile_coords(0, 2, 6);
        let p = c.probe(&Access::scalar_write(shared, Orientation::Row, 0));
        assert!(p.hit);
        assert!(p.writebacks.is_empty());
        assert!(c.contains_line(&LineKey::new(0, Orientation::Col, 6)));
    }

    #[test]
    fn scalar_hit_via_other_orientation_is_a_partial_hit() {
        let mut c = cache();
        c.fill_collect(LineKey::new(0, Orientation::Row, 2), 0);
        let word = WordAddr::from_tile_coords(0, 2, 5);
        let p = c.probe(&Access::scalar_read(word, Orientation::Col, 0));
        assert!(p.hit);
        assert_eq!(c.stats().misoriented_hits, 1);
    }

    #[test]
    fn vector_partial_hit_requires_full_coverage() {
        let mut c = cache();
        for r in 0..7 {
            c.fill_collect(LineKey::new(0, Orientation::Row, r), 0);
        }
        let col = LineKey::new(0, Orientation::Col, 3);
        assert!(!c.probe(&Access::vector_read(col, 0)).hit, "7/8 rows: not covered");
        c.fill_collect(LineKey::new(0, Orientation::Row, 7), 0);
        let p = c.probe(&Access::vector_read(col, 0));
        assert!(p.hit, "8/8 rows cover any column vector");
        assert_eq!(c.stats().misoriented_hits, 1);
    }

    #[test]
    fn eviction_is_block_granular_and_elides_clean_lines() {
        let mut cfg = CacheConfig::l3(16 * 1024);
        cfg.assoc = 8;
        let mut c = Cache2P2L::new(cfg);
        // Tile 0: one dirty row, one clean col.
        c.fill_collect(LineKey::new(0, Orientation::Row, 1), 0xFF);
        c.fill_collect(LineKey::new(0, Orientation::Col, 4), 0);
        // Evict tile 0 by filling 8 more tiles into set 0 (tiles ≡ 0 mod 4).
        let mut wbs = Vec::new();
        for k in 1..=8u64 {
            wbs.extend(c.fill_collect(LineKey::new(4 * k, Orientation::Row, 0), 0));
        }
        assert_eq!(wbs.len(), 1, "only the dirty row line is written back");
        assert_eq!(wbs[0].line, LineKey::new(0, Orientation::Row, 1));
        assert!(!c.contains_line(&LineKey::new(0, Orientation::Col, 4)), "whole block evicted");
    }

    #[test]
    fn absorb_writeback_sparsely_updates_resident_block() {
        let mut c = cache();
        let line = LineKey::new(5, Orientation::Col, 1);
        c.fill_collect(line, 0);
        let other = LineKey::new(5, Orientation::Row, 3);
        assert!(c.absorb_collect(&Writeback { line: other, dirty: 0xFF }).is_some());
        assert!(c.contains_line(&other));
        // An absent block cannot absorb — the caller allocates sparsely.
        let faraway = LineKey::new(77, Orientation::Row, 0);
        assert!(c.absorb_collect(&Writeback { line: faraway, dirty: 0xFF }).is_none());
    }

    #[test]
    fn write_via_covering_line_marks_it_dirty() {
        let mut c = cache();
        c.fill_collect(LineKey::new(0, Orientation::Row, 2), 0);
        // Column-preferring write to a word only covered by row 2.
        let w = WordAddr::from_tile_coords(0, 2, 5);
        assert!(c.probe(&Access::scalar_write(w, Orientation::Col, 0)).hit);
        let wbs = c.flush_collect();
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].line, LineKey::new(0, Orientation::Row, 2));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = cache();
        c.fill_collect(LineKey::new(1, Orientation::Row, 0), 0xFF);
        c.fill_collect(LineKey::new(2, Orientation::Col, 3), 0);
        let wbs = c.flush_collect();
        assert_eq!(wbs.len(), 1);
        assert_eq!(c.occupancy().0 + c.occupancy().1, 0);
    }

    #[test]
    #[should_panic(expected = "capacity too small")]
    fn tiny_capacity_rejected() {
        let mut cfg = CacheConfig::l3(1024);
        cfg.assoc = 4;
        // 1 KiB / 512 B = 2 blocks < 4-way: zero sets.
        let _ = Cache2P2L::new(cfg);
    }
}
