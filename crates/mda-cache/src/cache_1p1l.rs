//! Design 0: the physically and logically 1-D baseline cache.
//!
//! A conventional set-associative writeback cache of 64-byte row lines.
//! Column-preferring *scalar* accesses are legal (the preference bit is
//! simply ignored: the containing row line is fetched), which is how the
//! paper's baseline serves column access patterns — one row fetch per word.
//! Column *vector* accesses are impossible on this organization; the
//! compiler lowers them to eight scalars when targeting a 1-D hierarchy.

use crate::config::CacheConfig;
use crate::level::{Access, AccessWidth, CacheLevel, Probe, Writeback};
use crate::set_array::SetArray;
use crate::stats::CacheStats;
use mda_mem::{LineKey, Orientation};

/// Per-line metadata: a dirty bit per word (8 words per line).
#[derive(Debug, Clone, Copy, Default)]
struct LineMeta {
    dirty: u8,
}

/// The baseline 1P1L cache.
#[derive(Debug, Clone)]
pub struct Cache1P1L {
    config: CacheConfig,
    array: SetArray<LineKey, LineMeta>,
    stats: CacheStats,
}

impl Cache1P1L {
    /// Builds a 1P1L level from `config`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: CacheConfig) -> Cache1P1L {
        if let Err(msg) = config.validate() {
            // mda-lint: allow(lib-unwrap): documented `# Panics` contract rejecting invalid configs
            panic!("invalid CacheConfig: {msg}");
        }
        let array = SetArray::new(config.line_sets(), config.assoc);
        Cache1P1L { config, array, stats: CacheStats::default() }
    }

    fn set_of(&self, line: &LineKey) -> usize {
        debug_assert_eq!(line.orient, Orientation::Row);
        self.array.set_index(line.tile * 8 + u64::from(line.idx))
    }

    /// The row line a given access resolves to on this organization.
    fn target_line(acc: &Access) -> LineKey {
        match (acc.width, acc.orient) {
            (AccessWidth::Vector, Orientation::Col) => {
                // mda-lint: allow(lib-unwrap): documented API contract; the compiler never emits column vectors for 1P1L
                panic!(
                    "column vector access reached a 1P1L cache; the compiler \
                     must lower these to scalars for 1-D hierarchies"
                )
            }
            (AccessWidth::Vector, Orientation::Row) => acc.preferred_line(),
            (AccessWidth::Scalar, _) => LineKey::containing(acc.word, Orientation::Row),
        }
    }

    fn wb(line: LineKey, meta: LineMeta) -> Option<Writeback> {
        (meta.dirty != 0).then_some(Writeback { line, dirty: meta.dirty })
    }
}

impl CacheLevel for Cache1P1L {
    fn probe_into(&mut self, acc: &Access, out: &mut Probe) {
        out.reset();
        let line = Self::target_line(acc);
        let set = self.set_of(&line);
        let hit = if let Some(meta) = self.array.get_mut(set, line) {
            if acc.is_write {
                for w in acc.words() {
                    // mda-lint: allow(lib-unwrap): geometric invariant; acc.words() stay within the target line
                    let off = line.offset_of(w).expect("access word within target line");
                    meta.dirty |= 1 << off;
                }
            }
            true
        } else {
            false
        };
        self.stats.note_access(acc, hit);
        if !hit {
            out.hit = false;
            out.fills.push(line);
        }
    }

    fn fill(&mut self, line: LineKey, dirty: u8, out: &mut Vec<Writeback>) {
        debug_assert_eq!(line.orient, Orientation::Row, "1P1L holds row lines only");
        let set = self.set_of(&line);
        if let Some(meta) = self.array.get_mut(set, line) {
            meta.dirty |= dirty;
            return;
        }
        self.stats.demand_fills += 1;
        if let Some((vk, vm)) = self.array.insert(set, line, LineMeta { dirty }) {
            out.extend(Self::wb(vk, vm));
        }
    }

    fn absorb_writeback(&mut self, wb: &Writeback, _cascades: &mut Vec<Writeback>) -> bool {
        // A column-oriented writeback from a 2-D upper level cannot be
        // absorbed by a 1-D array; the hierarchy re-orients it first.
        if wb.line.orient != Orientation::Row {
            return false;
        }
        let set = self.set_of(&wb.line);
        match self.array.get_mut(set, wb.line) {
            Some(meta) => {
                meta.dirty |= wb.dirty;
                true
            }
            None => false,
        }
    }

    fn contains_line(&self, line: &LineKey) -> bool {
        line.orient == Orientation::Row && self.array.peek(self.set_of(line), *line).is_some()
    }

    fn occupancy(&self) -> (usize, usize, usize) {
        (self.array.len(), 0, self.config.line_frames())
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn flush(&mut self, out: &mut Vec<Writeback>) {
        self.array.drain_all(|_set, key, meta| out.extend(Self::wb(key, meta)));
    }

    fn for_each_line(&self, f: &mut dyn FnMut(LineKey, u8)) {
        for (key, meta) in self.array.iter() {
            f(*key, meta.dirty);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::CacheLevelExt;
    use mda_mem::WordAddr;

    fn small() -> Cache1P1L {
        // 4 KiB, 4-way: 16 sets.
        let mut cfg = CacheConfig::l1_32k();
        cfg.size_bytes = 4096;
        Cache1P1L::new(cfg)
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small();
        let acc = Access::scalar_read(WordAddr::from_tile_coords(0, 1, 2), Orientation::Row, 0);
        let p = c.probe(&acc);
        assert!(!p.hit);
        assert_eq!(p.fills, vec![LineKey::new(0, Orientation::Row, 1)]);
        assert!(c.fill_collect(p.fills[0], 0).is_empty());
        assert!(c.probe(&acc).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn column_scalar_access_fetches_row_line() {
        let mut c = small();
        let acc = Access::scalar_read(WordAddr::from_tile_coords(3, 4, 5), Orientation::Col, 0);
        let p = c.probe(&acc);
        assert_eq!(p.fills, vec![LineKey::new(3, Orientation::Row, 4)]);
    }

    #[test]
    fn write_marks_word_dirty_and_eviction_writes_back() {
        let mut c = small();
        let line = LineKey::new(0, Orientation::Row, 0);
        c.fill_collect(line, 0);
        let w = Access::scalar_write(line.word_at(3), Orientation::Row, 0);
        assert!(c.probe(&w).hit);
        // Evict by filling 4 conflicting lines into the same set (16 sets:
        // row lines 128 line-frames apart conflict).
        let mut wbs = Vec::new();
        for k in 1..=4u64 {
            // Same set: tile*8+idx ≡ 0 mod 16 → tile = 2k.
            c.fill(LineKey::new(2 * k, Orientation::Row, 0), 0, &mut wbs);
        }
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].line, line);
        assert_eq!(wbs[0].dirty, 0b1000);
    }

    #[test]
    fn vector_row_write_dirties_whole_line() {
        let mut c = small();
        let line = LineKey::new(1, Orientation::Row, 2);
        c.fill_collect(line, 0);
        assert!(c.probe(&Access::vector_write(line, 0)).hit);
        let wbs = c.flush_collect();
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].dirty, 0xFF);
    }

    #[test]
    #[should_panic(expected = "column vector access")]
    fn column_vector_access_is_rejected() {
        let mut c = small();
        let _ = c.probe(&Access::vector_read(LineKey::new(0, Orientation::Col, 0), 0));
    }

    #[test]
    fn absorb_writeback_updates_resident_line() {
        let mut c = small();
        let line = LineKey::new(0, Orientation::Row, 0);
        c.fill_collect(line, 0);
        assert!(c.absorb_collect(&Writeback { line, dirty: 0x0F }).is_some());
        let wbs = c.flush_collect();
        assert_eq!(wbs[0].dirty, 0x0F);
        // Absent line: not absorbed.
        assert!(c.absorb_collect(&Writeback { line, dirty: 0x01 }).is_none());
    }

    #[test]
    fn occupancy_counts_lines() {
        let mut c = small();
        assert_eq!(c.occupancy(), (0, 0, 64));
        c.fill_collect(LineKey::new(0, Orientation::Row, 0), 0);
        c.fill_collect(LineKey::new(0, Orientation::Row, 1), 0);
        assert_eq!(c.occupancy(), (2, 0, 64));
    }

    #[test]
    fn flush_leaves_cache_empty_but_keeps_stats() {
        let mut c = small();
        let acc = Access::scalar_read(WordAddr::from_tile_coords(0, 0, 0), Orientation::Row, 0);
        c.probe(&acc);
        c.fill_collect(LineKey::new(0, Orientation::Row, 0), 0xFF);
        let wbs = c.flush_collect();
        assert_eq!(wbs.len(), 1);
        assert_eq!(c.occupancy().0, 0);
        assert_eq!(c.stats().misses, 1);
    }
}
