// mda-lint: hot-path
//! 2-D-aware miss-status-holding registers (paper Sec. IV-B-b).
//!
//! Besides the usual duties — coalescing secondary misses to an outstanding
//! line and bounding miss-level parallelism — the MDA MSHRs enforce ordering
//! between *overlapping* transactions even when their access directions
//! differ: a request that shares a word with an outstanding request of the
//! other orientation (same tile) must not be reordered ahead of it when one
//! of the two writes.
//!
//! In the latency-forwarding simulator an entry is simply the completion
//! cycle of the outstanding fill; entries expire lazily as time advances.

use mda_mem::{Cycle, LineKey};

/// One outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    line: LineKey,
    completes: Cycle,
    is_write: bool,
}

/// A bounded table of outstanding misses for one cache level.
#[derive(Debug, Clone)]
pub struct Mshr {
    entries: Vec<Entry>,
    capacity: usize,
}

/// What the MSHR decided about a new miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrDecision {
    /// A fresh entry was allocated; the miss proceeds to the level below.
    Allocated {
        /// Earliest cycle the request may be issued below, after ordering
        /// constraints against overlapping outstanding transactions.
        issue_at: Cycle,
        /// Cycle the core had to wait until for a free register (equals the
        /// request time when no stall occurred).
        ready_at: Cycle,
    },
    /// The miss was coalesced into an outstanding entry for the same line;
    /// it completes when that entry does, with no new request below.
    Coalesced {
        /// Completion of the primary miss.
        completes: Cycle,
    },
}

impl Mshr {
    /// Creates an MSHR file with `capacity` registers.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Mshr {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        Mshr { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Registers currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Drops entries that completed at or before `now`.
    pub fn expire(&mut self, now: Cycle) {
        self.entries.retain(|e| e.completes > now);
    }

    /// Handles a miss on `line` at `now`.
    ///
    /// Returns either a coalescing decision or an allocation carrying the
    /// stall (`ready_at`) and ordering (`issue_at`) constraints. The caller
    /// must later call [`Mshr::complete`] with the fill's completion cycle.
    pub fn on_miss(&mut self, line: LineKey, is_write: bool, now: Cycle) -> MshrDecision {
        // One order-preserving pass fuses lazy expiry with the coalescing
        // lookup (2-D miss coalescing — "many misses to the same column are
        // combined into one column access in the MSHR", paper Sec. VII), the
        // earliest-completion aggregate and the overlap-ordering scan.
        // Entries removed by a full file complete at or before `ready_at`,
        // so including them in `overlap_until` cannot raise `issue_at`.
        let mut keep = 0;
        let mut coalesced: Option<Cycle> = None;
        let mut earliest = Cycle::MAX;
        let mut overlap_until: Cycle = 0;
        for r in 0..self.entries.len() {
            let e = self.entries[r];
            if e.completes <= now {
                continue; // expired
            }
            if coalesced.is_none() && e.line == line {
                coalesced = Some(e.completes);
            }
            earliest = earliest.min(e.completes);
            if e.line.overlaps(&line) && (e.is_write || is_write) {
                overlap_until = overlap_until.max(e.completes);
            }
            if keep != r {
                self.entries[keep] = e;
            }
            keep += 1;
        }
        self.entries.truncate(keep);

        if let Some(completes) = coalesced {
            return MshrDecision::Coalesced { completes };
        }

        // Full file: the request waits for the earliest completion.
        let mut ready_at = now;
        if self.entries.len() >= self.capacity {
            ready_at = earliest;
            self.entries.retain(|e| e.completes > earliest);
        }

        let issue_at = overlap_until.max(ready_at);
        MshrDecision::Allocated { issue_at, ready_at }
    }

    /// Completion cycle of an outstanding fill of `line`, if any. Used by
    /// the hierarchy to delay "hits" on lines whose fill is still in
    /// flight (the state update is instantaneous in a latency-forwarding
    /// model, but the data is not).
    pub fn pending_completion(&mut self, line: &LineKey, now: Cycle) -> Option<Cycle> {
        // Expiry and lookup fused into one order-preserving pass.
        let mut keep = 0;
        let mut found = None;
        for r in 0..self.entries.len() {
            let e = self.entries[r];
            if e.completes <= now {
                continue;
            }
            if found.is_none() && e.line == *line {
                found = Some(e.completes);
            }
            if keep != r {
                self.entries[keep] = e;
            }
            keep += 1;
        }
        self.entries.truncate(keep);
        found
    }

    /// Records the completion cycle of a previously allocated miss.
    pub fn complete(&mut self, line: LineKey, is_write: bool, completes: Cycle) {
        if self.entries.len() >= self.capacity {
            // Defensive: make room by dropping the earliest completion. The
            // on_miss path already freed space, so this only triggers when a
            // caller allocates without consulting on_miss.
            let earliest = self
                .entries
                .iter()
                .map(|e| e.completes)
                .min()
                // mda-lint: allow(lib-unwrap): structural invariant; this branch only runs when the file is full
                .expect("full MSHR file is non-empty");
            self.entries.retain(|e| e.completes > earliest);
        }
        self.entries.push(Entry { line, completes, is_write });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_mem::Orientation;

    fn line(tile: u64, o: Orientation, idx: u8) -> LineKey {
        LineKey::new(tile, o, idx)
    }

    #[test]
    fn secondary_miss_coalesces() {
        let mut m = Mshr::new(4);
        let l = line(1, Orientation::Col, 2);
        match m.on_miss(l, false, 10) {
            MshrDecision::Allocated { issue_at, ready_at } => {
                assert_eq!((issue_at, ready_at), (10, 10));
            }
            other => panic!("expected allocation, got {other:?}"),
        }
        m.complete(l, false, 500);
        match m.on_miss(l, false, 20) {
            MshrDecision::Coalesced { completes } => assert_eq!(completes, 500),
            other => panic!("expected coalescing, got {other:?}"),
        }
    }

    #[test]
    fn entries_expire_with_time() {
        let mut m = Mshr::new(4);
        let l = line(1, Orientation::Col, 2);
        m.complete(l, false, 500);
        match m.on_miss(l, false, 600) {
            MshrDecision::Allocated { .. } => {}
            other => panic!("expired entry must not coalesce: {other:?}"),
        }
    }

    #[test]
    fn full_file_stalls_until_earliest_completion() {
        let mut m = Mshr::new(2);
        m.complete(line(1, Orientation::Row, 0), false, 100);
        m.complete(line(2, Orientation::Row, 0), false, 200);
        match m.on_miss(line(3, Orientation::Row, 0), false, 10) {
            MshrDecision::Allocated { ready_at, .. } => assert_eq!(ready_at, 100),
            other => panic!("expected stalled allocation, got {other:?}"),
        }
        assert_eq!(m.outstanding(), 1, "the completed entry was retired");
    }

    #[test]
    fn overlapping_write_is_ordered_after_outstanding_read() {
        let mut m = Mshr::new(8);
        // Outstanding column read of tile 7.
        m.complete(line(7, Orientation::Col, 3), false, 400);
        // A row write to the same tile overlaps (they intersect in a word).
        match m.on_miss(line(7, Orientation::Row, 1), true, 10) {
            MshrDecision::Allocated { issue_at, .. } => assert_eq!(issue_at, 400),
            other => panic!("expected ordered allocation, got {other:?}"),
        }
    }

    #[test]
    fn overlapping_reads_need_no_ordering() {
        let mut m = Mshr::new(8);
        m.complete(line(7, Orientation::Col, 3), false, 400);
        match m.on_miss(line(7, Orientation::Row, 1), false, 10) {
            MshrDecision::Allocated { issue_at, .. } => assert_eq!(issue_at, 10),
            other => panic!("expected unordered allocation, got {other:?}"),
        }
    }

    #[test]
    fn non_overlapping_tiles_are_independent() {
        let mut m = Mshr::new(8);
        m.complete(line(7, Orientation::Col, 3), true, 400);
        match m.on_miss(line(8, Orientation::Row, 3), true, 10) {
            MshrDecision::Allocated { issue_at, .. } => assert_eq!(issue_at, 10),
            other => panic!("expected independent allocation, got {other:?}"),
        }
    }
}
