//! # mda-cache — cache models for Multi-Dimensional-Access memories
//!
//! Implements the MDACache taxonomy (paper Sec. IV):
//!
//! * [`Cache1P1L`] — the conventional baseline: physically and logically
//!   1-D, row lines only, evaluated with a stride [`prefetch`]er.
//! * [`Cache1P2L`] — physically 1-D SRAM, logically 2-D: holds row *and*
//!   column lines, with an orientation bit per line, per-word dirty bits,
//!   the duplicate-word coherence policy of paper Fig. 9, and either the
//!   *Different-Set* or *Same-Set* index mapping.
//! * [`Cache2P2L`] — physically 2-D (on-chip crosspoint, STT): allocates
//!   512-byte 2-D blocks, fills them sparsely (or densely, as an ablation),
//!   and needs no orientation metadata or duplication handling.
//!
//! All three implement [`CacheLevel`], the interface the `mda-sim`
//! hierarchy drives. Lookups are *functional + timing-annotated*: a probe
//! reports hit/miss, which line to fill on a miss, which writebacks the
//! duplicate policy forces, and how many extra sequential tag accesses the
//! operation costs (paper Sec. VI-A charges these on miss/write paths).
//!
//! ```
//! use mda_cache::{Cache1P2L, CacheConfig, CacheLevel, Access, SetMapping};
//! use mda_mem::{LineKey, Orientation, WordAddr};
//!
//! let mut l1 = Cache1P2L::new(CacheConfig::l1_32k(), SetMapping::DifferentSet);
//! let read = Access::scalar_read(WordAddr::from_tile_coords(0, 2, 5), Orientation::Col, 0);
//! let probe = l1.probe(&read);
//! assert!(!probe.hit);
//! // The miss requests a fill along the preferred (column) orientation.
//! assert_eq!(probe.fills[0], LineKey::new(0, Orientation::Col, 5));
//! ```

pub mod cache_1p1l;
pub mod cache_1p2l;
pub mod cache_2p1l;
pub mod cache_2p2l;
pub mod config;
pub mod inline_vec;
pub mod level;
pub mod level_kind;
pub mod mshr;
pub mod policy;
pub mod prefetch;
pub mod set_array;
pub mod stats;

pub use cache_1p1l::Cache1P1L;
pub use cache_1p2l::Cache1P2L;
pub use cache_2p1l::Cache2P1L;
pub use cache_2p2l::Cache2P2L;
pub use config::{CacheConfig, SetMapping};
pub use inline_vec::InlineVec;
pub use level::{Access, AccessWidth, CacheLevel, CacheLevelExt, Probe, Writeback, WritebackSink};
pub use level_kind::LevelKind;
pub use mshr::Mshr;
pub use prefetch::StridePrefetcher;
pub use stats::CacheStats;
