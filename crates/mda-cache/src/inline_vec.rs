//! A fixed-capacity, stack-allocated vector for the per-access hot path.
//!
//! [`Probe`](crate::level::Probe) results carry at most eight fill lines
//! (a dense 2P2L block fill) and at most eight policy writebacks (one per
//! word of a vector write hitting duplicates), so the demand path never
//! needs a heap `Vec` for them. `InlineVec` stores the elements inline
//! (`[T; N]` plus a length), dereferences to a slice, and panics on
//! overflow — capacity overruns are logic bugs, not runtime conditions.

/// A `Vec`-like container backed by a fixed inline array.
#[derive(Debug, Clone, Copy)]
pub struct InlineVec<T, const N: usize> {
    buf: [T; N],
    len: usize,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector.
    pub fn new() -> InlineVec<T, N> {
        InlineVec { buf: [T::default(); N], len: 0 }
    }

    /// A vector holding exactly `value`.
    pub fn of(value: T) -> InlineVec<T, N> {
        let mut v = InlineVec::new();
        v.push(value);
        v
    }

    /// Appends `value`.
    ///
    /// # Panics
    /// Panics if the vector is full — the hot-path producers are bounded
    /// by construction (≤ 8 lines per tile orientation), so overflow means
    /// a policy bug.
    pub fn push(&mut self, value: T) {
        assert!(self.len < N, "InlineVec capacity {N} exceeded");
        self.buf[self.len] = value;
        self.len += 1;
    }

    /// Drops all elements.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.buf[..self.len]
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> InlineVec<T, N> {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &InlineVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<[T]> for InlineVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_len_and_slice() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        v.push(7);
        v.push(9);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], 7);
        assert_eq!(&v[1..], &[9]);
        assert_eq!(v, vec![7, 9]);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn of_builds_a_singleton() {
        let v: InlineVec<u32, 8> = InlineVec::of(3);
        assert_eq!(v.as_slice(), &[3]);
    }

    #[test]
    #[should_panic(expected = "capacity 2 exceeded")]
    fn overflow_panics() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        v.push(0);
        v.push(1);
        v.push(2);
    }

    #[test]
    fn iterates_only_live_elements() {
        let mut v: InlineVec<u8, 8> = InlineVec::new();
        v.push(1);
        v.push(2);
        let collected: Vec<u8> = v.iter().copied().collect();
        assert_eq!(collected, vec![1, 2]);
        assert_eq!((&v).into_iter().count(), 2);
    }
}
