// mda-lint: hot-path
//! Generic set-associative storage with true-LRU replacement.
//!
//! All three cache organizations share this container: `1P1L`/`1P2L` use it
//! with [`mda_mem::LineKey`] keys and per-line metadata, `2P2L` with tile
//! ids and per-tile presence/dirty bitmaps.
//!
//! The storage is **structure-of-arrays**: tag lookups scan a dense `keys`
//! lane (no metadata or LRU stamps pulled into cache on the way), recency
//! updates touch only the `stamps` lane, and metadata lives in its own
//! `metas` lane. The per-way `Option<Entry>` boxes of the original AoS
//! layout are gone; occupancy is tracked by `keys[i].is_some()` plus a live
//! counter so `len()` is O(1).

/// A set-associative array mapping keys of type `K` to metadata `M`.
#[derive(Debug, Clone)]
pub struct SetArray<K, M> {
    /// Tag lane: `Some(key)` marks an occupied way.
    keys: Vec<Option<K>>,
    /// Metadata lane; slots for unoccupied ways hold `M::default()`.
    metas: Vec<M>,
    /// LRU-stamp lane; stale for unoccupied ways.
    stamps: Vec<u64>,
    num_sets: usize,
    assoc: usize,
    clock: u64,
    live: usize,
}

impl<K: Copy + Eq, M: Default> SetArray<K, M> {
    /// Creates an empty array of `num_sets` sets × `assoc` ways.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(num_sets: usize, assoc: usize) -> SetArray<K, M> {
        assert!(num_sets > 0 && assoc > 0, "sets and ways must be non-zero");
        let slots = num_sets * assoc;
        // mda-lint: allow(hot-path-alloc): construction-time only; steady state never allocates
        let mut metas = Vec::new();
        metas.resize_with(slots, M::default);
        SetArray {
            keys: vec![None; slots],
            metas,
            stamps: vec![0; slots],
            num_sets,
            assoc,
            clock: 0,
            live: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Maps a placement key to its set index (`key % num_sets`).
    ///
    /// Every preset configuration has a power-of-two set count, so the
    /// modulo — a 20+-cycle `u64` division on the per-access hot path —
    /// strength-reduces to a mask; the division remains as the fallback
    /// for arbitrary geometries.
    #[inline]
    pub fn set_index(&self, key: u64) -> usize {
        if self.num_sets.is_power_of_two() {
            (key & (self.num_sets as u64 - 1)) as usize
        } else {
            (key % self.num_sets as u64) as usize
        }
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        debug_assert!(set < self.num_sets, "set index out of range");
        set * self.assoc..(set + 1) * self.assoc
    }

    fn find(&self, set: usize, key: K) -> Option<usize> {
        self.set_range(set).find(|&i| self.keys[i] == Some(key))
    }

    /// Looks up `key` in `set`, updating recency on hit.
    ///
    /// The LRU clock only advances on a hit: a miss leaves recency state
    /// untouched, so long miss streaks cannot skew the victim ordering.
    pub fn get_mut(&mut self, set: usize, key: K) -> Option<&mut M> {
        let i = self.find(set, key)?;
        self.clock += 1;
        self.stamps[i] = self.clock;
        Some(&mut self.metas[i])
    }

    /// Looks up `key` in `set` without touching recency.
    pub fn peek(&self, set: usize, key: K) -> Option<&M> {
        self.find(set, key).map(|i| &self.metas[i])
    }

    /// Inserts `key` into `set`; on a full set the LRU entry is evicted and
    /// returned. Inserting a key already present replaces its metadata.
    pub fn insert(&mut self, set: usize, key: K, meta: M) -> Option<(K, M)> {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(set);

        // One pass over the set: replace in place if present, otherwise
        // remember the first free way and the LRU victim (first occupied
        // way with the minimal stamp).
        let mut free = None;
        let mut victim_idx = range.start;
        let mut victim_stamp = u64::MAX;
        for i in range {
            match self.keys[i] {
                Some(k) if k == key => {
                    self.metas[i] = meta;
                    self.stamps[i] = clock;
                    return None;
                }
                Some(_) => {
                    if self.stamps[i] < victim_stamp {
                        victim_stamp = self.stamps[i];
                        victim_idx = i;
                    }
                }
                None => {
                    if free.is_none() {
                        free = Some(i);
                    }
                }
            }
        }
        if let Some(i) = free {
            self.keys[i] = Some(key);
            self.metas[i] = meta;
            self.stamps[i] = clock;
            self.live += 1;
            return None;
        }
        // mda-lint: allow(lib-unwrap): structural invariant; with no free way the victim way is occupied
        let victim_key = self.keys[victim_idx].replace(key).expect("victim way occupied");
        let victim_meta = std::mem::replace(&mut self.metas[victim_idx], meta);
        self.stamps[victim_idx] = clock;
        Some((victim_key, victim_meta))
    }

    /// Removes `key` from `set`, returning its metadata.
    pub fn remove(&mut self, set: usize, key: K) -> Option<M> {
        let i = self.find(set, key)?;
        self.keys[i] = None;
        self.live -= 1;
        Some(std::mem::take(&mut self.metas[i]))
    }

    /// Empties the array, visiting every resident entry as
    /// `(set, key, meta)` in set order (way order within a set) — the
    /// allocation-free backbone of every `flush()` implementation.
    /// Statistics such as the LRU clock are preserved.
    pub fn drain_all(&mut self, mut f: impl FnMut(usize, K, M)) {
        for set in 0..self.num_sets {
            for i in self.set_range(set) {
                if let Some(key) = self.keys[i].take() {
                    self.live -= 1;
                    f(set, key, std::mem::take(&mut self.metas[i]));
                }
            }
        }
    }

    /// Iterates over the `(key, meta)` pairs resident in `set`.
    pub fn iter_set(&self, set: usize) -> impl Iterator<Item = (&K, &M)> {
        let range = self.set_range(set);
        self.keys[range.clone()]
            .iter()
            .zip(&self.metas[range])
            .filter_map(|(k, m)| k.as_ref().map(|k| (k, m)))
    }

    /// Iterates over every resident `(key, meta)` pair.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &M)> {
        self.keys.iter().zip(&self.metas).filter_map(|(k, m)| k.as_ref().map(|k| (k, m)))
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the array holds no entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut a: SetArray<u64, u8> = SetArray::new(4, 2);
        assert!(a.insert(1, 10, 0xA).is_none());
        assert_eq!(a.get_mut(1, 10).copied(), Some(0xA));
        assert_eq!(a.peek(1, 10).copied(), Some(0xA));
        assert!(a.get_mut(1, 11).is_none());
        assert!(a.get_mut(0, 10).is_none(), "other sets are independent");
    }

    #[test]
    fn lru_eviction_order() {
        let mut a: SetArray<u64, ()> = SetArray::new(1, 2);
        a.insert(0, 1, ());
        a.insert(0, 2, ());
        // Touch 1 so 2 becomes LRU.
        a.get_mut(0, 1);
        let evicted = a.insert(0, 3, ());
        assert_eq!(evicted, Some((2, ())));
        assert!(a.peek(0, 1).is_some());
        assert!(a.peek(0, 3).is_some());
    }

    #[test]
    fn miss_streaks_do_not_perturb_lru_victim_choice() {
        let mut a: SetArray<u64, ()> = SetArray::new(1, 2);
        a.insert(0, 1, ());
        a.insert(0, 2, ());
        // Touch 1 so 2 is LRU, then hammer the set with misses: dead
        // lookups must not advance the clock or reorder recency.
        a.get_mut(0, 1);
        let clock_sensitive_misses = 1000;
        for k in 0..clock_sensitive_misses {
            assert!(a.get_mut(0, 100 + k).is_none());
        }
        assert_eq!(a.insert(0, 3, ()), Some((2, ())), "2 stays the LRU victim");
        // After evicting 2, entry 1 (touched before the miss streak) is
        // older than 3 and must be the next victim.
        assert_eq!(a.insert(0, 4, ()), Some((1, ())));
    }

    #[test]
    fn reinsert_replaces_metadata_without_eviction() {
        let mut a: SetArray<u64, u8> = SetArray::new(1, 1);
        a.insert(0, 7, 1);
        assert!(a.insert(0, 7, 2).is_none());
        assert_eq!(a.peek(0, 7).copied(), Some(2));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn remove_frees_the_way() {
        let mut a: SetArray<u64, u8> = SetArray::new(1, 1);
        a.insert(0, 7, 1);
        assert_eq!(a.remove(0, 7), Some(1));
        assert!(a.is_empty());
        assert!(a.insert(0, 8, 2).is_none(), "freed way reused without eviction");
    }

    #[test]
    fn iter_set_sees_only_that_set() {
        let mut a: SetArray<u64, u8> = SetArray::new(2, 2);
        a.insert(0, 1, 10);
        a.insert(1, 2, 20);
        let set0: Vec<_> = a.iter_set(0).map(|(k, m)| (*k, *m)).collect();
        assert_eq!(set0, vec![(1, 10)]);
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn drain_all_yields_set_order_and_empties() {
        let mut a: SetArray<u64, u8> = SetArray::new(2, 2);
        a.insert(1, 30, 3);
        a.insert(0, 10, 1);
        a.insert(0, 20, 2);
        let mut seen = Vec::new();
        a.drain_all(|set, k, m| seen.push((set, k, m)));
        assert_eq!(seen, vec![(0, 10, 1), (0, 20, 2), (1, 30, 3)]);
        assert!(a.is_empty());
        assert_eq!(a.iter().count(), 0);
        assert!(a.insert(0, 40, 4).is_none(), "ways free after drain");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_assoc_panics() {
        let _: SetArray<u64, ()> = SetArray::new(4, 0);
    }
}
