//! Generic set-associative storage with true-LRU replacement.
//!
//! All three cache organizations share this container: `1P1L`/`1P2L` use it
//! with [`mda_mem::LineKey`] keys and per-line metadata, `2P2L` with tile
//! ids and per-tile presence/dirty bitmaps.

/// A set-associative array mapping keys of type `K` to metadata `M`.
#[derive(Debug, Clone)]
pub struct SetArray<K, M> {
    ways: Vec<Option<Entry<K, M>>>,
    num_sets: usize,
    assoc: usize,
    clock: u64,
}

#[derive(Debug, Clone)]
struct Entry<K, M> {
    key: K,
    meta: M,
    last_use: u64,
}

impl<K: Copy + Eq, M> SetArray<K, M> {
    /// Creates an empty array of `num_sets` sets × `assoc` ways.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(num_sets: usize, assoc: usize) -> SetArray<K, M> {
        assert!(num_sets > 0 && assoc > 0, "sets and ways must be non-zero");
        let mut ways = Vec::new();
        ways.resize_with(num_sets * assoc, || None);
        SetArray { ways, num_sets, assoc, clock: 0 }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        debug_assert!(set < self.num_sets, "set index out of range");
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Looks up `key` in `set`, updating recency on hit.
    ///
    /// The LRU clock only advances on a hit: a miss leaves recency state
    /// untouched, so long miss streaks cannot skew the victim ordering.
    pub fn get_mut(&mut self, set: usize, key: K) -> Option<&mut M> {
        let range = self.set_range(set);
        let clock = &mut self.clock;
        self.ways[range]
            .iter_mut()
            .flatten()
            .find(|e| e.key == key)
            .map(move |e| {
                *clock += 1;
                e.last_use = *clock;
                &mut e.meta
            })
    }

    /// Looks up `key` in `set` without touching recency.
    pub fn peek(&self, set: usize, key: K) -> Option<&M> {
        let range = self.set_range(set);
        self.ways[range].iter().flatten().find(|e| e.key == key).map(|e| &e.meta)
    }

    /// Inserts `key` into `set`; on a full set the LRU entry is evicted and
    /// returned. Inserting a key already present replaces its metadata.
    pub fn insert(&mut self, set: usize, key: K, meta: M) -> Option<(K, M)> {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(set);

        // One pass over the set: replace in place if present, otherwise
        // remember the first free way and the LRU victim (first entry with
        // the minimal `last_use`, matching the previous multi-pass scan).
        let mut free = None;
        let mut victim_idx = range.start;
        let mut victim_last_use = u64::MAX;
        for i in range {
            match &mut self.ways[i] {
                Some(e) if e.key == key => {
                    e.meta = meta;
                    e.last_use = clock;
                    return None;
                }
                Some(e) => {
                    if e.last_use < victim_last_use {
                        victim_last_use = e.last_use;
                        victim_idx = i;
                    }
                }
                None => {
                    if free.is_none() {
                        free = Some(i);
                    }
                }
            }
        }
        if let Some(i) = free {
            self.ways[i] = Some(Entry { key, meta, last_use: clock });
            return None;
        }
        let victim = self.ways[victim_idx].take().expect("victim way occupied");
        self.ways[victim_idx] = Some(Entry { key, meta, last_use: clock });
        Some((victim.key, victim.meta))
    }

    /// Removes `key` from `set`, returning its metadata.
    pub fn remove(&mut self, set: usize, key: K) -> Option<M> {
        let range = self.set_range(set);
        for i in range {
            if self.ways[i].as_ref().is_some_and(|e| e.key == key) {
                return self.ways[i].take().map(|e| e.meta);
            }
        }
        None
    }

    /// Iterates over the `(key, meta)` pairs resident in `set`.
    pub fn iter_set(&self, set: usize) -> impl Iterator<Item = (&K, &M)> {
        let range = self.set_range(set);
        self.ways[range].iter().flatten().map(|e| (&e.key, &e.meta))
    }

    /// Iterates over every resident `(key, meta)` pair.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &M)> {
        self.ways.iter().flatten().map(|e| (&e.key, &e.meta))
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.ways.iter().flatten().count()
    }

    /// Whether the array holds no entries.
    pub fn is_empty(&self) -> bool {
        self.ways.iter().all(|w| w.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut a: SetArray<u64, u8> = SetArray::new(4, 2);
        assert!(a.insert(1, 10, 0xA).is_none());
        assert_eq!(a.get_mut(1, 10).copied(), Some(0xA));
        assert_eq!(a.peek(1, 10).copied(), Some(0xA));
        assert!(a.get_mut(1, 11).is_none());
        assert!(a.get_mut(0, 10).is_none(), "other sets are independent");
    }

    #[test]
    fn lru_eviction_order() {
        let mut a: SetArray<u64, ()> = SetArray::new(1, 2);
        a.insert(0, 1, ());
        a.insert(0, 2, ());
        // Touch 1 so 2 becomes LRU.
        a.get_mut(0, 1);
        let evicted = a.insert(0, 3, ());
        assert_eq!(evicted, Some((2, ())));
        assert!(a.peek(0, 1).is_some());
        assert!(a.peek(0, 3).is_some());
    }

    #[test]
    fn miss_streaks_do_not_perturb_lru_victim_choice() {
        let mut a: SetArray<u64, ()> = SetArray::new(1, 2);
        a.insert(0, 1, ());
        a.insert(0, 2, ());
        // Touch 1 so 2 is LRU, then hammer the set with misses: dead
        // lookups must not advance the clock or reorder recency.
        a.get_mut(0, 1);
        let clock_sensitive_misses = 1000;
        for k in 0..clock_sensitive_misses {
            assert!(a.get_mut(0, 100 + k).is_none());
        }
        assert_eq!(a.insert(0, 3, ()), Some((2, ())), "2 stays the LRU victim");
        // After evicting 2, entry 1 (touched before the miss streak) is
        // older than 3 and must be the next victim.
        assert_eq!(a.insert(0, 4, ()), Some((1, ())));
    }

    #[test]
    fn reinsert_replaces_metadata_without_eviction() {
        let mut a: SetArray<u64, u8> = SetArray::new(1, 1);
        a.insert(0, 7, 1);
        assert!(a.insert(0, 7, 2).is_none());
        assert_eq!(a.peek(0, 7).copied(), Some(2));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn remove_frees_the_way() {
        let mut a: SetArray<u64, u8> = SetArray::new(1, 1);
        a.insert(0, 7, 1);
        assert_eq!(a.remove(0, 7), Some(1));
        assert!(a.is_empty());
        assert!(a.insert(0, 8, 2).is_none(), "freed way reused without eviction");
    }

    #[test]
    fn iter_set_sees_only_that_set() {
        let mut a: SetArray<u64, u8> = SetArray::new(2, 2);
        a.insert(0, 1, 10);
        a.insert(1, 2, 20);
        let set0: Vec<_> = a.iter_set(0).map(|(k, m)| (*k, *m)).collect();
        assert_eq!(set0, vec![(1, 10)]);
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_assoc_panics() {
        let _: SetArray<u64, ()> = SetArray::new(4, 0);
    }
}
