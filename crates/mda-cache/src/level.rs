// mda-lint: hot-path
//! The [`CacheLevel`] interface and the access/probe vocabulary shared by
//! all cache organizations.

use crate::config::CacheConfig;
use crate::inline_vec::InlineVec;
use crate::stats::CacheStats;
use mda_mem::{LineKey, Orientation, WordAddr};

/// Scalar (one word) or vector (one full line) access width.
///
/// At the ISA level every memory operation — scalar or SIMD — carries a row
/// or column preference bit (paper Sec. IV-B-a); the width decides how the
/// hit condition is evaluated (paper Sec. IV-B-b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessWidth {
    /// One 8-byte word.
    Scalar,
    /// One 64-byte line (eight words along the preferred orientation).
    Vector,
}

/// One processor-side memory operation presented to a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The first (or only) word touched. For vector accesses this must be
    /// offset 0 of the preferred-orientation line.
    pub word: WordAddr,
    /// Compiler-assigned access-direction preference.
    pub orient: Orientation,
    /// Scalar or vector.
    pub width: AccessWidth,
    /// Whether the operation writes.
    pub is_write: bool,
    /// Static-instruction stream id (PC analog) used by the prefetcher.
    pub stream: u32,
}

impl Access {
    /// A scalar read of `word` with preference `orient`.
    pub fn scalar_read(word: WordAddr, orient: Orientation, stream: u32) -> Access {
        Access { word, orient, width: AccessWidth::Scalar, is_write: false, stream }
    }

    /// A scalar write of `word` with preference `orient`.
    pub fn scalar_write(word: WordAddr, orient: Orientation, stream: u32) -> Access {
        Access { word, orient, width: AccessWidth::Scalar, is_write: true, stream }
    }

    /// A vector read of the full line `line`.
    pub fn vector_read(line: LineKey, stream: u32) -> Access {
        Access {
            word: line.word_at(0),
            orient: line.orient,
            width: AccessWidth::Vector,
            is_write: false,
            stream,
        }
    }

    /// A vector write of the full line `line`.
    pub fn vector_write(line: LineKey, stream: u32) -> Access {
        Access { is_write: true, ..Access::vector_read(line, stream) }
    }

    /// The line this access prefers (and fills on a miss).
    pub fn preferred_line(&self) -> LineKey {
        LineKey::containing(self.word, self.orient)
    }

    /// The words touched by the access.
    pub fn words(&self) -> impl Iterator<Item = WordAddr> + '_ {
        let line = self.preferred_line();
        let n = match self.width {
            AccessWidth::Scalar => 1,
            AccessWidth::Vector => mda_mem::LINE_WORDS as u8,
        };
        let start = match self.width {
            // mda-lint: allow(lib-unwrap): geometric invariant; the target line contains self.word by construction
            AccessWidth::Scalar => line.offset_of(self.word).expect("word within line"),
            AccessWidth::Vector => 0,
        };
        (start..start + n).map(move |off| line.word_at(off))
    }

    /// Bytes moved by the access.
    pub fn bytes(&self) -> u64 {
        match self.width {
            AccessWidth::Scalar => mda_mem::WORD_BYTES,
            AccessWidth::Vector => mda_mem::LINE_BYTES,
        }
    }
}

/// A dirty line (or partial line) that must be sent to the next lower level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Writeback {
    /// The line being written back.
    pub line: LineKey,
    /// Bitmask of dirty words within the line.
    pub dirty: u8,
}

impl Writeback {
    /// Number of dirty words carried.
    pub fn words(&self) -> u8 {
        self.dirty.count_ones() as u8
    }
}

/// Upper bound on lines or writebacks a single probe can produce: a dense
/// 2P2L block fill requests all eight lines of the tile orientation, and a
/// vector write can dirty-evict at most one intersecting copy per word.
pub const PROBE_MAX: usize = mda_mem::LINE_WORDS;

/// Result of probing a cache level with an [`Access`].
///
/// Both side-effect lists are inline ([`InlineVec`]) — a steady-state probe
/// performs zero heap allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Whether the access can be served by this level.
    pub hit: bool,
    /// Tag-array accesses performed *beyond* the first (each costs one
    /// additional `tag_latency`, paper Sec. VI-A).
    pub extra_tag_accesses: u32,
    /// Lines this level wants from below. Empty on a hit; on a miss the
    /// first entry is the demand (critical) line; dense 2P2L fills append
    /// the other seven lines of the block.
    pub fills: InlineVec<LineKey, PROBE_MAX>,
    /// Writebacks forced by the duplicate-word policy (dirty intersecting
    /// copies that must be propagated down before this access proceeds).
    pub writebacks: InlineVec<Writeback, PROBE_MAX>,
}

impl Probe {
    /// A plain hit with no side effects.
    pub fn hit() -> Probe {
        Probe {
            hit: true,
            extra_tag_accesses: 0,
            fills: InlineVec::new(),
            writebacks: InlineVec::new(),
        }
    }

    /// A plain miss demanding `line`.
    pub fn miss(line: LineKey) -> Probe {
        Probe {
            hit: false,
            extra_tag_accesses: 0,
            fills: InlineVec::of(line),
            writebacks: InlineVec::new(),
        }
    }

    /// Reinitializes to a plain hit in O(1): lengths are reset without
    /// touching the inline buffers, so a recycled `Probe` costs no
    /// re-zeroing on the per-access hot path.
    pub fn reset(&mut self) {
        self.hit = true;
        self.extra_tag_accesses = 0;
        self.fills.clear();
        self.writebacks.clear();
    }
}

/// Destination for writebacks produced inside a cache organization's
/// eviction/intersection helpers. Implemented for both heap `Vec`s (fill,
/// flush — unbounded output) and the probe's [`InlineVec`] (bounded), so
/// the helpers monomorphize instead of allocating intermediate vectors.
pub trait WritebackSink {
    /// Appends one writeback.
    fn push_wb(&mut self, wb: Writeback);
}

impl WritebackSink for Vec<Writeback> {
    fn push_wb(&mut self, wb: Writeback) {
        self.push(wb);
    }
}

impl<const N: usize> WritebackSink for InlineVec<Writeback, N> {
    fn push_wb(&mut self, wb: Writeback) {
        self.push(wb);
    }
}

/// Common interface of all cache organizations.
///
/// The hierarchy driver in `mda-sim` calls [`CacheLevel::probe`] on the
/// demand path, then on a miss requests the `fills` from the level below and
/// installs them with [`CacheLevel::fill`], propagating any returned
/// eviction writebacks downward.
pub trait CacheLevel {
    /// Looks up `acc`, updating replacement and dirty state on a hit,
    /// writing the result into `out` (which is `reset` first). Taking the
    /// result as an out-parameter lets the hierarchy recycle one `Probe`
    /// per recursion depth instead of zero-initializing ~300 bytes of
    /// inline buffers per access.
    fn probe_into(&mut self, acc: &Access, out: &mut Probe);

    /// Convenience wrapper returning the probe result by value.
    fn probe(&mut self, acc: &Access) -> Probe {
        let mut out = Probe::hit();
        self.probe_into(acc, &mut out);
        out
    }

    /// Installs `line` (with `dirty` words pre-marked, e.g. from an upper
    /// level's writeback or a write-allocate). Evicted dirty lines are
    /// appended to `out`, a caller-owned scratch buffer the hierarchy
    /// recycles across accesses; existing contents are preserved.
    fn fill(&mut self, line: LineKey, dirty: u8, out: &mut Vec<Writeback>);

    /// Accepts a writeback from the level above. Returns `true` if it was
    /// absorbed by updating a resident line — any dirty lines the duplicate
    /// policy had to push out are appended to `cascades` for the caller to
    /// forward downward. Returns `false` (appending nothing) if the line is
    /// absent and the caller should `fill` it instead (write-allocate of
    /// writebacks).
    fn absorb_writeback(&mut self, wb: &Writeback, cascades: &mut Vec<Writeback>) -> bool;

    /// Whether the exact line is resident (used by inclusive-check tests and
    /// partial-hit logic).
    fn contains_line(&self, line: &LineKey) -> bool;

    /// `(row_lines, col_lines, line_capacity)` currently resident — drives
    /// the paper's Fig. 15 occupancy plots.
    fn occupancy(&self) -> (usize, usize, usize);

    /// Statistics accumulated so far.
    fn stats(&self) -> &CacheStats;

    /// Mutable statistics (the hierarchy adds traffic counters).
    fn stats_mut(&mut self) -> &mut CacheStats;

    /// The level's configuration.
    fn config(&self) -> &CacheConfig;

    /// Invalidates all content (between benchmark phases); statistics are
    /// preserved. Dirty lines are appended to `out` in set order.
    fn flush(&mut self, out: &mut Vec<Writeback>);

    /// Visits every resident line as `(key, dirty_word_mask)` — the
    /// verification/debugging view the coherence property tests rely on.
    /// For a 2P2L level, a dirty line reports `0xFF` (dirtiness is tracked
    /// per line, not per word, inside a 2-D block).
    fn for_each_line(&self, f: &mut dyn FnMut(LineKey, u8));
}

/// Extension helpers over any [`CacheLevel`].
pub trait CacheLevelExt: CacheLevel {
    /// Resident row + column line count (size hint for snapshot helpers).
    fn resident_lines(&self) -> usize {
        let (rows, cols, _) = self.occupancy();
        rows + cols
    }

    /// Collects every resident line and its dirty mask.
    fn lines(&self) -> Vec<(LineKey, u8)> {
        let mut out = Vec::with_capacity(self.resident_lines());
        self.for_each_line(&mut |k, d| out.push((k, d)));
        out
    }

    /// The words currently resident (through any covering line).
    fn resident_words(&self) -> std::collections::HashSet<WordAddr> {
        let mut out = std::collections::HashSet::with_capacity(
            self.resident_lines() * mda_mem::LINE_WORDS,
        );
        self.for_each_line(&mut |k, _| out.extend(k.words()));
        out
    }

    /// The words currently dirty.
    fn dirty_words(&self) -> Vec<WordAddr> {
        let mut out = Vec::with_capacity(self.resident_lines());
        self.for_each_line(&mut |k, d| {
            for off in 0..mda_mem::LINE_WORDS as u8 {
                if d & (1 << off) != 0 {
                    out.push(k.word_at(off));
                }
            }
        });
        out
    }

    /// [`CacheLevel::fill`] collected into a fresh `Vec` (test/debug
    /// convenience; the simulator recycles scratch buffers instead).
    fn fill_collect(&mut self, line: LineKey, dirty: u8) -> Vec<Writeback> {
        // mda-lint: allow(hot-path-alloc): test/debug collector, never on the demand path
        let mut out = Vec::new();
        self.fill(line, dirty, &mut out);
        out
    }

    /// [`CacheLevel::absorb_writeback`] in the old `Option<Vec>` shape
    /// (test/debug convenience).
    fn absorb_collect(&mut self, wb: &Writeback) -> Option<Vec<Writeback>> {
        // mda-lint: allow(hot-path-alloc): test/debug collector, never on the demand path
        let mut cascades = Vec::new();
        if self.absorb_writeback(wb, &mut cascades) { Some(cascades) } else { None }
    }

    /// [`CacheLevel::flush`] collected into a fresh `Vec` (test/debug
    /// convenience).
    fn flush_collect(&mut self) -> Vec<Writeback> {
        // mda-lint: allow(hot-path-alloc): test/debug collector, never on the demand path
        let mut out = Vec::new();
        self.flush(&mut out);
        out
    }
}

impl<T: CacheLevel + ?Sized> CacheLevelExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_access_words() {
        let w = WordAddr::from_tile_coords(3, 2, 5);
        let a = Access::scalar_read(w, Orientation::Row, 0);
        assert_eq!(a.words().collect::<Vec<_>>(), vec![w]);
        assert_eq!(a.bytes(), 8);
        assert_eq!(a.preferred_line(), LineKey::new(3, Orientation::Row, 2));
    }

    #[test]
    fn vector_access_covers_line() {
        let line = LineKey::new(3, Orientation::Col, 5);
        let a = Access::vector_write(line, 7);
        assert!(a.is_write);
        assert_eq!(a.bytes(), 64);
        let words: Vec<_> = a.words().collect();
        assert_eq!(words.len(), 8);
        assert!(words.iter().all(|w| line.contains(*w)));
        assert_eq!(a.preferred_line(), line);
    }

    #[test]
    fn writeback_word_count() {
        let wb = Writeback { line: LineKey::new(0, Orientation::Row, 0), dirty: 0b1010_0001 };
        assert_eq!(wb.words(), 3);
    }
}
