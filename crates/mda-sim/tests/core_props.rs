//! Property tests for the bounded-window core model.

use mda_sim::{Core, CoreConfig};
use proptest::prelude::*;

fn cfg_strategy() -> impl Strategy<Value = CoreConfig> {
    (1usize..64, 1u32..8, 1u32..4, 1u64..6).prop_map(|(window, issue, ports, alu)| CoreConfig {
        window,
        issue_width: issue,
        load_ports: ports.min(issue),
        alu_latency: alu,
    })
}

/// A trace of op latencies: `None` = one compute µop, `Some(l)` = a memory
/// op taking `l` cycles.
fn trace_strategy() -> impl Strategy<Value = Vec<Option<u64>>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(None),
            2 => (1u64..50).prop_map(Some),
            1 => (100u64..400).prop_map(Some),
        ],
        1..120,
    )
}

fn run(cfg: CoreConfig, trace: &[Option<u64>]) -> u64 {
    let mut core = Core::new(cfg);
    for op in trace {
        match op {
            None => core.issue_compute(1),
            Some(latency) => {
                let l = *latency;
                core.issue_mem(move |at| at + l);
            }
        }
    }
    core.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Total cycles are at least the issue-bandwidth and latency lower
    /// bounds and at most the fully serialized upper bound.
    #[test]
    fn cycles_are_bounded(cfg in cfg_strategy(), trace in trace_strategy()) {
        let total = run(cfg, &trace);
        let n = trace.len() as u64;
        let issue_floor = n / u64::from(cfg.issue_width);
        let max_op = trace.iter().flatten().copied().max().unwrap_or(0).max(cfg.alu_latency);
        prop_assert!(total >= issue_floor, "{total} < issue floor {issue_floor}");
        let serial: u64 = trace
            .iter()
            .map(|o| o.unwrap_or(cfg.alu_latency) + 1)
            .sum();
        prop_assert!(total <= serial + max_op, "{total} > serial bound {serial}");
    }

    /// A wider core never takes longer on the same trace.
    #[test]
    fn wider_issue_is_not_slower(cfg in cfg_strategy(), trace in trace_strategy()) {
        let narrow = run(cfg, &trace);
        let wide = run(
            CoreConfig { issue_width: cfg.issue_width * 2, load_ports: cfg.load_ports * 2, ..cfg },
            &trace,
        );
        prop_assert!(wide <= narrow, "wide {wide} vs narrow {narrow}");
    }

    /// A larger window never hurts (more MLP).
    #[test]
    fn bigger_window_is_not_slower(cfg in cfg_strategy(), trace in trace_strategy()) {
        let small = run(cfg, &trace);
        let big = run(CoreConfig { window: cfg.window * 4, ..cfg }, &trace);
        prop_assert!(big <= small, "big-window {big} vs small-window {small}");
    }

    /// Retired µop accounting matches the trace.
    #[test]
    fn retired_uops_match(cfg in cfg_strategy(), trace in trace_strategy()) {
        let mut core = Core::new(cfg);
        for op in &trace {
            match op {
                None => core.issue_compute(1),
                Some(l) => { let l = *l; core.issue_mem(move |at| at + l); }
            }
        }
        prop_assert_eq!(core.retired_uops(), trace.len() as u64);
    }
}
