//! Property tests across the whole simulator: random affine programs on
//! random design points must keep all statistics self-consistent.

use mda_compiler::expr::AffineExpr;
use mda_compiler::ir::{ArrayRef, Loop, LoopNest, Program};
use mda_sim::{simulate, HierarchyKind, SystemConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ProgSpec {
    dim: u64,
    refs: Vec<(u8, u8, bool)>, // (row_pick, col_pick, write)
    flops: u32,
}

fn prog_strategy() -> impl Strategy<Value = ProgSpec> {
    (
        1u64..4,
        proptest::collection::vec((0u8..3, 0u8..3, any::<bool>()), 1..4),
        0u32..4,
    )
        .prop_map(|(blocks, refs, flops)| ProgSpec { dim: blocks * 8, refs, flops })
}

fn kind_strategy() -> impl Strategy<Value = HierarchyKind> {
    prop_oneof![
        Just(HierarchyKind::Baseline1P1L),
        Just(HierarchyKind::P1L2DifferentSet),
        Just(HierarchyKind::P1L2SameSet),
        Just(HierarchyKind::P2L2Sparse),
        Just(HierarchyKind::P2L2Dense),
    ]
}

fn build(spec: &ProgSpec) -> Program {
    let mut p = Program::new("prop");
    let a = p.array("A", spec.dim, spec.dim);
    let pick = |w: u8| match w {
        0 => AffineExpr::var(0),
        1 => AffineExpr::var(1),
        _ => AffineExpr::constant(0),
    };
    let refs = spec
        .refs
        .iter()
        .map(|(rp, cp, write)| {
            if *write {
                ArrayRef::write(a, pick(*rp), pick(*cp))
            } else {
                ArrayRef::read(a, pick(*rp), pick(*cp))
            }
        })
        .collect();
    p.add_nest(LoopNest {
        loops: vec![
            Loop::constant(0, spec.dim as i64),
            Loop::constant(0, spec.dim as i64),
        ],
        refs,
        flops_per_iter: spec.flops,
    });
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-level and memory statistics stay self-consistent on every design
    /// point.
    #[test]
    fn statistics_are_self_consistent(spec in prog_strategy(), kind in kind_strategy()) {
        let p = build(&spec);
        let r = simulate(&p, &SystemConfig::tiny(kind));

        prop_assert!(r.cycles > 0);
        // L1 sees exactly the demand stream.
        prop_assert_eq!(r.levels[0].accesses, r.ops.mem_ops);
        for (i, lvl) in r.levels.iter().enumerate() {
            prop_assert_eq!(lvl.hits + lvl.misses, lvl.accesses, "level {}", i);
            let by_class = lvl.row_scalar + lvl.row_vector + lvl.col_scalar + lvl.col_vector;
            prop_assert_eq!(by_class, lvl.accesses, "level {} class split", i);
        }
        // Memory read volume matches the line size.
        prop_assert_eq!(r.mem.bytes_read, r.mem.reads * 64);
        prop_assert_eq!(r.mem.row_reads + r.mem.col_reads, r.mem.reads);
        // A cold cache cannot have zero memory traffic unless there were no
        // memory ops at all.
        if r.ops.mem_ops > 0 {
            prop_assert!(r.mem.reads > 0);
        }
    }

    /// Simulation is a pure function of (program, config).
    #[test]
    fn simulation_is_deterministic(spec in prog_strategy(), kind in kind_strategy()) {
        let p = build(&spec);
        let cfg = SystemConfig::tiny(kind);
        let a = simulate(&p, &cfg);
        let b = simulate(&p, &cfg);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.levels, b.levels);
        prop_assert_eq!(a.mem, b.mem);
    }

    /// More cache can't increase memory reads (LRU inclusion-ish sanity on
    /// a single-nest program).
    #[test]
    fn bigger_llc_never_reads_more(spec in prog_strategy()) {
        let p = build(&spec);
        let small = simulate(&p, &SystemConfig::tiny(HierarchyKind::P1L2DifferentSet));
        let mut big_cfg = SystemConfig::tiny(HierarchyKind::P1L2DifferentSet);
        big_cfg.l3 = Some(mda_cache::CacheConfig::l3(1024 * 1024));
        let big = simulate(&p, &big_cfg);
        prop_assert!(big.mem.reads <= small.mem.reads);
    }

    /// The faster memory preset never slows a pure-demand run down.
    /// Designs that generate background traffic are excluded: faster fills
    /// relax MSHR throttling, letting the baseline's prefetcher (and the
    /// dense 2P2L's companion-line fetches) issue more aggressively and
    /// interfere with demand reads at the banks — a real scheduling
    /// anomaly, not a model bug.
    #[test]
    fn faster_memory_is_not_slower(spec in prog_strategy(), kind in kind_strategy()) {
        prop_assume!(kind != HierarchyKind::Baseline1P1L && kind != HierarchyKind::P2L2Dense);
        let p = build(&spec);
        let base = simulate(&p, &SystemConfig::tiny(kind));
        let fast = simulate(&p, &SystemConfig::tiny(kind).with_fast_memory());
        prop_assert!(fast.cycles <= base.cycles + base.cycles / 10,
            "fast {} vs base {}", fast.cycles, base.cycles);
    }
}
