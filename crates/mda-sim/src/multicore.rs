//! Multi-programmed simulation: several cores, private L1/L2s, one shared
//! LLC and one shared MDA memory.
//!
//! The paper evaluates single-threaded workloads and notes (Sec. IX-B)
//! that "an investigation of our techniques on parallel workloads would
//! examine these approaches in greater detail" — this module provides that
//! investigation harness. Each core replays one workload trace (captured
//! up front, since interleaving requires pull-based iteration); cores are
//! advanced in global time order, so contention on the shared LLC, the
//! memory banks and the write queues emerges naturally.

use crate::core::Core;
use crate::hierarchy::Hierarchy;
use crate::report::SimReport;
use crate::system::{HierarchyKind, SystemConfig};
use mda_cache::{CacheLevel, LevelKind, StridePrefetcher};
use mda_compiler::tracefile::RecordedTrace;
use mda_compiler::trace::{OpCounts, TraceOp, TraceSource};
use mda_mem::{Cycle, MainMemory, WordAddr};

/// Byte stride between the cores' address spaces (tile-aligned; large
/// enough that no two workloads' footprints can overlap).
const CORE_ADDRESS_STRIDE: u64 = 1 << 40;

/// Outcome of one multi-programmed run.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticoreReport {
    /// Per-core `(workload, cycles, op counts)`.
    pub per_core: Vec<(String, Cycle, OpCounts)>,
    /// Cycle at which the last core retired its last µop.
    pub makespan: Cycle,
    /// Statistics of every level in the pool (private levels in core
    /// order, shared LLC last).
    pub levels: Vec<mda_cache::CacheStats>,
    /// Shared-memory statistics.
    pub mem: mda_mem::MemStats,
}

impl MulticoreReport {
    /// The shared LLC's statistics.
    pub fn llc(&self) -> &mda_cache::CacheStats {
        // mda-lint: allow(lib-unwrap): structural invariant; the constructor always builds the LLC
        self.levels.last().expect("at least the LLC")
    }
}

impl SystemConfig {
    /// Builds a multi-programmed hierarchy: `cores` copies of this
    /// configuration's private levels in front of one shared LLC.
    ///
    /// # Panics
    /// Panics if the configuration is two-level (a shared LLC requires the
    /// three-level preset) or `cores` is zero.
    pub fn build_multicore_hierarchy(&self, cores: usize) -> Hierarchy {
        assert!(cores > 0, "need at least one core");
        assert!(self.l3.is_some(), "multi-programmed systems need a dedicated shared LLC");
        let mut privates: Vec<Vec<LevelKind>> = Vec::with_capacity(cores);
        let mut prefetchers: Vec<Option<StridePrefetcher>> = Vec::with_capacity(cores);
        for _ in 0..cores {
            // Reuse the single-core builder, then split off its private
            // levels (everything above the LLC).
            let single = self.build_hierarchy();
            let mut levels = single.into_levels();
            // mda-lint: allow(lib-unwrap): structural invariant; build_hierarchy always yields L1+L2+LLC
            let _llc = levels.pop().expect("three-level hierarchy");
            privates.push(levels);
            prefetchers.push(match self.kind {
                HierarchyKind::Baseline1P1L | HierarchyKind::P2L1 => {
                    Some(StridePrefetcher::new(self.prefetch_degree))
                }
                _ => None,
            });
        }
        let shared_llc = {
            let single = self.build_hierarchy();
            // mda-lint: allow(lib-unwrap): structural invariant; build_hierarchy always yields L1+L2+LLC
            single.into_levels().pop().expect("three-level hierarchy")
        };
        Hierarchy::multicore(privates, shared_llc, prefetchers, MainMemory::new(self.mem))
    }
}

/// Simulates `sources` running concurrently, one per core, on `cfg`'s
/// design point. Each core gets a disjoint tile-aligned address window.
///
/// # Panics
/// Panics if `sources` is empty or the configuration is two-level.
pub fn simulate_multicore(sources: &[&dyn TraceSource], cfg: &SystemConfig) -> MulticoreReport {
    assert!(!sources.is_empty(), "need at least one workload");
    let traces: Vec<RecordedTrace> =
        sources.iter().map(|s| RecordedTrace::capture(*s, &cfg.codegen)).collect();

    let mut hierarchy = cfg.build_multicore_hierarchy(sources.len());
    let mut cores: Vec<Core> = (0..sources.len()).map(|_| Core::new(cfg.core)).collect();
    let mut cursors = vec![0usize; sources.len()];
    let mut counts = vec![OpCounts::default(); sources.len()];
    let mut finished: Vec<Option<Cycle>> = vec![None; sources.len()];

    // Advance the core that is furthest behind in time (global
    // time-ordered interleaving).
    while let Some(idx) = (0..cores.len())
        .filter(|i| finished[*i].is_none())
        .min_by_key(|i| cores[*i].now())
    {
        let op = traces[idx].ops()[cursors[idx]];
        let op = offset_op(op, idx as u64 * CORE_ADDRESS_STRIDE);
        match &op {
            TraceOp::Mem(m) => {
                counts[idx].mem_ops += 1;
                counts[idx].bytes += m.bytes();
                if m.vector {
                    counts[idx].vector_mem_ops += 1;
                }
            }
            TraceOp::Compute(n) => counts[idx].compute_uops += u64::from(*n),
        }
        hierarchy.step_core(idx, &mut cores[idx], &op);
        cursors[idx] += 1;
        if cursors[idx] == traces[idx].ops().len() {
            finished[idx] = Some(cores[idx].finish());
        }
    }

    let per_core: Vec<(String, Cycle, OpCounts)> = traces
        .iter()
        .zip(&finished)
        .zip(&counts)
        // mda-lint: allow(lib-unwrap): structural invariant; the scheduler loop runs until every core finishes
        .map(|((t, f), c)| (t.name().to_string(), f.expect("all cores finished"), *c))
        .collect();
    let makespan = per_core.iter().map(|(_, c, _)| *c).max().unwrap_or(0);
    MulticoreReport {
        per_core,
        makespan,
        levels: hierarchy.levels().iter().map(|l| *l.stats()).collect(),
        mem: *hierarchy.memory().stats(),
    }
}

/// Relocates one op into a core-private address window.
fn offset_op(op: TraceOp, base: u64) -> TraceOp {
    match op {
        TraceOp::Compute(n) => TraceOp::Compute(n),
        TraceOp::Mem(m) => {
            TraceOp::Mem(mda_compiler::MemOp { word: WordAddr(m.word.0 + base), ..m })
        }
    }
}

/// Builds per-core `SimReport`-like summaries for display (each core's
/// private view plus the shared memory).
pub fn per_core_reports(r: &MulticoreReport, design: &str) -> Vec<SimReport> {
    r.per_core
        .iter()
        .map(|(name, cycles, ops)| SimReport {
            workload: name.clone(),
            design: design.to_string(),
            cycles: *cycles,
            levels: r.levels.clone(),
            mem: r.mem,
            ops: *ops,
            occupancy: crate::occupancy::OccupancyTimeline::new(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_compiler::{AffineExpr, ArrayRef, Loop, LoopNest, Program};

    fn walk(name: &str, n: i64, col: bool) -> Program {
        let mut p = Program::new(name);
        let a = p.array("A", n as u64, n as u64);
        let (r, c) = if col {
            (AffineExpr::var(1), AffineExpr::var(0))
        } else {
            (AffineExpr::var(0), AffineExpr::var(1))
        };
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, n), Loop::constant(0, n)],
            refs: vec![ArrayRef::read(a, r, c)],
            flops_per_iter: 1,
        });
        p
    }

    #[test]
    fn two_programs_share_memory_but_not_addresses() {
        let a = walk("rows", 32, false);
        let b = walk("cols", 32, true);
        let cfg = SystemConfig::tiny(crate::HierarchyKind::P1L2DifferentSet);
        let r = simulate_multicore(&[&a, &b], &cfg);
        assert_eq!(r.per_core.len(), 2);
        assert!(r.makespan > 0);
        assert_eq!(r.per_core[0].0, "rows");
        assert_eq!(r.per_core[1].0, "cols");
        // Disjoint address windows: total memory reads equal the sum the
        // two programs would need, with no cross-core aliasing "sharing".
        assert!(r.mem.reads >= 2 * (32 * 32 * 8 / 64));
        assert_eq!(r.levels.len(), 5, "2 cores × 2 private levels + shared LLC");
    }

    #[test]
    fn contention_slows_cores_down() {
        let a = walk("one", 32, true);
        let cfg = SystemConfig::tiny(crate::HierarchyKind::P1L2DifferentSet);
        let solo = simulate_multicore(&[&a], &cfg);
        let b = walk("two", 32, true);
        let c = walk("three", 32, true);
        let d = walk("four", 32, true);
        let quad = simulate_multicore(&[&a, &b, &c, &d], &cfg);
        let solo_cycles = solo.per_core[0].1;
        let with_others = quad.per_core[0].1;
        assert!(
            with_others >= solo_cycles,
            "sharing the memory system cannot speed a core up ({solo_cycles} → {with_others})"
        );
    }

    #[test]
    fn multicore_is_deterministic() {
        let a = walk("a", 24, false);
        let b = walk("b", 24, true);
        let cfg = SystemConfig::tiny(crate::HierarchyKind::P2L2Sparse);
        let r1 = simulate_multicore(&[&a, &b], &cfg);
        let r2 = simulate_multicore(&[&a, &b], &cfg);
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "shared LLC")]
    fn two_level_configs_are_rejected() {
        let cfg = SystemConfig::paper_cache_resident(crate::HierarchyKind::Baseline1P1L);
        let a = walk("a", 16, false);
        let _ = simulate_multicore(&[&a], &cfg);
    }
}
