//! # mda-sim — the trace-driven MDACache system simulator
//!
//! Wires the pieces of the reproduction together: the
//! [`core`] model (bounded-window OoO approximation of the paper's gem5
//! x86 core), the [`hierarchy`] driver over `mda-cache` levels with 2-D
//! MSHRs, and the `mda-mem` MDA main memory. [`simulate`] consumes the
//! trace `mda-compiler` generates for the configured design point and
//! returns a [`SimReport`] carrying every statistic the paper plots.
//!
//! ```
//! use mda_sim::{simulate, HierarchyKind, SystemConfig};
//! use mda_compiler::{AffineExpr, ArrayRef, Loop, LoopNest, Program};
//!
//! // A column walk over a 64×64 matrix.
//! let mut p = Program::new("colwalk");
//! let a = p.array("A", 64, 64);
//! p.add_nest(LoopNest {
//!     loops: vec![Loop::constant(0, 64), Loop::constant(0, 64)],
//!     refs: vec![ArrayRef::read(a, AffineExpr::var(1), AffineExpr::var(0))],
//!     flops_per_iter: 1,
//! });
//!
//! let baseline = simulate(&p, &SystemConfig::tiny(HierarchyKind::Baseline1P1L));
//! let mda = simulate(&p, &SystemConfig::tiny(HierarchyKind::P1L2DifferentSet));
//! // Column transfers move only the words the walk uses; the baseline
//! // issues eight scalar ops per column chunk.
//! assert!(mda.ops.mem_ops * 4 < baseline.ops.mem_ops);
//! assert!(mda.cycles > 0 && baseline.cycles > 0);
//! ```

pub mod core;
pub mod energy;
pub mod hierarchy;
pub mod multicore;
pub mod occupancy;
pub mod report;
pub mod run;
pub mod system;

pub use crate::core::{Core, CoreConfig};
pub use energy::EnergyModel;
pub use hierarchy::Hierarchy;
pub use multicore::{simulate_multicore, MulticoreReport};
pub use occupancy::{OccupancySample, OccupancyTimeline};
pub use mda_mem::{ConfigError, FaultConfig, FaultRates};
pub use report::SimReport;
pub use run::simulate;
pub use system::{HierarchyKind, SystemConfig};
