//! The bounded-window core model.
//!
//! The paper simulates an out-of-order x86 core in gem5; this crate
//! substitutes the standard trace-driven approximation (DESIGN.md §2): a
//! core with an instruction window of `window` in-flight micro-ops, an
//! issue width of `issue_width` µops/cycle, `load_ports` memory µops/cycle,
//! and in-order retirement. Long-latency memory operations overlap up to
//! the window/MSHR limit, which is the memory-level-parallelism behaviour
//! the paper's results depend on; when the window fills behind a stalled
//! head, issue stops — the classic lost-cycles model.

use mda_mem::Cycle;
use std::collections::VecDeque;

/// Core parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// In-flight µop window (ROB stand-in).
    pub window: usize,
    /// µops issued per cycle.
    pub issue_width: u32,
    /// Memory µops issued per cycle (L1 ports).
    pub load_ports: u32,
    /// Execution latency of a non-memory µop.
    pub alu_latency: u64,
}

impl CoreConfig {
    /// A 3 GHz 4-wide out-of-order core (paper Table I class).
    pub fn paper() -> CoreConfig {
        CoreConfig { window: 96, issue_width: 4, load_ports: 2, alu_latency: 3 }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns a message when any resource is zero-sized.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 || self.issue_width == 0 || self.load_ports == 0 {
            return Err("window, issue width and load ports must be non-zero".into());
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::paper()
    }
}

/// The core's execution state while consuming a trace.
#[derive(Debug, Clone)]
pub struct Core {
    cfg: CoreConfig,
    /// Monotonic (in-order-retire) completion times of in-flight µops.
    window: VecDeque<Cycle>,
    cur_cycle: Cycle,
    issued_this_cycle: u32,
    mem_issued_this_cycle: u32,
    last_completion: Cycle,
    retired_uops: u64,
}

impl Core {
    /// Creates an idle core.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: CoreConfig) -> Core {
        if let Err(msg) = cfg.validate() {
            // mda-lint: allow(lib-unwrap): documented `# Panics` contract rejecting invalid configs
            panic!("invalid CoreConfig: {msg}");
        }
        Core {
            cfg,
            window: VecDeque::with_capacity(cfg.window),
            cur_cycle: 0,
            issued_this_cycle: 0,
            mem_issued_this_cycle: 0,
            last_completion: 0,
            retired_uops: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// µops retired so far (including drained window entries only after
    /// [`Core::finish`]).
    pub fn retired_uops(&self) -> u64 {
        self.retired_uops
    }

    /// Current issue cycle.
    pub fn now(&self) -> Cycle {
        self.cur_cycle
    }

    /// Finds the next cycle with an available issue slot (and load port if
    /// `is_mem`), respecting window occupancy.
    fn next_issue_slot(&mut self, is_mem: bool) -> Cycle {
        // Window full: the oldest in-flight µop must retire to free a slot.
        if self.window.len() >= self.cfg.window {
            // mda-lint: allow(lib-unwrap): structural invariant; guarded by the window-full check above
            let frees_at = self.window.pop_front().expect("window non-empty");
            if frees_at > self.cur_cycle {
                self.cur_cycle = frees_at;
                self.issued_this_cycle = 0;
                self.mem_issued_this_cycle = 0;
            }
        }
        loop {
            let width_ok = self.issued_this_cycle < self.cfg.issue_width;
            let port_ok = !is_mem || self.mem_issued_this_cycle < self.cfg.load_ports;
            if width_ok && port_ok {
                return self.cur_cycle;
            }
            self.cur_cycle += 1;
            self.issued_this_cycle = 0;
            self.mem_issued_this_cycle = 0;
        }
    }

    fn push_completion(&mut self, completes: Cycle) {
        // In-order retirement: completion times are monotonicized.
        self.last_completion = self.last_completion.max(completes);
        self.window.push_back(self.last_completion);
        self.retired_uops += 1;
    }

    /// Issues one memory µop. `access` receives the issue cycle and returns
    /// the completion cycle (from the cache hierarchy).
    pub fn issue_mem(&mut self, access: impl FnOnce(Cycle) -> Cycle) {
        let at = self.next_issue_slot(true);
        self.issued_this_cycle += 1;
        self.mem_issued_this_cycle += 1;
        let completes = access(at);
        self.push_completion(completes.max(at));
    }

    /// Issues `n` non-memory µops as a batch (they consume issue bandwidth
    /// and one window slot — ALU work never clogs the window in this
    /// model).
    pub fn issue_compute(&mut self, n: u32) {
        if n == 0 {
            return;
        }
        let mut last_at = self.cur_cycle;
        // Advance issue bandwidth for n µops.
        let mut remaining = n;
        while remaining > 0 {
            let slots = self.cfg.issue_width - self.issued_this_cycle;
            if slots == 0 {
                self.cur_cycle += 1;
                self.issued_this_cycle = 0;
                self.mem_issued_this_cycle = 0;
                continue;
            }
            let batch = slots.min(remaining);
            self.issued_this_cycle += batch;
            remaining -= batch;
            last_at = self.cur_cycle;
        }
        self.retired_uops += u64::from(n.saturating_sub(1));
        self.push_completion(last_at + self.cfg.alu_latency);
    }

    /// Drains the window and returns the cycle at which the last µop
    /// retired — the program's execution time.
    pub fn finish(&mut self) -> Cycle {
        self.window.clear();
        self.last_completion.max(self.cur_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Core {
        Core::new(CoreConfig { window: 4, issue_width: 2, load_ports: 1, alu_latency: 1 })
    }

    #[test]
    fn issue_width_bounds_throughput() {
        let mut c = Core::new(CoreConfig { window: 64, issue_width: 2, load_ports: 2, alu_latency: 1 });
        // 10 compute µops at width 2 → 5 cycles of issue.
        c.issue_compute(10);
        let t = c.finish();
        assert_eq!(t, 4 + 1, "last µop issues at cycle 4, completes at 5");
    }

    #[test]
    fn load_ports_bound_memory_issue() {
        let mut c = core();
        let mut issue_cycles = Vec::new();
        for _ in 0..3 {
            c.issue_mem(|at| {
                issue_cycles.push(at);
                at + 1
            });
        }
        assert_eq!(issue_cycles, vec![0, 1, 2], "one memory µop per cycle");
    }

    #[test]
    fn window_fills_behind_long_latency_miss() {
        let mut c = core();
        // One 1000-cycle miss, then a stream of short hits: the window (4)
        // admits only a few before stalling until the miss returns.
        c.issue_mem(|at| at + 1000);
        let mut last_issue = 0;
        for _ in 0..6 {
            c.issue_mem(|at| {
                last_issue = at;
                at + 1
            });
        }
        assert!(last_issue >= 1000, "issue stalled on the full window, got {last_issue}");
    }

    #[test]
    fn independent_misses_overlap_within_the_window() {
        let mut c = Core::new(CoreConfig { window: 64, issue_width: 4, load_ports: 2, alu_latency: 1 });
        // 8 overlapping 100-cycle misses: completion ≈ 100 + a few issue
        // cycles, not 800.
        for _ in 0..8 {
            c.issue_mem(|at| at + 100);
        }
        let t = c.finish();
        assert!(t < 120, "expected MLP, got {t}");
    }

    #[test]
    fn in_order_retirement_monotonicizes_completions() {
        let mut c = core();
        c.issue_mem(|at| at + 500);
        c.issue_mem(|at| at + 1); // finishes early but retires after head
        let t = c.finish();
        assert_eq!(t, 500);
    }

    #[test]
    fn retired_uops_counts_batches() {
        let mut c = core();
        c.issue_compute(5);
        c.issue_mem(|at| at + 1);
        assert_eq!(c.retired_uops(), 6);
    }

    #[test]
    #[should_panic(expected = "invalid CoreConfig")]
    fn zero_width_panics() {
        let _ = Core::new(CoreConfig { window: 1, issue_width: 0, load_ports: 1, alu_latency: 1 });
    }
}
