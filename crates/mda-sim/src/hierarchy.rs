// mda-lint: hot-path
//! The cache-hierarchy driver: wires cache levels, 2-D MSHRs, the baseline
//! prefetcher and the MDA main memory into one demand path.
//!
//! The driver owns the recursive miss handling: a demand access probes L1;
//! each miss allocates (or coalesces into) an MSHR, honours the 2-D
//! overlap-ordering constraint, requests the preferred-orientation line from
//! the level below, installs it on the way back up, and pushes policy- and
//! eviction-writebacks downward. Latency is accumulated along the critical
//! path (tag checks — including the extra sequential checks of Different-Set
//! 1P2L probes — MSHR stalls, bus/bank reservations, critical-word-first
//! memory access, and the on-chip-NVM write penalty of a 2P2L level).
//!
//! The same driver serves single-core and **multi-programmed** systems: the
//! levels live in one pool and each core owns a *path* (a sequence of pool
//! indices from its private L1 down to the shared LLC), so a shared level
//! naturally appears on several paths. Multi-programmed mode backs the
//! paper's Sec. IX-B discussion of parallel workloads.

use crate::core::Core;
use mda_cache::level::{Access, AccessWidth, Probe};
use mda_cache::mshr::MshrDecision;
use mda_cache::{CacheLevel, LevelKind, Mshr, StridePrefetcher, Writeback};
use mda_compiler::MemOp;
use mda_mem::{Cycle, LineKey, MainMemory, Orientation};

/// A cache hierarchy (one or more cores' paths over a pool of cache
/// levels) attached to an MDA main memory.
///
/// The level pool is a `Vec<LevelKind>` — every trait call on the demand
/// path statically dispatches — and fill/writeback/flush side effects land
/// in recycled scratch buffers, so a steady-state access performs no heap
/// allocation.
pub struct Hierarchy {
    levels: Vec<LevelKind>,
    mshrs: Vec<Mshr>,
    /// Per-core sequence of pool indices, L1 first. Shared levels (e.g. a
    /// common LLC) appear on several paths.
    paths: Vec<Vec<usize>>,
    prefetchers: Vec<Option<StridePrefetcher>>,
    mem: MainMemory,
    /// Recycled writeback scratch buffers: one per live recursion frame,
    /// returned (cleared, capacity kept) when the frame finishes.
    scratch: Vec<Vec<Writeback>>,
    /// One recycled [`Probe`] per recursion depth (frames at different
    /// positions never alias), so the per-access hot path re-zeroes nothing.
    probes: Vec<Probe>,
}

impl Hierarchy {
    /// Builds a single-core hierarchy from L1-to-LLC `levels`, an optional
    /// baseline prefetcher, and the main memory.
    ///
    /// # Panics
    /// Panics if no levels are supplied.
    pub fn new(
        levels: Vec<LevelKind>,
        prefetcher: Option<StridePrefetcher>,
        mem: MainMemory,
    ) -> Hierarchy {
        assert!(!levels.is_empty(), "hierarchy needs at least one cache level");
        // mda-lint: allow(hot-path-alloc): constructor wiring, runs once per hierarchy
        let mshrs = levels.iter().map(|l| Mshr::new(l.config().mshrs)).collect();
        // mda-lint: allow(hot-path-alloc): constructor wiring, runs once per hierarchy
        let path = (0..levels.len()).collect();
        let probes = vec![Probe::hit(); levels.len()];
        Hierarchy {
            levels,
            mshrs,
            paths: vec![path],
            prefetchers: vec![prefetcher],
            mem,
            // mda-lint: allow(hot-path-alloc): empty pool; demand-path buffers are recycled
            scratch: Vec::new(),
            probes,
        }
    }

    /// Builds a multi-programmed hierarchy: each core gets the private
    /// levels in `private_per_core[i]` (L1 first) and all cores share
    /// `shared_llc`. `prefetchers[i]` trains on core `i`'s L1 traffic.
    ///
    /// # Panics
    /// Panics if no cores are given or the prefetcher list length does not
    /// match the core count.
    pub fn multicore(
        private_per_core: Vec<Vec<LevelKind>>,
        shared_llc: LevelKind,
        prefetchers: Vec<Option<StridePrefetcher>>,
        mem: MainMemory,
    ) -> Hierarchy {
        assert!(!private_per_core.is_empty(), "need at least one core");
        assert_eq!(private_per_core.len(), prefetchers.len(), "one prefetcher slot per core");
        // mda-lint: allow(hot-path-alloc): constructor wiring, runs once per hierarchy
        let mut levels: Vec<LevelKind> = Vec::new();
        // mda-lint: allow(hot-path-alloc): constructor wiring, runs once per hierarchy
        let mut paths = Vec::new();
        for privates in private_per_core {
            let mut path = Vec::with_capacity(privates.len() + 1);
            for l in privates {
                path.push(levels.len());
                levels.push(l);
            }
            paths.push(path);
        }
        let llc_idx = levels.len();
        levels.push(shared_llc);
        for p in &mut paths {
            p.push(llc_idx);
        }
        // mda-lint: allow(hot-path-alloc): constructor wiring, runs once per hierarchy
        let mshrs = levels.iter().map(|l| Mshr::new(l.config().mshrs)).collect();
        let probes = vec![Probe::hit(); levels.len()];
        // mda-lint: allow(hot-path-alloc): empty pool; demand-path buffers are recycled
        Hierarchy { levels, mshrs, paths, prefetchers, mem, scratch: Vec::new(), probes }
    }

    /// Borrows a cleared writeback buffer from the recycled pool (or makes
    /// a fresh one on the first few uses — the pool quickly saturates at
    /// the maximum recursion depth and allocation stops).
    fn take_scratch(&mut self) -> Vec<Writeback> {
        self.scratch.pop().unwrap_or_default()
    }

    /// Returns a scratch buffer to the pool, keeping its capacity.
    fn put_scratch(&mut self, mut buf: Vec<Writeback>) {
        buf.clear();
        self.scratch.push(buf);
    }

    /// Number of cores (paths).
    pub fn num_cores(&self) -> usize {
        self.paths.len()
    }

    /// The level pool. For a single-core hierarchy this is the path from L1
    /// to the LLC; for a multi-programmed one it is every private level in
    /// core order followed by the shared LLC (last entry).
    pub fn levels(&self) -> &[LevelKind] {
        &self.levels
    }

    /// The pool indices of `core`'s path, L1 first.
    pub fn path_of(&self, core: usize) -> &[usize] {
        &self.paths[core]
    }

    /// The main memory.
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Decomposes a single-core hierarchy back into its level pool (used
    /// by the multi-programmed builder to reuse the per-design level
    /// construction).
    pub fn into_levels(self) -> Vec<LevelKind> {
        self.levels
    }

    /// Converts a compiler [`MemOp`] into a cache [`Access`].
    fn to_access(op: &MemOp) -> Access {
        Access {
            word: op.word,
            orient: op.orient,
            width: if op.vector { AccessWidth::Vector } else { AccessWidth::Scalar },
            is_write: op.write,
            stream: op.stream,
        }
    }

    /// Runs one demand operation from core 0 at `now` (single-core API).
    pub fn demand(&mut self, op: &MemOp, now: Cycle) -> Cycle {
        self.demand_from(0, op, now)
    }

    /// Runs one demand operation issued by `core` at `now`; returns its
    /// completion cycle.
    pub fn demand_from(&mut self, core: usize, op: &MemOp, now: Cycle) -> Cycle {
        let acc = Self::to_access(op);
        let done = self.access_at(core, 0, &acc, now);

        // The baseline prefetcher trains on L1 demand traffic (row-line
        // granular) and fetches ahead without blocking the demand path.
        if let Some(pf) = self.prefetchers[core].as_mut() {
            let line_addr = LineKey::containing(acc.word, Orientation::Row).base_addr();
            let targets = pf.observe(acc.stream, line_addr);
            for t in targets {
                self.prefetch(
                    core,
                    LineKey::containing(mda_mem::WordAddr(t), Orientation::Row),
                    now,
                );
            }
        }
        done
    }

    /// Demand (or internal fill) access at position `pos` of `core`'s path;
    /// returns the completion cycle.
    fn access_at(&mut self, core: usize, pos: usize, acc: &Access, now: Cycle) -> Cycle {
        let level = self.paths[core][pos];
        // Only these three scalars of the configuration matter here; pulling
        // them out keeps the recursion frame small.
        let (tag_latency, data_latency, write_penalty, hit_latency) = {
            let cfg = self.levels[level].config();
            (cfg.tag_latency, cfg.data_latency, cfg.write_penalty, cfg.hit_latency())
        };
        // The probe result lands in a per-depth recycled buffer; all
        // recursion from this frame goes to `pos + 1`, so the slot is stable
        // for the whole frame and small pieces are copied out as needed.
        {
            let (levels, probes) = (&mut self.levels, &mut self.probes);
            levels[level].probe_into(acc, &mut probes[pos]);
        }
        let hit = self.probes[pos].hit;
        let extra_tag_accesses = self.probes[pos].extra_tag_accesses;

        // Tag/data pipeline of this level plus any extra sequential tag
        // checks (paper Sec. VI-A), plus the NVM write penalty on write
        // hits to a physically 2-D level.
        let mut latency = hit_latency + u64::from(extra_tag_accesses) * tag_latency;
        if hit && acc.is_write {
            latency += write_penalty;
        }

        // Policy-forced writebacks (duplicate handling) go downward.
        for i in 0..self.probes[pos].writebacks.len() {
            let wb = self.probes[pos].writebacks[i];
            self.writeback(core, pos + 1, &wb, now);
        }

        if hit {
            // A hit on a line whose fill is still outstanding inherits the
            // fill's completion time (secondary-miss coalescing).
            let mut done = now + latency;
            let preferred = acc.preferred_line();
            let mut pending = self.mshrs[level].pending_completion(&preferred, now);
            if pending.is_none() && acc.width == AccessWidth::Scalar {
                let other = preferred.intersecting_at(acc.word);
                pending = self.mshrs[level].pending_completion(&other, now);
            }
            if let Some(completes) = pending {
                if completes > done {
                    done = completes;
                    self.levels[level].stats_mut().mshr_coalesced += 1;
                }
            }
            return done;
        }

        // Miss: MSHR allocation / coalescing / ordering.
        let is_write = acc.is_write;
        let demand_line = self.probes[pos].fills[0];
        let after_tags = now + latency;
        let (issue_at, stalled) = match self.mshrs[level].on_miss(demand_line, is_write, after_tags)
        {
            MshrDecision::Coalesced { completes } => {
                self.levels[level].stats_mut().mshr_coalesced += 1;
                // The line was evicted while its fill entry is still in
                // flight; re-install it from the in-flight data (no new
                // transfer) and apply the write's dirty words.
                let dirty = if is_write { Self::written_mask(acc, &demand_line) } else { 0 };
                let mut wbs = self.take_scratch();
                self.levels[level].fill(demand_line, dirty, &mut wbs);
                for wb in &wbs {
                    self.writeback(core, pos + 1, wb, now);
                }
                self.put_scratch(wbs);
                return completes.max(after_tags) + data_latency;
            }
            MshrDecision::Allocated { issue_at, ready_at } => (issue_at, ready_at > after_tags),
        };
        if stalled {
            self.levels[level].stats_mut().mshr_stalls += 1;
        }

        // Fetch the demand line from below (critical), then any dense-fill
        // companions (they consume bandwidth but are off the critical path).
        let below_done = self.fetch_from_below(core, pos, demand_line, issue_at);
        let mut wbs = self.take_scratch();
        let num_fills = self.probes[pos].fills.len();
        for i in 1..num_fills {
            let extra = self.probes[pos].fills[i];
            self.fetch_from_below(core, pos, extra, below_done);
            self.levels[level].fill(extra, 0, &mut wbs);
            for wb in &wbs {
                self.writeback(core, pos + 1, wb, below_done);
            }
            wbs.clear();
        }

        // Install the demand line; a write-allocate pre-dirties the written
        // words.
        let dirty = if is_write { Self::written_mask(acc, &demand_line) } else { 0 };
        self.levels[level].fill(demand_line, dirty, &mut wbs);
        for wb in &wbs {
            self.writeback(core, pos + 1, wb, below_done);
        }
        self.put_scratch(wbs);
        self.levels[level].stats_mut().bytes_from_below += mda_mem::LINE_BYTES;

        let mut done = below_done + data_latency;
        if write_penalty > 0 {
            // Filling a physically 2-D array is a write into NVM.
            done += write_penalty;
        }
        self.mshrs[level].complete(demand_line, is_write, done);
        done
    }

    /// Which words of `line` the (write) access modifies.
    fn written_mask(acc: &Access, line: &LineKey) -> u8 {
        match acc.width {
            AccessWidth::Vector => 0xFF,
            AccessWidth::Scalar => line.offset_of(acc.word).map(|off| 1u8 << off).unwrap_or(0),
        }
    }

    /// Requests `line` from the level below position `pos` on `core`'s path
    /// (or memory), returning the completion cycle of the critical word.
    fn fetch_from_below(&mut self, core: usize, pos: usize, line: LineKey, now: Cycle) -> Cycle {
        if pos + 1 == self.paths[core].len() {
            let completion = self.mem.read(line, now);
            completion.done
        } else {
            // A line-granular fill request is a vector read at the lower
            // level.
            let acc = Access::vector_read(line, u32::MAX);
            self.access_at(core, pos + 1, &acc, now)
        }
    }

    /// Sends a dirty line from position `pos - 1` down into position `pos`
    /// of `core`'s path (or memory).
    fn writeback(&mut self, core: usize, pos: usize, wb: &Writeback, now: Cycle) {
        if pos == self.paths[core].len() {
            self.mem.write(wb.line, wb.words(), now);
            return;
        }
        let level = self.paths[core][pos];
        let upper = self.paths[core][pos - 1];
        self.levels[upper].stats_mut().bytes_to_below +=
            u64::from(wb.words()) * mda_mem::WORD_BYTES;
        let mut cascades = self.take_scratch();
        if !self.levels[level].absorb_writeback(wb, &mut cascades) {
            // Write-allocate the victim: install it (sparsely for a 2P2L
            // level) and cascade any evictions further down.
            self.levels[level].fill(wb.line, wb.dirty, &mut cascades);
        }
        for c in &cascades {
            self.writeback(core, pos + 1, c, now);
        }
        self.put_scratch(cascades);
    }

    /// Issues a non-blocking prefetch of `line` into `core`'s L1 (and the
    /// levels below, on its way up).
    fn prefetch(&mut self, core: usize, line: LineKey, now: Cycle) {
        let l1 = self.paths[core][0];
        if self.levels[l1].contains_line(&line) {
            return;
        }
        match self.mshrs[l1].on_miss(line, false, now) {
            MshrDecision::Coalesced { .. } => {}
            MshrDecision::Allocated { issue_at, .. } => {
                let done = self.fetch_from_below(core, 0, line, issue_at);
                let mut wbs = self.take_scratch();
                self.levels[l1].fill(line, 0, &mut wbs);
                for wb in &wbs {
                    self.writeback(core, 1, wb, done);
                }
                self.put_scratch(wbs);
                self.levels[l1].stats_mut().prefetch_fills += 1;
                self.levels[l1].stats_mut().bytes_from_below += mda_mem::LINE_BYTES;
                self.mshrs[l1].complete(line, false, done);
            }
        }
    }

    /// Flushes every level, pushing dirty data to memory (used between
    /// benchmark phases in tests). Shared levels are flushed once, after
    /// every private level above them.
    pub fn flush_all(&mut self, now: Cycle) {
        // Flush by path position (all L1s, then all L2s, …) so a shared
        // level is only drained after every private level above it.
        let max_depth = self.paths.iter().map(Vec::len).max().unwrap_or(0);
        let mut flushed = vec![false; self.levels.len()];
        for pos in 0..max_depth {
            for core in 0..self.paths.len() {
                let Some(&level) = self.paths[core].get(pos) else { continue };
                if flushed[level] {
                    continue;
                }
                flushed[level] = true;
                let mut wbs = self.take_scratch();
                self.levels[level].flush(&mut wbs);
                for wb in &wbs {
                    self.writeback(core, pos + 1, wb, now);
                }
                self.put_scratch(wbs);
            }
        }
    }

    /// Drives `core` (core 0) with one trace operation.
    pub fn step(&mut self, core: &mut Core, op: &mda_compiler::TraceOp) {
        self.step_core(0, core, op);
    }

    /// Drives core `idx` with one trace operation.
    pub fn step_core(&mut self, idx: usize, core: &mut Core, op: &mda_compiler::TraceOp) {
        match op {
            mda_compiler::TraceOp::Compute(n) => core.issue_compute(*n),
            mda_compiler::TraceOp::Mem(m) => {
                let mut done = 0;
                core.issue_mem(|at| {
                    done = self.demand_from(idx, m, at);
                    done
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_cache::level::CacheLevelExt;
    use mda_cache::{Cache1P1L, Cache1P2L, Cache2P2L, CacheConfig, SetMapping};
    use mda_mem::{MemConfig, WordAddr};

    fn small(cfg_bytes: u64) -> CacheConfig {
        let mut c = CacheConfig::l1_32k();
        c.size_bytes = cfg_bytes;
        c
    }

    fn two_level_1p2l() -> Hierarchy {
        let l1 = Cache1P2L::new(small(4096), SetMapping::DifferentSet);
        let mut l2cfg = CacheConfig::l2_256k();
        l2cfg.size_bytes = 16 * 1024;
        let l2 = Cache1P2L::new(l2cfg, SetMapping::DifferentSet);
        Hierarchy::new(vec![l1.into(), l2.into()], None, MainMemory::new(MemConfig::paper()))
    }

    fn op(word: WordAddr, orient: Orientation, vector: bool, write: bool) -> MemOp {
        MemOp { word, orient, vector, write, stream: 0 }
    }

    #[test]
    fn miss_then_hit_is_faster() {
        let mut h = two_level_1p2l();
        let o = op(WordAddr::from_tile_coords(0, 0, 0), Orientation::Row, false, false);
        let t_miss = h.demand(&o, 0);
        let t0 = t_miss + 100;
        let t_hit = h.demand(&o, t0) - t0;
        assert!(t_hit < t_miss, "hit {t_hit} should beat cold miss {t_miss}");
        assert_eq!(h.levels()[0].stats().hits, 1);
        assert_eq!(h.levels()[0].stats().misses, 1);
    }

    #[test]
    fn fill_installs_in_all_levels() {
        let mut h = two_level_1p2l();
        let line = LineKey::new(3, Orientation::Col, 2);
        let o = op(line.word_at(0), Orientation::Col, true, false);
        h.demand(&o, 0);
        assert!(h.levels()[0].contains_line(&line));
        assert!(h.levels()[1].contains_line(&line));
        assert_eq!(h.memory().stats().col_reads, 1);
    }

    #[test]
    fn column_vector_miss_reads_memory_in_column_mode() {
        let mut h = two_level_1p2l();
        let line = LineKey::new(7, Orientation::Col, 5);
        let o =
            MemOp { word: line.word_at(0), orient: Orientation::Col, vector: true, write: false, stream: 1 };
        h.demand(&o, 0);
        assert_eq!(h.memory().stats().col_reads, 1);
        assert_eq!(h.memory().stats().row_reads, 0);
    }

    #[test]
    fn dirty_eviction_reaches_memory() {
        let mut h = two_level_1p2l();
        let line = LineKey::new(0, Orientation::Row, 0);
        let w = op(line.word_at(0), Orientation::Row, false, true);
        h.demand(&w, 0);
        h.flush_all(10_000);
        assert_eq!(h.memory().stats().writes, 1);
        // Per-word dirty bits: only the written word travels.
        assert_eq!(h.memory().stats().bytes_written, 8);
    }

    #[test]
    fn coalesced_misses_do_not_duplicate_memory_reads() {
        let mut h = two_level_1p2l();
        let line = LineKey::new(2, Orientation::Row, 1);
        // Two scalar reads of different words in the same line, issued
        // back-to-back (the second lands while the first is outstanding).
        let o1 = op(line.word_at(0), Orientation::Row, false, false);
        let o2 = op(line.word_at(3), Orientation::Row, false, false);
        let d1 = h.demand(&o1, 0);
        let _d2 = h.demand(&o2, 1);
        assert!(d1 > 1);
        assert_eq!(h.memory().stats().reads, 1, "second miss coalesced in the MSHR");
        assert_eq!(h.levels()[0].stats().mshr_coalesced, 1);
    }

    #[test]
    fn prefetcher_reduces_demand_miss_latency() {
        // Baseline 1P1L with prefetching: a unit-stride walk should see
        // later lines arrive before the demand.
        let l1 = Cache1P1L::new(small(4096));
        let mut l2cfg = CacheConfig::l2_256k();
        l2cfg.size_bytes = 16 * 1024;
        let l2 = Cache1P1L::new(l2cfg);
        let mut h = Hierarchy::new(
            vec![l1.into(), l2.into()],
            Some(StridePrefetcher::new(4)),
            MainMemory::new(MemConfig::paper()),
        );
        let mut now = 0;
        for i in 0..16u64 {
            let word = WordAddr(i * 64);
            let o = MemOp { word, orient: Orientation::Row, vector: true, write: false, stream: 9 };
            now = h.demand(&o, now) + 1;
        }
        assert!(h.levels()[0].stats().prefetch_fills > 0);
        let s = h.levels()[0].stats();
        assert!(s.hits > 0, "prefetched lines turn later demands into hits");
    }

    #[test]
    fn writeback_to_absent_2p2l_block_allocates_sparsely() {
        // L1 = 1P2L, LLC = 2P2L. Evicting a dirty line whose block is not
        // in the LLC must allocate the block sparsely (paper Sec. IV-C,
        // Design 2 discussion).
        let l1 = Cache1P2L::new(small(4096), SetMapping::DifferentSet);
        let mut llc_cfg = CacheConfig::l3(16 * 1024);
        llc_cfg.assoc = 8;
        let llc = Cache2P2L::new(llc_cfg);
        let mut h =
            Hierarchy::new(vec![l1.into(), llc.into()], None, MainMemory::new(MemConfig::paper()));
        let line = LineKey::new(0, Orientation::Col, 3);
        let w = op(line.word_at(0), Orientation::Col, true, true);
        h.demand(&MemOp { vector: true, ..w }, 0);
        // Flush only L1 so its dirty line lands in the LLC.
        let wbs = h.levels[0].flush_collect();
        for wb in wbs {
            h.writeback(0, 1, &wb, 1_000_000);
        }
        assert!(h.levels()[1].contains_line(&line), "LLC allocated the block sparsely");
    }

    #[test]
    fn step_drives_core_and_hierarchy() {
        let mut h = two_level_1p2l();
        let mut core = Core::new(crate::core::CoreConfig::paper());
        let line = LineKey::new(0, Orientation::Row, 0);
        h.step(&mut core, &mda_compiler::TraceOp::Compute(4));
        h.step(
            &mut core,
            &mda_compiler::TraceOp::Mem(op(line.word_at(0), Orientation::Row, false, false)),
        );
        let t = core.finish();
        assert!(t > 0);
        assert_eq!(h.levels()[0].stats().accesses, 1);
    }

    fn two_core_shared_llc() -> Hierarchy {
        let privates: Vec<Vec<LevelKind>> = (0..2)
            .map(|_| vec![Cache1P2L::new(small(4096), SetMapping::DifferentSet).into()])
            .collect();
        let mut llc_cfg = CacheConfig::l3(16 * 1024);
        llc_cfg.assoc = 8;
        let llc = Cache1P2L::new(llc_cfg, SetMapping::DifferentSet);
        Hierarchy::multicore(
            privates,
            llc.into(),
            vec![None, None],
            MainMemory::new(MemConfig::paper()),
        )
    }

    #[test]
    fn multicore_paths_share_the_llc() {
        let mut h = two_core_shared_llc();
        assert_eq!(h.num_cores(), 2);
        assert_eq!(h.path_of(0), &[0, 2]);
        assert_eq!(h.path_of(1), &[1, 2]);

        // Core 0 fetches a line; core 1 then hits it in the shared LLC
        // without a second memory read.
        let line = LineKey::new(5, Orientation::Row, 1);
        let o = op(line.word_at(0), Orientation::Row, true, false);
        h.demand_from(0, &o, 0);
        assert_eq!(h.memory().stats().reads, 1);
        h.demand_from(1, &o, 10_000);
        assert_eq!(h.memory().stats().reads, 1, "shared LLC served core 1");
        assert!(h.levels()[1].contains_line(&line), "core 1's private L1 filled");
        assert_eq!(h.levels()[2].stats().accesses, 2, "both cores reached the LLC");
    }

    #[test]
    fn multicore_private_levels_are_isolated() {
        let mut h = two_core_shared_llc();
        let line = LineKey::new(9, Orientation::Col, 4);
        let o = op(line.word_at(0), Orientation::Col, true, false);
        h.demand_from(0, &o, 0);
        assert!(h.levels()[0].contains_line(&line), "core 0's L1 has it");
        assert!(!h.levels()[1].contains_line(&line), "core 1's L1 does not");
    }

    #[test]
    fn multicore_flush_drains_every_level_once() {
        let mut h = two_core_shared_llc();
        for core in 0..2u64 {
            let line = LineKey::new(100 + core, Orientation::Row, 0);
            let w = op(line.word_at(0), Orientation::Row, true, true);
            h.demand_from(core as usize, &w, 0);
        }
        h.flush_all(1_000_000);
        assert_eq!(h.memory().stats().writes, 2, "both cores' dirty lines reached memory");
        for level in h.levels() {
            assert_eq!(level.occupancy().0 + level.occupancy().1, 0);
        }
    }
}
