//! System configuration presets: the paper's Table I machine and scaled
//! variants for fast regeneration of every figure.

use crate::core::CoreConfig;
use crate::hierarchy::Hierarchy;
use mda_cache::{
    Cache1P1L, Cache1P2L, Cache2P1L, Cache2P2L, CacheConfig, LevelKind, SetMapping,
    StridePrefetcher,
};
use mda_compiler::CodegenOptions;
use mda_mem::{ConfigError, FaultConfig, MainMemory, MemConfig};

/// The cache-hierarchy design points evaluated in the paper (Sec. IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HierarchyKind {
    /// Design 0: 1P1L everywhere, with stride prefetching (the baseline).
    Baseline1P1L,
    /// Design 1: 1P2L everywhere, Different-Set index mapping.
    P1L2DifferentSet,
    /// Design 1 variant: 1P2L everywhere, Same-Set index mapping.
    P1L2SameSet,
    /// Design 2: 1P2L L1/L2 with a sparse 2P2L LLC.
    P2L2Sparse,
    /// Design 2 ablation: dense-fill 2P2L LLC.
    P2L2Dense,
    /// Taxonomy-completion ablation (elided in the paper): 1P1L L1/L2 with
    /// a physically 2-D but logically 1-D (row-only) NVM LLC.
    P2L1,
}

impl HierarchyKind {
    /// All design points in plotting order.
    pub fn all() -> [HierarchyKind; 6] {
        [
            HierarchyKind::Baseline1P1L,
            HierarchyKind::P1L2DifferentSet,
            HierarchyKind::P1L2SameSet,
            HierarchyKind::P2L2Sparse,
            HierarchyKind::P2L2Dense,
            HierarchyKind::P2L1,
        ]
    }

    /// The paper's label for the design.
    pub fn name(&self) -> &'static str {
        match self {
            HierarchyKind::Baseline1P1L => "1P1L",
            HierarchyKind::P1L2DifferentSet => "1P2L",
            HierarchyKind::P1L2SameSet => "1P2L_SameSet",
            HierarchyKind::P2L2Sparse => "2P2L",
            HierarchyKind::P2L2Dense => "2P2L_Dense",
            HierarchyKind::P2L1 => "2P1L",
        }
    }

    /// Whether this design runs the MDA code generator (2-D layout, dual
    /// vectorization) or the conventional one. Mirrors the paper's rule:
    /// every experiment pairs each hierarchy with the memory layout
    /// optimized for its logical dimensionality.
    pub fn codegen(&self) -> CodegenOptions {
        match self {
            // Logically 1-D hierarchies pair with the 1-D-optimized layout
            // and row-only vectorization.
            HierarchyKind::Baseline1P1L | HierarchyKind::P2L1 => CodegenOptions::baseline(),
            _ => CodegenOptions::mda(),
        }
    }
}

impl std::fmt::Display for HierarchyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A complete simulated-system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Cache design point.
    pub kind: HierarchyKind,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L2 cache.
    pub l2: CacheConfig,
    /// L3 cache (None for two-level systems; then the L2 is the LLC).
    pub l3: Option<CacheConfig>,
    /// Main-memory organization and timing.
    pub mem: MemConfig,
    /// Core model.
    pub core: CoreConfig,
    /// Code-generation options fed to the compiler.
    pub codegen: CodegenOptions,
    /// Stride-prefetch degree for the baseline (ignored by MDA designs,
    /// which the paper evaluates without prefetching).
    pub prefetch_degree: usize,
    /// Extra write cycles of the on-chip NVM LLC (2P2L designs only;
    /// 20 in the paper's Fig. 16 asymmetry study).
    pub llc_write_penalty: u64,
    /// Sample cache occupancy every N memory ops (0 disables, Fig. 15).
    pub occupancy_every: u64,
    /// Matrix dimension the preset was scaled for (advisory, used by the
    /// bench harness).
    pub default_input: u64,
}

impl SystemConfig {
    /// Paper Table I with a 1 MB L3: 32 KB L1 / 256 KB L2 / `llc` L3.
    pub fn paper(kind: HierarchyKind) -> SystemConfig {
        SystemConfig::paper_with_llc(kind, 1024 * 1024)
    }

    /// Paper Table I with an explicit L3 capacity (1/1.5/2/4 MB in
    /// Fig. 12).
    pub fn paper_with_llc(kind: HierarchyKind, llc_bytes: u64) -> SystemConfig {
        SystemConfig {
            kind,
            l1: CacheConfig::l1_32k(),
            l2: CacheConfig::l2_256k(),
            l3: Some(CacheConfig::l3(llc_bytes)),
            mem: MemConfig::paper(),
            core: CoreConfig::paper(),
            codegen: kind.codegen(),
            prefetch_degree: 4,
            llc_write_penalty: 0,
            occupancy_every: 0,
            default_input: 512,
        }
    }

    /// The paper's cache-resident study (Fig. 13): two levels, 2 MB L2 as
    /// the LLC, 256×256 inputs.
    pub fn paper_cache_resident(kind: HierarchyKind) -> SystemConfig {
        let mut l2 = CacheConfig::l2_256k();
        l2.size_bytes = 2 * 1024 * 1024;
        SystemConfig {
            l2,
            l3: None,
            default_input: 256,
            ..SystemConfig::paper(kind)
        }
    }

    /// A 4×-scaled system: 256×256 inputs against a 16 KB / 64 KB / 256 KB
    /// hierarchy. Working-set-to-capacity ratios match the paper's
    /// non-resident configuration, so every figure regenerates in seconds.
    pub fn scaled(kind: HierarchyKind) -> SystemConfig {
        SystemConfig::scaled_with_llc(kind, 256 * 1024)
    }

    /// The scaled system with an explicit LLC capacity (the Fig. 12 sweep
    /// becomes 256 KB / 384 KB / 512 KB / 1 MB).
    pub fn scaled_with_llc(kind: HierarchyKind, llc_bytes: u64) -> SystemConfig {
        let mut l1 = CacheConfig::l1_32k();
        l1.size_bytes = 16 * 1024;
        let mut l2 = CacheConfig::l2_256k();
        l2.size_bytes = 64 * 1024;
        SystemConfig {
            l1,
            l2,
            l3: Some(CacheConfig::l3(llc_bytes)),
            default_input: 256,
            ..SystemConfig::paper(kind)
        }
    }

    /// A minimal system for unit tests and Criterion benches: 64×64 inputs
    /// against 4 KB / 8 KB / 16 KB caches (the paper's working-set ratio at
    /// 64× reduction).
    pub fn tiny(kind: HierarchyKind) -> SystemConfig {
        let mut l1 = CacheConfig::l1_32k();
        l1.size_bytes = 4 * 1024;
        let mut l2 = CacheConfig::l2_256k();
        l2.size_bytes = 8 * 1024;
        let mut l3 = CacheConfig::l3(16 * 1024);
        l3.mshrs = 32;
        SystemConfig {
            l1,
            l2,
            l3: Some(l3),
            default_input: 64,
            ..SystemConfig::paper(kind)
        }
    }

    /// Switches to the 1.6× faster main memory of Fig. 17.
    pub fn with_fast_memory(mut self) -> SystemConfig {
        self.mem = MemConfig { timing: self.mem.timing.scaled(1.6), ..self.mem };
        self
    }

    /// Applies the Fig. 16 on-chip NVM write asymmetry to the LLC.
    pub fn with_llc_write_penalty(mut self, cycles: u64) -> SystemConfig {
        self.llc_write_penalty = cycles;
        self
    }

    /// Enables Fig. 15 occupancy sampling.
    pub fn with_occupancy_sampling(mut self, every_ops: u64) -> SystemConfig {
        self.occupancy_every = every_ops;
        self
    }

    /// Attaches a main-memory fault model (reliability experiments).
    pub fn with_faults(mut self, faults: FaultConfig) -> SystemConfig {
        self.mem.faults = faults;
        self
    }

    /// Validates every cache level and the memory organization.
    ///
    /// # Errors
    /// Propagates the first [`ConfigError`] found, walking L1 → L2 → L3 →
    /// memory.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.l1.validate()?;
        self.l2.validate()?;
        if let Some(l3) = &self.l3 {
            l3.validate()?;
        }
        self.mem.validate()
    }

    /// Number of cache levels.
    pub fn num_levels(&self) -> usize {
        2 + usize::from(self.l3.is_some())
    }

    /// Builds the hierarchy this configuration describes.
    ///
    /// # Panics
    /// Panics if [`SystemConfig::validate`] rejects the configuration;
    /// validate explicitly first to handle the error gracefully.
    pub fn build_hierarchy(&self) -> Hierarchy {
        if let Err(e) = self.validate() {
            // mda-lint: allow(lib-unwrap): documented `# Panics` contract rejecting invalid configs
            panic!("invalid SystemConfig: {e}");
        }
        let mut non_llc = vec![self.l1, self.l2];
        let llc_cfg = match self.l3 {
            Some(l3) => l3,
            // mda-lint: allow(lib-unwrap): structural invariant; validate() requires at least two levels
            None => non_llc.pop().expect("two-level system keeps L1"),
        };

        let mut levels: Vec<LevelKind> = Vec::new();
        let mapping = match self.kind {
            HierarchyKind::P1L2SameSet => SetMapping::SameSet,
            _ => SetMapping::DifferentSet,
        };
        for cfg in &non_llc {
            levels.push(match self.kind {
                HierarchyKind::Baseline1P1L | HierarchyKind::P2L1 => {
                    Cache1P1L::new(*cfg).into()
                }
                _ => Cache1P2L::new(*cfg, mapping).into(),
            });
        }
        let mut llc_cfg = llc_cfg;
        llc_cfg.write_penalty = self.llc_write_penalty;
        levels.push(match self.kind {
            HierarchyKind::Baseline1P1L => Cache1P1L::new(llc_cfg).into(),
            HierarchyKind::P1L2DifferentSet | HierarchyKind::P1L2SameSet => {
                Cache1P2L::new(llc_cfg, mapping).into()
            }
            HierarchyKind::P2L2Sparse => Cache2P2L::new(llc_cfg).into(),
            HierarchyKind::P2L2Dense => Cache2P2L::with_fill_policy(llc_cfg, false).into(),
            HierarchyKind::P2L1 => Cache2P1L::new(llc_cfg).into(),
        });

        let prefetcher = match self.kind {
            // Logically 1-D hierarchies keep the baseline's prefetcher so
            // the 2P1L ablation isolates the physical-array change.
            HierarchyKind::Baseline1P1L | HierarchyKind::P2L1 => {
                Some(StridePrefetcher::new(self.prefetch_degree))
            }
            _ => None,
        };
        Hierarchy::new(levels, prefetcher, MainMemory::new(self.mem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_cache::CacheLevel;

    #[test]
    fn presets_build_for_every_kind() {
        for kind in HierarchyKind::all() {
            for cfg in [
                SystemConfig::paper(kind),
                SystemConfig::paper_cache_resident(kind),
                SystemConfig::scaled(kind),
                SystemConfig::tiny(kind),
            ] {
                let h = cfg.build_hierarchy();
                assert_eq!(h.levels().len(), cfg.num_levels());
            }
        }
    }

    #[test]
    fn baseline_uses_conventional_codegen() {
        let cfg = SystemConfig::paper(HierarchyKind::Baseline1P1L);
        assert!(!cfg.codegen.vectorize_cols);
        let cfg = SystemConfig::paper(HierarchyKind::P1L2DifferentSet);
        assert!(cfg.codegen.vectorize_cols);
    }

    #[test]
    fn cache_resident_preset_is_two_level() {
        let cfg = SystemConfig::paper_cache_resident(HierarchyKind::P2L2Sparse);
        assert_eq!(cfg.num_levels(), 2);
        assert_eq!(cfg.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.default_input, 256);
        let h = cfg.build_hierarchy();
        assert_eq!(h.levels().len(), 2);
    }

    #[test]
    fn fast_memory_scales_timing() {
        let base = SystemConfig::paper(HierarchyKind::Baseline1P1L);
        let fast = base.clone().with_fast_memory();
        assert!(fast.mem.timing.t_rcd < base.mem.timing.t_rcd);
    }

    #[test]
    fn write_penalty_reaches_the_llc_config() {
        let cfg = SystemConfig::paper(HierarchyKind::P2L2Sparse).with_llc_write_penalty(20);
        let h = cfg.build_hierarchy();
        assert_eq!(h.levels().last().expect("llc").config().write_penalty, 20);
    }

    #[test]
    fn every_preset_validates() {
        for kind in HierarchyKind::all() {
            for llc in [1024 * 1024, 1536 * 1024, 2 * 1024 * 1024, 4 * 1024 * 1024] {
                assert_eq!(SystemConfig::paper_with_llc(kind, llc).validate(), Ok(()));
            }
            assert_eq!(SystemConfig::paper_cache_resident(kind).validate(), Ok(()));
            assert_eq!(SystemConfig::scaled(kind).validate(), Ok(()));
            assert_eq!(SystemConfig::tiny(kind).validate(), Ok(()));
        }
    }

    #[test]
    fn validate_rejects_broken_levels_and_memory() {
        let mut cfg = SystemConfig::tiny(HierarchyKind::Baseline1P1L);
        cfg.l1.assoc = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::Zero { field: "assoc" }));
        let mut cfg = SystemConfig::tiny(HierarchyKind::Baseline1P1L);
        cfg.mem.channels = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::Zero { field: "channels" }));
    }

    #[test]
    #[should_panic(expected = "invalid SystemConfig")]
    fn build_hierarchy_rejects_invalid_config() {
        let mut cfg = SystemConfig::tiny(HierarchyKind::Baseline1P1L);
        cfg.l2.mshrs = 0;
        let _ = cfg.build_hierarchy();
    }

    #[test]
    fn with_faults_reaches_the_memory_config() {
        let fc = FaultConfig::uniform(7, 1e-4, 0.0, 0.0);
        let cfg = SystemConfig::tiny(HierarchyKind::P2L2Sparse).with_faults(fc);
        assert_eq!(cfg.mem.faults, fc);
        assert_eq!(cfg.validate(), Ok(()));
    }
}
