//! Cache-occupancy timelines (paper Fig. 15: column-line occupancy over
//! time for each cache level).

use mda_mem::Cycle;

/// One occupancy sample.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancySample {
    /// Cycle at which the sample was taken.
    pub cycle: Cycle,
    /// Per level (L1 first): fraction of the level's line capacity holding
    /// column-oriented lines, in `[0, 1]`.
    pub col_occupancy: Vec<f64>,
}

/// A sampled occupancy timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OccupancyTimeline {
    samples: Vec<OccupancySample>,
}

impl OccupancyTimeline {
    /// Creates an empty timeline.
    pub fn new() -> OccupancyTimeline {
        OccupancyTimeline::default()
    }

    /// Records a sample from `(rows, cols, capacity)` triples (the
    /// [`mda_cache::CacheLevel::occupancy`] output per level).
    pub fn record(&mut self, cycle: Cycle, levels: &[(usize, usize, usize)]) {
        let col_occupancy = levels
            .iter()
            .map(|&(_, cols, capacity)| {
                if capacity == 0 {
                    0.0
                } else {
                    cols as f64 / capacity as f64
                }
            })
            .collect();
        self.samples.push(OccupancySample { cycle, col_occupancy });
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[OccupancySample] {
        &self.samples
    }

    /// Whether any sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Peak column occupancy of `level` across the run.
    pub fn peak(&self, level: usize) -> f64 {
        self.samples
            .iter()
            .filter_map(|s| s.col_occupancy.get(level))
            .fold(0.0, |a, &b| a.max(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_computes_fractions() {
        let mut t = OccupancyTimeline::new();
        t.record(100, &[(10, 10, 40), (0, 0, 0)]);
        t.record(200, &[(0, 40, 40), (5, 20, 100)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.samples()[0].col_occupancy, vec![0.25, 0.0]);
        assert_eq!(t.samples()[1].col_occupancy, vec![1.0, 0.2]);
        assert_eq!(t.peak(0), 1.0);
        assert_eq!(t.peak(1), 0.2);
        assert_eq!(t.peak(7), 0.0, "missing level reads as zero");
    }

    #[test]
    fn empty_timeline_behaves() {
        let t = OccupancyTimeline::new();
        assert!(t.is_empty());
        assert_eq!(t.peak(0), 0.0);
    }
}
