//! Simulation reports: everything the paper's figures are plotted from.

use crate::occupancy::OccupancyTimeline;
use mda_cache::CacheStats;
use mda_compiler::trace::OpCounts;
use mda_mem::{Cycle, MemStats};

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Workload name.
    pub workload: String,
    /// Design-point label (e.g. `1P2L`).
    pub design: String,
    /// Total execution cycles.
    pub cycles: Cycle,
    /// Per-cache-level statistics, L1 first.
    pub levels: Vec<CacheStats>,
    /// Main-memory statistics.
    pub mem: MemStats,
    /// Trace operation counts.
    pub ops: OpCounts,
    /// Column-occupancy timeline (empty unless sampling was enabled).
    pub occupancy: OccupancyTimeline,
}

impl SimReport {
    /// L1 demand hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        self.levels.first().map(CacheStats::hit_rate).unwrap_or(0.0)
    }

    /// Statistics of the last-level cache.
    pub fn llc(&self) -> &CacheStats {
        // mda-lint: allow(lib-unwrap): structural invariant; a hierarchy always has at least one level
        self.levels.last().expect("at least one level")
    }

    /// Demand accesses arriving at the LLC (the paper's "L3 accesses").
    pub fn llc_accesses(&self) -> u64 {
        self.llc().accesses
    }

    /// Bytes exchanged between the LLC and main memory (the paper's
    /// "L3-memory transfer").
    pub fn llc_memory_bytes(&self) -> u64 {
        self.mem.total_bytes()
    }

    /// `self.cycles / baseline.cycles` — the paper's normalized total
    /// cycles.
    pub fn normalized_cycles(&self, baseline: &SimReport) -> f64 {
        ratio(self.cycles, baseline.cycles)
    }

    /// Normalized L1 hit rate against a baseline run.
    pub fn normalized_l1_hit_rate(&self, baseline: &SimReport) -> f64 {
        let b = baseline.l1_hit_rate();
        if b == 0.0 {
            0.0
        } else {
            self.l1_hit_rate() / b
        }
    }

    /// Normalized LLC access count.
    pub fn normalized_llc_accesses(&self, baseline: &SimReport) -> f64 {
        ratio(self.llc_accesses(), baseline.llc_accesses())
    }

    /// Normalized LLC↔memory bytes.
    pub fn normalized_memory_bytes(&self, baseline: &SimReport) -> f64 {
        ratio(self.llc_memory_bytes(), baseline.llc_memory_bytes())
    }
}

impl SimReport {
    /// Renders a human-readable multi-line summary of the run.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;

        // `write!` into one buffer: no intermediate `String` per line.
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} on {}: {} cycles, {} memory µops ({} vector), {} compute µops",
            self.workload,
            self.design,
            self.cycles,
            self.ops.mem_ops,
            self.ops.vector_mem_ops,
            self.ops.compute_uops
        );
        for (i, lvl) in self.levels.iter().enumerate() {
            let _ = writeln!(
                out,
                "  L{}: {:>10} accesses, {:>5.1}% hits, {:>8} fills ({} prefetch), \
                 {:>6} KB from below, {:>6} KB to below",
                i + 1,
                lvl.accesses,
                lvl.hit_rate() * 100.0,
                lvl.demand_fills + lvl.prefetch_fills,
                lvl.prefetch_fills,
                lvl.bytes_from_below / 1024,
                lvl.bytes_to_below / 1024,
            );
        }
        let _ = writeln!(
            out,
            "  mem: {} reads ({} row / {} col, {:.1}% buffer hits), {} writes, {} KB total",
            self.mem.reads,
            self.mem.row_reads,
            self.mem.col_reads,
            self.mem.buffer_hit_rate() * 100.0,
            self.mem.writes,
            self.mem.total_bytes() / 1024,
        );
        // Only rendered when the fault model actually fired, so fault-free
        // runs stay byte-identical to the original report format.
        if self.mem.reliability_active() {
            let _ = writeln!(
                out,
                "  reliability: {} raw word faults (BER {:.2e}), {} ECC-corrected, \
                 {} uncorrectable lines, {} write retries, {} tiles remapped \
                 ({} remap lookups)",
                self.mem.raw_word_faults,
                self.mem.raw_word_fault_rate(),
                self.mem.ecc_corrected_words,
                self.mem.uncorrectable_lines,
                self.mem.write_retries,
                self.mem.tiles_remapped,
                self.mem.remap_lookups,
            );
        }
        out
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, llc_accesses: u64) -> SimReport {
        let llc = CacheStats { accesses: llc_accesses, ..CacheStats::default() };
        SimReport {
            workload: "w".into(),
            design: "d".into(),
            cycles,
            levels: vec![CacheStats::default(), llc],
            mem: MemStats::default(),
            ops: OpCounts::default(),
            occupancy: OccupancyTimeline::new(),
        }
    }

    #[test]
    fn render_mentions_every_section() {
        let r = report(1234, 9);
        let out = r.render();
        assert!(out.contains("1234 cycles"));
        assert!(out.contains("L1:"));
        assert!(out.contains("L2:"));
        assert!(out.contains("mem:"));
        assert_eq!(out, format!("{r}"));
    }

    #[test]
    fn reliability_line_only_renders_when_faults_fired() {
        let clean = report(100, 1);
        assert!(!clean.render().contains("reliability:"));
        let mut faulty = report(100, 1);
        faulty.mem.raw_word_faults = 5;
        faulty.mem.ecc_corrected_words = 4;
        faulty.mem.write_retries = 2;
        let out = faulty.render();
        assert!(out.contains("reliability:"));
        assert!(out.contains("5 raw word faults"));
        assert!(out.contains("2 write retries"));
    }

    #[test]
    fn normalization_against_baseline() {
        let base = report(1000, 100);
        let ours = report(300, 22);
        assert!((ours.normalized_cycles(&base) - 0.3).abs() < 1e-12);
        assert!((ours.normalized_llc_accesses(&base) - 0.22).abs() < 1e-12);
    }

    #[test]
    fn zero_baselines_do_not_divide_by_zero() {
        let base = report(0, 0);
        let ours = report(10, 10);
        assert_eq!(ours.normalized_cycles(&base), 0.0);
        assert_eq!(ours.normalized_l1_hit_rate(&base), 0.0);
        assert_eq!(ours.normalized_memory_bytes(&base), 0.0);
    }
}
