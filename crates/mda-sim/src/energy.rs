//! Memory-system energy accounting (extension).
//!
//! The paper argues qualitatively that column transfers save energy: "the
//! total number of row-buffer operations would be reduced, further
//! enhancing efficiencies" (Sec. III), on top of moving 8× fewer bytes for
//! column-strided data. This module turns the statistics the simulator
//! already collects into a first-order energy estimate so that claim can
//! be quantified. Per-event energies are STT-crosspoint-class numbers
//! (activations are the expensive event; NVM writes cost more than reads;
//! SRAM accesses are cheap and size-dependent) — absolute joules are
//! indicative only, but ratios between designs are meaningful because both
//! designs' events are priced identically.

use crate::report::SimReport;

/// Per-event energy parameters, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One array activation (row or column opening) — the dominant event.
    pub activation_pj: f64,
    /// Serving one 64-byte line out of an open buffer.
    pub buffer_access_pj: f64,
    /// Writing one 64-byte line into the NVM array.
    pub array_write_pj: f64,
    /// Moving one byte over a memory channel.
    pub bus_pj_per_byte: f64,
    /// One cache access per kilobyte of cache capacity (crude CACTI-style
    /// scaling: bigger arrays burn more per access).
    pub cache_access_pj_per_kb: f64,
}

impl EnergyModel {
    /// STT-crosspoint-class defaults.
    pub fn stt() -> EnergyModel {
        EnergyModel {
            activation_pj: 900.0,
            buffer_access_pj: 80.0,
            array_write_pj: 1200.0,
            bus_pj_per_byte: 15.0,
            cache_access_pj_per_kb: 0.02,
        }
    }

    /// Total memory-system energy of a run, in nanojoules.
    pub fn memory_energy_nj(&self, r: &SimReport) -> f64 {
        let m = &r.mem;
        let pj = m.activations as f64 * self.activation_pj
            + (m.reads + m.writes) as f64 * self.buffer_access_pj
            + m.writes as f64 * self.array_write_pj
            + m.total_bytes() as f64 * self.bus_pj_per_byte
            // Each write-verify retry rereads the line from the buffer and
            // rewrites the failing words into the array.
            + m.write_retries as f64 * (self.buffer_access_pj + self.array_write_pj);
        pj / 1000.0
    }

    /// Total cache-array energy of a run, in nanojoules. Each level's
    /// accesses (demand + fills) are priced by its capacity.
    pub fn cache_energy_nj(&self, r: &SimReport, level_kb: &[u64]) -> f64 {
        let mut pj = 0.0;
        for (stats, kb) in r.levels.iter().zip(level_kb) {
            let events = stats.accesses + stats.demand_fills + stats.prefetch_fills;
            pj += events as f64 * self.cache_access_pj_per_kb * (*kb as f64);
        }
        pj / 1000.0
    }

    /// Combined memory + cache energy, in nanojoules.
    pub fn total_energy_nj(&self, r: &SimReport, level_kb: &[u64]) -> f64 {
        self.memory_energy_nj(r) + self.cache_energy_nj(r, level_kb)
    }
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel::stt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, HierarchyKind, SystemConfig};
    use mda_compiler::{AffineExpr, ArrayRef, Loop, LoopNest, Program};

    fn col_walk(n: i64) -> Program {
        let mut p = Program::new("colwalk");
        let a = p.array("A", n as u64, n as u64);
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, n), Loop::constant(0, n)],
            refs: vec![ArrayRef::read(a, AffineExpr::var(1), AffineExpr::var(0))],
            flops_per_iter: 1,
        });
        p
    }

    fn level_kb(cfg: &SystemConfig) -> Vec<u64> {
        let mut v = vec![cfg.l1.size_bytes / 1024, cfg.l2.size_bytes / 1024];
        if let Some(l3) = cfg.l3 {
            v.push(l3.size_bytes / 1024);
        }
        v
    }

    #[test]
    fn mda_cuts_memory_energy_on_column_workloads() {
        let p = col_walk(64);
        let model = EnergyModel::stt();
        let base_cfg = SystemConfig::tiny(HierarchyKind::Baseline1P1L);
        let base = simulate(&p, &base_cfg);
        let mda_cfg = SystemConfig::tiny(HierarchyKind::P1L2DifferentSet);
        let mda = simulate(&p, &mda_cfg);
        let e_base = model.memory_energy_nj(&base);
        let e_mda = model.memory_energy_nj(&mda);
        assert!(
            e_mda < 0.7 * e_base,
            "MDA memory energy {e_mda:.0} nJ vs baseline {e_base:.0} nJ"
        );
        // Total (memory + cache) energy also drops.
        let t_base = model.total_energy_nj(&base, &level_kb(&base_cfg));
        let t_mda = model.total_energy_nj(&mda, &level_kb(&mda_cfg));
        assert!(t_mda < t_base);
    }

    fn write_walk(n: i64) -> Program {
        let mut p = Program::new("writewalk");
        let a = p.array("A", n as u64, n as u64);
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, n), Loop::constant(0, n)],
            refs: vec![ArrayRef::write(a, AffineExpr::var(0), AffineExpr::var(1))],
            flops_per_iter: 1,
        });
        p
    }

    #[test]
    fn write_retries_cost_energy() {
        let p = write_walk(64);
        let clean_cfg = SystemConfig::tiny(HierarchyKind::Baseline1P1L);
        let faulty_cfg = clean_cfg
            .clone()
            .with_faults(mda_mem::FaultConfig::uniform(11, 0.02, 0.0, 0.0));
        let clean = simulate(&p, &clean_cfg);
        let faulty = simulate(&p, &faulty_cfg);
        assert!(faulty.mem.write_retries > 0, "expected retries at 2% write BER");
        let model = EnergyModel::stt();
        assert!(
            model.memory_energy_nj(&faulty) > model.memory_energy_nj(&clean),
            "retries must show up in the energy bill"
        );
    }

    #[test]
    fn energy_components_are_additive_and_positive() {
        let p = col_walk(32);
        let cfg = SystemConfig::tiny(HierarchyKind::P2L2Sparse);
        let r = simulate(&p, &cfg);
        let model = EnergyModel::stt();
        let mem = model.memory_energy_nj(&r);
        let cache = model.cache_energy_nj(&r, &level_kb(&cfg));
        assert!(mem > 0.0 && cache > 0.0);
        let total = model.total_energy_nj(&r, &level_kb(&cfg));
        assert!((total - (mem + cache)).abs() < 1e-9);
    }
}
