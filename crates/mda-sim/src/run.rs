//! The top-level simulation entry point.

use crate::core::Core;
use crate::occupancy::OccupancyTimeline;
use crate::report::SimReport;
use crate::system::SystemConfig;
use mda_cache::CacheLevel;
use mda_compiler::trace::{OpCounts, TraceOp, TraceSource};

/// Simulates `src` on the system described by `cfg`, consuming the trace
/// the compiler generates for that system's code-generation target.
///
/// See the crate-level documentation for an end-to-end example; the
/// `mdacache` facade crate shows the same flow against a real workload.
pub fn simulate(src: &dyn TraceSource, cfg: &SystemConfig) -> SimReport {
    let mut hierarchy = cfg.build_hierarchy();
    let mut core = Core::new(cfg.core);
    let mut ops = OpCounts::default();
    let mut occupancy = OccupancyTimeline::new();
    let mut mem_ops_seen = 0u64;
    let sample_every = cfg.occupancy_every;
    // Reused across samples so the hot trace loop never allocates.
    let mut snapshot: Vec<(usize, usize, usize)> = Vec::new();

    src.generate(&cfg.codegen, &mut |op| {
        match &op {
            TraceOp::Mem(m) => {
                ops.mem_ops += 1;
                ops.bytes += m.bytes();
                if m.vector {
                    ops.vector_mem_ops += 1;
                }
                mem_ops_seen += 1;
            }
            TraceOp::Compute(n) => ops.compute_uops += u64::from(*n),
        }
        hierarchy.step(&mut core, &op);
        if sample_every > 0 && matches!(op, TraceOp::Mem(_)) && mem_ops_seen.is_multiple_of(sample_every) {
            snapshot.clear();
            snapshot.extend(hierarchy.levels().iter().map(|l| l.occupancy()));
            occupancy.record(core.now(), &snapshot);
        }
    });

    let cycles = core.finish();
    let levels = hierarchy.levels().iter().map(|l| *l.stats()).collect();
    let mem = *hierarchy.memory().stats();
    SimReport {
        workload: src.name().to_string(),
        design: cfg.kind.name().to_string(),
        cycles,
        levels,
        mem,
        ops,
        occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::HierarchyKind;
    use mda_compiler::{AffineExpr, ArrayRef, Loop, LoopNest, Program};

    fn row_walk(n: i64) -> Program {
        let mut p = Program::new("walk");
        let a = p.array("A", n as u64, n as u64);
        p.add_nest(LoopNest {
            loops: vec![Loop::constant(0, n), Loop::constant(0, n)],
            refs: vec![ArrayRef::read(a, AffineExpr::var(0), AffineExpr::var(1))],
            flops_per_iter: 1,
        });
        p
    }

    #[test]
    fn simulate_produces_consistent_report() {
        let p = row_walk(32);
        let cfg = SystemConfig::tiny(HierarchyKind::P1L2DifferentSet);
        let r = simulate(&p, &cfg);
        assert!(r.cycles > 0);
        assert_eq!(r.levels.len(), 3);
        assert_eq!(r.ops.mem_ops, 32 * 32 / 8);
        assert_eq!(r.levels[0].accesses, r.ops.mem_ops);
        assert!(r.mem.reads > 0, "cold cache must read memory");
        assert_eq!(r.workload, "walk");
        assert_eq!(r.design, "1P2L");
    }

    #[test]
    fn occupancy_sampling_collects_points() {
        let p = row_walk(32);
        let cfg = SystemConfig::tiny(HierarchyKind::P1L2DifferentSet).with_occupancy_sampling(16);
        let r = simulate(&p, &cfg);
        assert!(!r.occupancy.is_empty());
    }

    #[test]
    fn repeated_simulation_is_deterministic() {
        let p = row_walk(24);
        let cfg = SystemConfig::tiny(HierarchyKind::P2L2Sparse);
        let a = simulate(&p, &cfg);
        let b = simulate(&p, &cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.mem, b.mem);

        // Parallel-vs-sequential equivalence: the same cell simulated on
        // concurrently running worker threads must reproduce the sequential
        // report exactly (each simulation owns all of its state).
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..4).map(|_| scope.spawn(|| simulate(&p, &cfg))).collect();
            for worker in workers {
                let r = worker.join().expect("worker simulation panicked");
                assert_eq!(r.cycles, a.cycles);
                assert_eq!(r.levels, a.levels);
                assert_eq!(r.mem, a.mem);
            }
        });
    }
}
