//! `strmm`: triangular matrix multiply `B = A·B` with `A` lower-triangular.
//!
//! The triangular reduction bound (`k ≤ i`) exercises the code generator's
//! scalar pro-/epilogue path around vector chunks, while the operands keep
//! sgemm's mixed affinity: `A[i][k]` walks rows, `B[k][j]` walks columns.
//! Results land in a separate output array (the BLAS in-place update has no
//! timing-relevant aliasing in a trace-driven model, but distinct arrays
//! keep the reference streams honest).

use mda_compiler::{AffineExpr, ArrayRef, Loop, LoopNest, Program};

/// Builds `strmm` for `n × n` matrices.
///
/// # Panics
/// Panics if `n` is zero.
pub fn strmm(n: u64) -> Program {
    assert!(n > 0, "matrix dimension must be non-zero");
    let n_i = n as i64;
    let mut p = Program::new("strmm");
    let a = p.array("A", n, n);
    let b = p.array("B", n, n);
    let out = p.array("Bout", n, n);

    // for i in 0..n { for j in 0..n { for k in 0..=i {
    //     Bout[i][j] += A[i][k] * B[k][j]
    // }}}
    let (i, j, k) = (0, 1, 2);
    p.add_nest(LoopNest {
        loops: vec![
            Loop::constant(0, n_i),
            Loop::constant(0, n_i),
            Loop::new(AffineExpr::constant(0), AffineExpr::var(i).plus(1)),
        ],
        refs: vec![
            ArrayRef::read(a, AffineExpr::var(i), AffineExpr::var(k)), // row
            ArrayRef::read(b, AffineExpr::var(k), AffineExpr::var(j)), // col
            ArrayRef::read(out, AffineExpr::var(i), AffineExpr::var(j)), // invariant
            ArrayRef::write(out, AffineExpr::var(i), AffineExpr::var(j)), // invariant
        ],
        flops_per_iter: 2,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_compiler::trace::{access_mix, count_ops};
    use mda_compiler::CodegenOptions;

    #[test]
    fn triangular_reduction_has_expected_volume() {
        let p = strmm(16);
        let c = count_ops(&p, &CodegenOptions::baseline());
        // Per (i, j): (i+1) iterations × 2 scalar reads + 2 invariant ops.
        let tri: u64 = (1..=16u64).sum();
        assert_eq!(c.mem_ops, 2 * tri * 16 + 2 * 16 * 16);
    }

    #[test]
    fn mda_vectorizes_despite_triangular_bounds() {
        let p = strmm(64);
        let mda = count_ops(&p, &CodegenOptions::mda());
        assert!(mda.vector_mem_ops > 0);
        // Most of the reduction volume vectorizes; short rows stay scalar.
        assert!(mda.vector_mem_ops * 2 > mda.mem_ops / 2);
    }

    #[test]
    fn affinity_is_mixed() {
        let p = strmm(32);
        let mix = access_mix(&p, &CodegenOptions::mda());
        let col = mix.col_fraction();
        assert!((0.3..=0.7).contains(&col), "column fraction {col}");
    }
}
