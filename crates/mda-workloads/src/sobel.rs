//! `sobel`: a basic vertical-traversal Sobel edge filter (paper Sec. VI-B:
//! "the sobel benchmark evaluated is a basic Sobel filter for vertical
//! traversal").
//!
//! The image is traversed column by column with the row index innermost, so
//! every tap of the 3×3 vertical-gradient stencil walks a column of the
//! image — the kernel is almost purely column-affine, making it the
//! strongest beneficiary of column transfers.

use mda_compiler::{AffineExpr, ArrayRef, Loop, LoopNest, Program};

/// Builds the vertical Sobel filter over an `n × n` image.
///
/// # Panics
/// Panics if `n < 3` (the stencil needs a one-pixel border).
pub fn sobel(n: u64) -> Program {
    assert!(n >= 3, "sobel needs at least a 3×3 image");
    let n_i = n as i64;
    let mut p = Program::new("sobel");
    let img = p.array("img", n, n);
    let out = p.array("out", n, n);

    // for j in 1..n-1 { for i in 1..n-1 {
    //     out[i][j] = Gy ⊙ img[i-1..=i+1][j-1..=j+1]
    // }}
    // The vertical gradient uses the six taps of the top and bottom rows.
    let (j, i) = (0, 1);
    let mut refs = Vec::new();
    for di in [-1i64, 1] {
        for dj in [-1i64, 0, 1] {
            refs.push(ArrayRef::read(
                img,
                AffineExpr::var(i).plus(di),
                AffineExpr::var(j).plus(dj),
            ));
        }
    }
    refs.push(ArrayRef::write(out, AffineExpr::var(i), AffineExpr::var(j)));
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(1, n_i - 1), Loop::constant(1, n_i - 1)],
        refs,
        flops_per_iter: 8,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_compiler::trace::{access_mix, count_ops};
    use mda_compiler::CodegenOptions;

    #[test]
    fn sobel_is_column_dominant() {
        let p = sobel(64);
        let mix = access_mix(&p, &CodegenOptions::mda());
        assert!(mix.col_fraction() > 0.9, "all taps and the store walk columns");
    }

    #[test]
    fn baseline_cannot_vectorize_vertical_traversal() {
        let p = sobel(32);
        assert_eq!(count_ops(&p, &CodegenOptions::baseline()).vector_mem_ops, 0);
        assert!(count_ops(&p, &CodegenOptions::mda()).vector_mem_ops > 0);
    }

    #[test]
    fn op_count_matches_stencil_shape() {
        let p = sobel(10);
        let c = count_ops(&p, &CodegenOptions::baseline());
        // 8×8 interior pixels × (6 reads + 1 write).
        assert_eq!(c.mem_ops, 64 * 7);
    }

    #[test]
    #[should_panic(expected = "3×3")]
    fn tiny_image_rejected() {
        let _ = sobel(2);
    }
}
