//! `ssyrk`: symmetric rank-k update, `C = Aᵀ·A + C` (lower triangle),
//! followed by a row-oriented scaling pass.
//!
//! The update phase walks both `A` operands along columns (`A[k][i]` and
//! `A[k][j]` with `k` innermost); the scaling pass walks `C` along rows.
//! This two-phase structure reproduces the time-varying column occupancy
//! the paper highlights for `ssyrk` in Fig. 15 ("it first increases and
//! then decreases, due to neighboring loop nests exhibiting different
//! preferences in the later part of the execution").

use mda_compiler::{AffineExpr, ArrayRef, Loop, LoopNest, Program};

/// Builds `ssyrk` for `n × n` matrices.
///
/// # Panics
/// Panics if `n` is zero.
pub fn ssyrk(n: u64) -> Program {
    assert!(n > 0, "matrix dimension must be non-zero");
    let n_i = n as i64;
    let mut p = Program::new("ssyrk");
    let a = p.array("A", n, n);
    let c = p.array("C", n, n);

    // Phase 1: lower-triangle update, column-affine.
    // for i in 0..n { for j in 0..=i { for k in 0..n {
    //     C[i][j] += A[k][i] * A[k][j]
    // }}}
    let (i, j, k) = (0, 1, 2);
    p.add_nest(LoopNest {
        loops: vec![
            Loop::constant(0, n_i),
            Loop::new(AffineExpr::constant(0), AffineExpr::var(i).plus(1)),
            Loop::constant(0, n_i),
        ],
        refs: vec![
            ArrayRef::read(a, AffineExpr::var(k), AffineExpr::var(i)),
            ArrayRef::read(a, AffineExpr::var(k), AffineExpr::var(j)),
            ArrayRef::read(c, AffineExpr::var(i), AffineExpr::var(j)),
            ArrayRef::write(c, AffineExpr::var(i), AffineExpr::var(j)),
        ],
        flops_per_iter: 2,
    });

    // Phase 2: row-oriented scale of the full result, C[i][j] *= beta.
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(0, n_i), Loop::constant(0, n_i)],
        refs: vec![
            ArrayRef::read(c, AffineExpr::var(0), AffineExpr::var(1)),
            ArrayRef::write(c, AffineExpr::var(0), AffineExpr::var(1)),
        ],
        flops_per_iter: 1,
    });

    // Phase 3: row-major copy-out of the result (the benchmark harness
    // storing C), extending the row-preferring tail during which the
    // column occupancy of Fig. 15 falls back off.
    let out = p.array("Cout", n, n);
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(0, n_i), Loop::constant(0, n_i)],
        refs: vec![
            ArrayRef::read(c, AffineExpr::var(0), AffineExpr::var(1)),
            ArrayRef::write(out, AffineExpr::var(0), AffineExpr::var(1)),
        ],
        flops_per_iter: 0,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_compiler::trace::{access_mix, count_ops, TraceOp, TraceSource};
    use mda_compiler::CodegenOptions;
    use mda_mem::Orientation;

    #[test]
    fn update_phase_is_column_dominant() {
        let p = ssyrk(32);
        let mix = access_mix(&p, &CodegenOptions::mda());
        assert!(mix.col_fraction() > 0.5, "both A streams are column walks");
    }

    #[test]
    fn trace_ends_with_a_row_phase() {
        // The last vector memory op of the trace belongs to the row-wise
        // scaling pass.
        let p = ssyrk(16);
        let mut last_vec_orient = None;
        p.generate(&CodegenOptions::mda(), &mut |op| {
            if let TraceOp::Mem(m) = op {
                if m.vector {
                    last_vec_orient = Some(m.orient);
                }
            }
        });
        assert_eq!(last_vec_orient, Some(Orientation::Row));
    }

    #[test]
    fn triangular_update_touches_half_the_pairs() {
        let p = ssyrk(16);
        let c = count_ops(&p, &CodegenOptions::baseline());
        // Phase 1 (column operands → scalar on the baseline): 2 per
        // k-iteration over Σ(i+1) pairs, plus 2 invariant C accesses per
        // pair. Phases 2 and 3 are row-wise, so even the baseline
        // vectorizes them: 2 vector ops per 8 elements each.
        let pairs: u64 = (1..=16).sum();
        assert_eq!(c.mem_ops, 2 * pairs * 16 + 2 * pairs + 2 * (2 * 16 * 16 / 8));
        assert_eq!(c.vector_mem_ops, 2 * (2 * 16 * 16 / 8));
    }
}
