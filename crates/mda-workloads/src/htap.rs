//! `htap1` / `htap2`: hybrid transactional/analytical processing workloads,
//! modelled after the in-memory-table workloads of the GS-DRAM paper that
//! MDACache evaluates (Sec. VI-B, [40]).
//!
//! A `2048 × n` table of 64-bit fields is shared by two request classes:
//!
//! * **analytical scans** aggregate one field over every record — a column
//!   walk of the table (vectorizable only on MDA hierarchies);
//! * **transactions** read and update every field of one *random* record —
//!   a row access.
//!
//! `htap1` is the analytics-dominant mix, `htap2` the transaction-dominant
//! one. Because transactions pick random records, these workloads are
//! generated directly (deterministically, from a fixed seed) rather than
//! compiled from affine loop nests; scans and transactions are interleaved
//! the way a concurrent HTAP system would interleave them.

use mda_compiler::ir::Program;
use mda_compiler::layout::Layout;
use mda_compiler::trace::{MemOp, TraceOp, TraceSource};
use mda_compiler::vectorize::CodegenOptions;
use mda_mem::{LineKey, Orientation, LINE_WORDS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of records in the HTAP table (paper: 2048 × 256 / 2048 × 512).
pub const HTAP_RECORDS: u64 = 2048;

/// An HTAP workload instance.
#[derive(Debug, Clone)]
pub struct HtapWorkload {
    name: String,
    fields: u64,
    scans: u64,
    transactions: u64,
    seed: u64,
}

/// The analytics-dominant mix: scan many fields, with sparse transactional
/// updates interleaved (scan volume ≈ 2× transaction volume).
pub fn htap1(fields: u64) -> HtapWorkload {
    HtapWorkload::new("htap1", fields, fields.min(128), 256, 0x0001_1AF1)
}

/// The transaction-dominant mix: mostly record updates, with periodic
/// analytical scans.
pub fn htap2(fields: u64) -> HtapWorkload {
    HtapWorkload::new("htap2", fields, 32, 2048, 0x0001_1AF2)
}

impl HtapWorkload {
    /// Builds a custom mix over a `2048 × fields` table.
    ///
    /// # Panics
    /// Panics if `fields` is zero or fewer scans than one are requested
    /// with zero transactions (an empty workload).
    pub fn new(
        name: impl Into<String>,
        fields: u64,
        scans: u64,
        transactions: u64,
        seed: u64,
    ) -> HtapWorkload {
        assert!(fields > 0, "table must have at least one field");
        assert!(scans + transactions > 0, "workload must issue some requests");
        HtapWorkload { name: name.into(), fields, scans, transactions, seed }
    }

    /// The table declared as a program (used for layout planning only).
    fn table_program(&self) -> (Program, mda_compiler::ArrayId) {
        let mut p = Program::new(self.name.clone());
        let t = p.array("table", HTAP_RECORDS, self.fields);
        (p, t)
    }

    /// Emits one analytical scan of field `f`.
    fn emit_scan(
        &self,
        layout: &mda_compiler::ArrayLayout,
        opts: &CodegenOptions,
        f: u64,
        sink: &mut dyn FnMut(TraceOp),
    ) {
        let stream = 0u32;
        let mut r = 0u64;
        while r < HTAP_RECORDS {
            let word = layout.addr(r, f);
            let vectorizable = opts.vectorize_cols && {
                let line = LineKey::containing(word, Orientation::Col);
                line.offset_of(word) == Some(0) && r + LINE_WORDS as u64 <= HTAP_RECORDS
            };
            if vectorizable {
                sink(TraceOp::Mem(MemOp {
                    word,
                    orient: Orientation::Col,
                    vector: true,
                    write: false,
                    stream,
                }));
                sink(TraceOp::Compute(2));
                r += LINE_WORDS as u64;
            } else {
                sink(TraceOp::Mem(MemOp {
                    word,
                    orient: Orientation::Col,
                    vector: false,
                    write: false,
                    stream,
                }));
                sink(TraceOp::Compute(2));
                r += 1;
            }
        }
    }

    /// Emits one transaction on record `rec`: read all fields, write them
    /// back.
    fn emit_txn(
        &self,
        layout: &mda_compiler::ArrayLayout,
        opts: &CodegenOptions,
        rec: u64,
        sink: &mut dyn FnMut(TraceOp),
    ) {
        for write in [false, true] {
            let stream = if write { 2u32 } else { 1u32 };
            let mut f = 0u64;
            while f < self.fields {
                let word = layout.addr(rec, f);
                let vectorizable = opts.vectorize_rows && {
                    let line = LineKey::containing(word, Orientation::Row);
                    line.offset_of(word) == Some(0) && f + LINE_WORDS as u64 <= self.fields
                };
                if vectorizable {
                    sink(TraceOp::Mem(MemOp {
                        word,
                        orient: Orientation::Row,
                        vector: true,
                        write,
                        stream,
                    }));
                    sink(TraceOp::Compute(1));
                    f += LINE_WORDS as u64;
                } else {
                    sink(TraceOp::Mem(MemOp {
                        word,
                        orient: Orientation::Row,
                        vector: false,
                        write,
                        stream,
                    }));
                    sink(TraceOp::Compute(1));
                    f += 1;
                }
            }
        }
    }
}

impl TraceSource for HtapWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(&self, opts: &CodegenOptions, sink: &mut dyn FnMut(TraceOp)) {
        let (program, table) = self.table_program();
        let layout = Layout::plan(&program, opts.layout);
        let table_layout = *layout.of(table);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Interleave the two request classes proportionally so that the
        // cache sees concurrent row and column affinity, as in a live HTAP
        // system.
        let total = self.scans + self.transactions;
        let mut scans_done = 0u64;
        let mut txns_done = 0u64;
        for step in 0..total {
            let scan_due = scans_done * total <= step * self.scans && scans_done < self.scans;
            if scan_due {
                let f = if self.scans <= self.fields {
                    // Scan distinct leading fields.
                    scans_done % self.fields
                } else {
                    rng.gen_range(0..self.fields)
                };
                self.emit_scan(&table_layout, opts, f, sink);
                scans_done += 1;
            } else if txns_done < self.transactions {
                let rec = rng.gen_range(0..HTAP_RECORDS);
                self.emit_txn(&table_layout, opts, rec, sink);
                txns_done += 1;
            }
        }
    }

    fn footprint_bytes(&self, opts: &CodegenOptions) -> u64 {
        let (program, _) = self.table_program();
        Layout::plan(&program, opts.layout).total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_compiler::trace::{access_mix, count_ops};

    #[test]
    fn htap1_is_scan_dominant_and_htap2_txn_dominant() {
        let mix1 = access_mix(&htap1(256), &CodegenOptions::mda());
        let mix2 = access_mix(&htap2(256), &CodegenOptions::mda());
        assert!(mix1.col_fraction() > 0.5, "htap1 col fraction {}", mix1.col_fraction());
        assert!(mix2.col_fraction() < 0.5, "htap2 col fraction {}", mix2.col_fraction());
        assert!(mix1.col_fraction() > mix2.col_fraction());
    }

    #[test]
    fn generation_is_deterministic() {
        let w = htap1(64);
        let a = count_ops(&w, &CodegenOptions::mda());
        let b = count_ops(&w, &CodegenOptions::mda());
        assert_eq!(a, b);
    }

    #[test]
    fn scans_vectorize_only_with_column_support() {
        let w = HtapWorkload::new("scan-only", 64, 4, 0, 1);
        let base = count_ops(&w, &CodegenOptions::baseline());
        let mda = count_ops(&w, &CodegenOptions::mda());
        assert_eq!(base.vector_mem_ops, 0);
        assert_eq!(mda.vector_mem_ops, 4 * HTAP_RECORDS / 8);
        assert_eq!(base.mem_ops, 4 * HTAP_RECORDS);
    }

    #[test]
    fn transactions_vectorize_along_rows_everywhere() {
        let w = HtapWorkload::new("txn-only", 64, 0, 10, 1);
        let base = count_ops(&w, &CodegenOptions::baseline());
        // 10 txns × 2 passes × 64 fields / 8-wide vectors.
        assert_eq!(base.vector_mem_ops, 10 * 2 * 64 / 8);
    }

    #[test]
    fn footprint_covers_the_table() {
        let w = htap1(256);
        assert!(w.footprint_bytes(&CodegenOptions::mda()) >= HTAP_RECORDS * 256 * 8);
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn zero_fields_rejected() {
        let _ = HtapWorkload::new("x", 0, 1, 1, 0);
    }
}
