//! `sgemm`: dense matrix multiply `C = A·B + C` (BLAS level 3).
//!
//! The paper's motivating example (Sec. V-A): with the canonical `i, j, k`
//! loop order and `k` innermost, `A[i][k]` walks rows while `B[k][j]` walks
//! columns — a reference pattern a conventional compiler cannot vectorize
//! without a transpose, and exactly the case dual-direction MDA
//! vectorization unlocks.

use mda_compiler::{AffineExpr, ArrayRef, Loop, LoopNest, Program};

/// Builds `sgemm` for `n × n` matrices.
///
/// # Panics
/// Panics if `n` is zero.
pub fn sgemm(n: u64) -> Program {
    assert!(n > 0, "matrix dimension must be non-zero");
    let n_i = n as i64;
    let mut p = Program::new("sgemm");
    let a = p.array("A", n, n);
    let b = p.array("B", n, n);
    let c = p.array("C", n, n);

    // Loop order j (outer), i, k (inner): the order behind the paper's
    // Fig. 15 observation that sgemm keeps "only a few of those columns …
    // in the cache at a time, while row-oriented data cycles through" —
    // the current B column (fixed j) is reused across the whole i loop
    // while A's rows stream.
    let (j, i, k) = (0, 1, 2);
    p.add_nest(LoopNest {
        loops: vec![Loop::constant(0, n_i); 3],
        refs: vec![
            // sum += A[i][k] * B[k][j]
            ArrayRef::read(a, AffineExpr::var(i), AffineExpr::var(k)),
            ArrayRef::read(b, AffineExpr::var(k), AffineExpr::var(j)),
            // C[i][j] is loop-invariant in k: promoted around the k loop.
            ArrayRef::read(c, AffineExpr::var(i), AffineExpr::var(j)),
            ArrayRef::write(c, AffineExpr::var(i), AffineExpr::var(j)),
        ],
        flops_per_iter: 2,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_compiler::trace::{access_mix, count_ops};
    use mda_compiler::CodegenOptions;

    #[test]
    fn mda_codegen_emits_row_and_column_vectors() {
        let p = sgemm(32);
        let mix = access_mix(&p, &CodegenOptions::mda());
        let (_, rv, _, cv) = mix.fractions();
        assert!(rv > 0.3, "A is a row-vector stream");
        assert!(cv > 0.3, "B is a column-vector stream");
    }

    #[test]
    fn baseline_is_fully_scalar() {
        let p = sgemm(16);
        let c = count_ops(&p, &CodegenOptions::baseline());
        assert_eq!(c.vector_mem_ops, 0, "B[k][j] blocks vectorization");
        // 2 scalar reads per k iteration + 2 invariant C accesses per (i,j).
        assert_eq!(c.mem_ops, 2 * 16 * 16 * 16 + 2 * 16 * 16);
    }

    #[test]
    fn mda_reduces_op_count_about_eightfold_for_streams() {
        let p = sgemm(16);
        let mda = count_ops(&p, &CodegenOptions::mda());
        // 2 vector ops per 8 k-iterations + 2 invariant scalars per (i,j).
        assert_eq!(mda.mem_ops, 2 * 16 * 16 * 16 / 8 + 2 * 16 * 16);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        let _ = sgemm(0);
    }
}
