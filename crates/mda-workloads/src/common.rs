//! The benchmark registry: every kernel of the paper's evaluation behind
//! one enum.

use crate::{htap1, htap2, sgemm, sobel, ssyr2k, ssyrk, strmm};
use mda_compiler::trace::TraceSource;

/// The seven evaluation kernels (paper Sec. VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kernel {
    /// Dense matrix multiply.
    Sgemm,
    /// Symmetric rank-2k update.
    Ssyr2k,
    /// Symmetric rank-k update.
    Ssyrk,
    /// Triangular matrix multiply.
    Strmm,
    /// Vertical Sobel filter.
    Sobel,
    /// Analytics-dominant HTAP.
    Htap1,
    /// Transaction-dominant HTAP.
    Htap2,
}

impl Kernel {
    /// All kernels, in the paper's plotting order.
    pub fn all() -> [Kernel; 7] {
        [
            Kernel::Sgemm,
            Kernel::Ssyr2k,
            Kernel::Ssyrk,
            Kernel::Strmm,
            Kernel::Sobel,
            Kernel::Htap1,
            Kernel::Htap2,
        ]
    }

    /// The kernel's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Sgemm => "sgemm",
            Kernel::Ssyr2k => "ssyr2k",
            Kernel::Ssyrk => "ssyrk",
            Kernel::Strmm => "strmm",
            Kernel::Sobel => "sobel",
            Kernel::Htap1 => "htap1",
            Kernel::Htap2 => "htap2",
        }
    }

    /// Builds the kernel for input size `n` (matrix dimension; HTAP tables
    /// are `2048 × n` as in the paper).
    ///
    /// # Panics
    /// Panics if `n` is too small for the kernel (e.g. `sobel` needs
    /// `n ≥ 3`).
    pub fn build(&self, n: u64) -> Box<dyn TraceSource> {
        match self {
            Kernel::Sgemm => Box::new(sgemm(n)),
            Kernel::Ssyr2k => Box::new(ssyr2k(n)),
            Kernel::Ssyrk => Box::new(ssyrk(n)),
            Kernel::Strmm => Box::new(strmm(n)),
            Kernel::Sobel => Box::new(sobel(n)),
            Kernel::Htap1 => Box::new(htap1(n)),
            Kernel::Htap2 => Box::new(htap2(n)),
        }
    }

    /// Parses a kernel from its display name.
    ///
    /// # Errors
    /// Returns the unrecognized input back to the caller.
    pub fn parse(s: &str) -> Result<Kernel, String> {
        Kernel::all()
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown kernel '{s}'"))
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_compiler::trace::count_ops;
    use mda_compiler::CodegenOptions;

    #[test]
    fn all_kernels_build_and_emit_ops() {
        for k in Kernel::all() {
            let src = k.build(16);
            let c = count_ops(src.as_ref(), &CodegenOptions::mda());
            assert!(c.mem_ops > 0, "{k} emitted no memory ops");
            assert_eq!(src.name(), k.name());
        }
    }

    #[test]
    fn parse_round_trips() {
        for k in Kernel::all() {
            assert_eq!(Kernel::parse(k.name()), Ok(k));
        }
        assert!(Kernel::parse("dgemm").is_err());
    }
}
