//! `ssyr2k`: symmetric rank-2k update over the lower triangle.
//!
//! We implement the update in its `C += A·B + B·A` form so that each
//! product contributes one row-walking and one column-walking operand with
//! `k` innermost — the mixed row/column affinity the paper's Fig. 10 shows
//! for this kernel.

use mda_compiler::{AffineExpr, ArrayRef, Loop, LoopNest, Program};

/// Builds `ssyr2k` for `n × n` matrices.
///
/// # Panics
/// Panics if `n` is zero.
pub fn ssyr2k(n: u64) -> Program {
    assert!(n > 0, "matrix dimension must be non-zero");
    let n_i = n as i64;
    let mut p = Program::new("ssyr2k");
    let a = p.array("A", n, n);
    let b = p.array("B", n, n);
    let c = p.array("C", n, n);

    // for i in 0..n { for j in 0..=i { for k in 0..n {
    //     C[i][j] += A[i][k]·B[k][j] + B[i][k]·A[k][j]
    // }}}
    let (i, j, k) = (0, 1, 2);
    p.add_nest(LoopNest {
        loops: vec![
            Loop::constant(0, n_i),
            Loop::new(AffineExpr::constant(0), AffineExpr::var(i).plus(1)),
            Loop::constant(0, n_i),
        ],
        refs: vec![
            ArrayRef::read(a, AffineExpr::var(i), AffineExpr::var(k)), // row
            ArrayRef::read(b, AffineExpr::var(k), AffineExpr::var(j)), // col
            ArrayRef::read(b, AffineExpr::var(i), AffineExpr::var(k)), // row
            ArrayRef::read(a, AffineExpr::var(k), AffineExpr::var(j)), // col
            ArrayRef::read(c, AffineExpr::var(i), AffineExpr::var(j)), // invariant
            ArrayRef::write(c, AffineExpr::var(i), AffineExpr::var(j)), // invariant
        ],
        flops_per_iter: 4,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_compiler::trace::{access_mix, count_ops};
    use mda_compiler::CodegenOptions;

    #[test]
    fn mix_is_roughly_half_rows_half_columns() {
        let p = ssyr2k(32);
        let mix = access_mix(&p, &CodegenOptions::mda());
        let col = mix.col_fraction();
        assert!((0.35..=0.65).contains(&col), "column fraction {col}");
    }

    #[test]
    fn baseline_stays_scalar_and_mda_vectorizes() {
        let p = ssyr2k(16);
        assert_eq!(count_ops(&p, &CodegenOptions::baseline()).vector_mem_ops, 0);
        let mda = count_ops(&p, &CodegenOptions::mda());
        assert!(mda.vector_mem_ops > 0);
        assert!(mda.mem_ops < count_ops(&p, &CodegenOptions::baseline()).mem_ops);
    }
}
