//! # mda-workloads — the MDACache evaluation kernels
//!
//! The seven benchmarks of the paper's evaluation (Sec. VI-B), expressed in
//! the `mda-compiler` loop-nest IR (or, for the HTAP pair, as a direct
//! trace generator, since transactions touch random records):
//!
//! | kernel  | source                   | dominant affinity         |
//! |---------|--------------------------|---------------------------|
//! | sgemm   | BLAS matrix multiply     | rows (A) + columns (B)    |
//! | ssyr2k  | BLAS rank-2k update      | mixed rows/columns        |
//! | ssyrk   | BLAS rank-k update       | columns, then a row phase |
//! | strmm   | BLAS triangular multiply | rows (A) + columns (B)    |
//! | sobel   | vertical Sobel filter    | columns                   |
//! | htap1   | GS-DRAM HTAP, analytics  | column scans + row txns   |
//! | htap2   | GS-DRAM HTAP, txn-heavy  | row txns + column scans   |
//!
//! Matrix kernels take the square input dimension (`256`/`512` in the
//! paper); the HTAP kernels use a `2048 × n` table, matching the paper's
//! `2048×256` / `2048×512` inputs.
//!
//! ```
//! use mda_workloads::{sgemm, Kernel};
//! use mda_compiler::{trace::count_ops, CodegenOptions};
//!
//! let p = sgemm(32);
//! let base = count_ops(&p, &CodegenOptions::baseline());
//! let mda = count_ops(&p, &CodegenOptions::mda());
//! // Dual-direction vectorization cuts the op count dramatically.
//! assert!(mda.mem_ops * 4 < base.mem_ops);
//! assert_eq!(Kernel::all().len(), 7);
//! ```

pub mod common;
pub mod htap;
pub mod sgemm;
pub mod sobel;
pub mod ssyr2k;
pub mod ssyrk;
pub mod strmm;

pub use common::Kernel;
pub use htap::{htap1, htap2, HtapWorkload};
pub use sgemm::sgemm;
pub use sobel::sobel;
pub use ssyr2k::ssyr2k;
pub use ssyrk::ssyrk;
pub use strmm::strmm;
