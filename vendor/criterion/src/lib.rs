//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be fetched. This stub keeps `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, and `Bencher::iter` source-compatible, and
//! reports a simple mean wall-clock time per iteration instead of the real
//! statistical analysis.

use std::time::Instant;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed_nanos: u128,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_nanos = start.elapsed().as_nanos();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // One warm-up pass, then `samples` timed iterations in one batch.
    let mut warmup = Bencher { iters: 1, elapsed_nanos: 0 };
    f(&mut warmup);
    let mut b = Bencher { iters: samples as u64, elapsed_nanos: 0 };
    f(&mut b);
    let per_iter = b.elapsed_nanos / u128::from(b.iters.max(1));
    println!("{name}: {} ns/iter ({} samples)", per_iter, samples);
}

/// Declares a function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // warm-up (1) + timed batch (3)
        assert_eq!(runs, 4);
    }
}
