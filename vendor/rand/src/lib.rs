//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (`StdRng::seed_from_u64` + `Rng::gen_range` over half-open integer
//! ranges).
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be fetched; this stub keeps the same API surface with a
//! deterministic SplitMix64 generator. Streams differ from the real
//! `StdRng` (ChaCha12), but every consumer in this workspace only relies on
//! *seeded determinism*, not on a particular stream.

/// A seedable deterministic generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling support for [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Maps a raw 64-bit draw into `[start, end)`.
    fn from_draw(draw: u64, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_draw(draw: u64, start: Self, end: Self) -> Self {
                assert!(start < end, "gen_range requires a non-empty range");
                let span = (end - start) as u64;
                start + (draw % span) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_draw(draw: u64, start: Self, end: Self) -> Self {
                assert!(start < end, "gen_range requires a non-empty range");
                let span = end.wrapping_sub(start) as u64;
                start.wrapping_add((draw % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// The generator interface.
pub trait Rng {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::from_draw(self.next_u64(), range.start, range.end)
    }

    /// A uniform boolean.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Vigna 2015).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
