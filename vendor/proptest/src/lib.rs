//! Offline stand-in for the subset of the `proptest` 1.x API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be fetched. This stub keeps the same *source-level* API surface —
//! `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) { .. } }`,
//! `prop_oneof!` (weighted and unweighted), `prop_assert!`/`prop_assert_eq!`,
//! `prop_assume!`, `Just`, `any`, `.prop_map`, integer-range strategies,
//! tuple strategies, and `proptest::collection::vec` — backed by a simple
//! deterministic generator instead of the real shrinking test runner.
//!
//! Differences from real proptest, all acceptable to this workspace's
//! property tests (which only assert invariants over generated inputs):
//!
//! * no shrinking — a failing case reports the panic message directly;
//! * inputs are derived from a per-test seed (FNV-1a hash of the test's
//!   module path + name), so runs are fully deterministic;
//! * `prop_assume!` skips the current case instead of resampling it.

pub mod test_runner {
    //! Test-runner configuration and the deterministic generator.

    /// Subset of `proptest::test_runner::Config` the workspace touches.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from `name` (FNV-1a), so every test gets a
        /// stable but distinct stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next raw 64-bit draw (SplitMix64, public domain, Vigna 2015).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty draw range");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy_unsigned {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_signed {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy_signed!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    }

    /// One weighted arm of a [`Union`]: `(weight, draw)`.
    pub type UnionArm<T> = (u32, Box<dyn Fn(&mut TestRng) -> T>);

    /// Weighted union over same-valued strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<UnionArm<T>>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// A union over `arms` of `(weight, draw)` pairs.
        pub fn new(arms: Vec<UnionArm<T>>) -> Self {
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! needs positive total weight");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, draw) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return draw(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick exceeded total weight")
        }
    }

    /// Types with a canonical [`any`](crate::arbitrary::any) strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for a whole type's value space (see [`Arbitrary`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! Entry points for whole-type strategies.

    use crate::strategy::{Any, Arbitrary};

    /// The canonical strategy for `T`'s whole value space.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// A vector strategy drawing a length from `size`, then that many
    /// elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines deterministic property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategy = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                // Each case runs in a closure so `prop_assume!` can skip it
                // with an early return.
                #[allow(clippy::redundant_closure_call)]
                (move || $body)();
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Weighted (`w => strat`) or uniform choice among strategies with one
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let __arm = $strat;
                (
                    $weight,
                    Box::new(move |__rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::generate(&__arm, __rng)
                    }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>,
                )
            }),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1u32 => $strat),+]
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        assert!($cond $(, $($fmt)+)?)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        assert_eq!($left, $right $(, $($fmt)+)?)
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        A,
        B(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            v in crate::collection::vec((0u8..4, any::<bool>()), 1..9),
            k in prop_oneof![2 => Just(Kind::A), 1 => (1u64..5).prop_map(Kind::B)],
        ) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 9);
            for (n, _) in &v {
                prop_assert!(*n < 4);
            }
            match k {
                Kind::A => {}
                Kind::B(n) => prop_assert!((1..5).contains(&n)),
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..100, 0u64..100);
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
