//! # mdacache — a reproduction of *MDACache: Caching for
//! Multi-Dimensional-Access Memories* (MICRO 2018)
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`mem`] — the MDA crosspoint main-memory model (row **and** column
//!   buffers, bit-sliced mats, FRFCFS-WQF-style controller).
//! * [`cache`] — the MDA cache taxonomy: `1P1L`, `1P2L`
//!   (Different-Set / Same-Set), `2P2L` sparse/dense, with the duplicate-word
//!   policy, 2-D MSHRs and the baseline stride prefetcher.
//! * [`compiler`] — loop-nest IR, access-direction prediction, MDA-compliant
//!   layout (intra-array padding) and row/column vectorization.
//! * [`sim`] — the trace-driven system simulator and its reports.
//! * [`workloads`] — the paper's seven evaluation kernels.
//!
//! ## Quickstart
//!
//! ```
//! use mdacache::sim::{simulate, SystemConfig, HierarchyKind};
//! use mdacache::workloads::sgemm;
//!
//! // A small matrix multiply on the paper's 1P2L Different-Set hierarchy.
//! let program = sgemm(64);
//! let config = SystemConfig::scaled(HierarchyKind::P1L2DifferentSet);
//! let report = simulate(&program, &config);
//! assert!(report.cycles > 0);
//! ```

pub use mda_cache as cache;
pub use mda_compiler as compiler;
pub use mda_mem as mem;
pub use mda_sim as sim;
pub use mda_workloads as workloads;
